"""Benchmark-regression guard: observability must stay nearly free.

Runs the burglary Algorithm-2 step (the workload of
``benchmarks/test_bench_burglary.py``) twice — once with the null
instrumentation and once with a full ``Tracer`` + ``MetricsRegistry`` +
``Hooks`` attached — and fails if the instrumented median is more than
``--threshold`` (default 10%) slower. Optionally writes the
instrumented run's span tree so CI can upload it as an artifact.

Usage::

    PYTHONPATH=src python benchmarks/check_observability_overhead.py \
        [--particles 1000] [--repetitions 20] [--threshold 0.10] \
        [--trace-out trace.json]

Exit status 0 when within the threshold, 1 otherwise.
"""

import argparse
import gc
import statistics
import sys
import time

import numpy as np

from repro import (
    CorrespondenceTranslator,
    InferenceConfig,
    WeightedCollection,
    exact_posterior_sampler,
    infer,
)
from repro.experiments import (
    burglary_correspondence,
    burglary_original,
    burglary_refined,
)
from repro.observability import Hooks, MetricsRegistry, Tracer, dump_json


def build_workload(num_particles):
    original = burglary_original()
    refined = burglary_refined()
    translator = CorrespondenceTranslator(
        original, refined, burglary_correspondence()
    )
    sampler = exact_posterior_sampler(original)
    rng = np.random.default_rng(0)
    collection = WeightedCollection.uniform(
        [sampler(rng) for _ in range(num_particles)]
    )
    return translator, collection


def timed_run(translator, collection, config, seed):
    """One GC-quiesced run (collection allocations otherwise leak GC
    pauses from one variant's span trees into the other's timing)."""
    rng = np.random.default_rng(seed)
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        infer(translator, collection, rng, config=config)
        return time.perf_counter() - start
    finally:
        gc.enable()


def paired_medians(translator, collection, make_plain, make_full, repetitions):
    """Interleave the two variants so clock drift hits both equally."""
    plain, full = [], []
    for repetition in range(repetitions):
        plain.append(
            timed_run(translator, collection, make_plain(), repetition)
        )
        full.append(
            timed_run(translator, collection, make_full(), repetition)
        )
    return statistics.median(plain), statistics.median(full)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--particles", type=int, default=1000)
    parser.add_argument("--repetitions", type=int, default=20)
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="maximum tolerated relative overhead")
    parser.add_argument("--trace-out", metavar="PATH", default=None,
                        help="write the instrumented run's span tree here")
    args = parser.parse_args(argv)

    translator, collection = build_workload(args.particles)

    last_tracer = {}

    def instrumented_config():
        tracer = Tracer()
        last_tracer["tracer"] = tracer
        return InferenceConfig(
            tracer=tracer, metrics=MetricsRegistry(), hooks=Hooks()
        )

    # Warm-up: JIT-free Python, but imports, allocators, and branch
    # caches still deserve throwaway runs per variant.
    paired_medians(
        translator, collection, InferenceConfig, instrumented_config, 3
    )

    plain, instrumented = paired_medians(
        translator, collection, InferenceConfig, instrumented_config,
        args.repetitions,
    )

    overhead = (instrumented - plain) / plain
    print(f"particles:            {args.particles}")
    print(f"repetitions:          {args.repetitions}")
    print(f"null instrumentation: {plain * 1e3:9.3f} ms median")
    print(f"full instrumentation: {instrumented * 1e3:9.3f} ms median")
    print(f"overhead:             {overhead:+9.2%} (threshold {args.threshold:.0%})")

    if args.trace_out:
        dump_json(last_tracer["tracer"].to_dict(), args.trace_out)
        print(f"trace written to {args.trace_out}")

    if overhead > args.threshold:
        print("FAIL: observability overhead exceeds the threshold",
              file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
