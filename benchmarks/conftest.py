"""Shared benchmark fixtures and the BENCH_smc.json recorder.

Benchmarks in ``test_bench_smc.py`` report structured measurements
(per-figure median step latency for the inline loop vs the parallel
executors, and with the log-prob cache on vs off) through the
``smc_bench`` fixture; at session end everything recorded is written as
strict JSON to ``BENCH_smc.json`` in the repository root (override the
path with the ``BENCH_SMC_OUT`` environment variable).  CI uploads the
file as an artifact so speedups are tracked per-commit.
"""

import json
import os
import pathlib
import platform

import numpy as np
import pytest

_SMC_RECORDS = []


@pytest.fixture
def rng():
    return np.random.default_rng(2018)


@pytest.fixture
def smc_bench():
    """Record one structured measurement destined for BENCH_smc.json.

    Call it with a dict; ``figure``, ``series`` and
    ``median_step_latency_s`` are the conventional keys.
    """

    def record(entry):
        _SMC_RECORDS.append(dict(entry))

    return record


def pytest_sessionfinish(session, exitstatus):
    if not _SMC_RECORDS:
        return
    out = os.environ.get("BENCH_SMC_OUT")
    if out is None:
        out = str(pathlib.Path(__file__).resolve().parent.parent / "BENCH_smc.json")
    payload = {
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
        "records": _SMC_RECORDS,
    }
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nBENCH_smc.json: {len(_SMC_RECORDS)} records written to {out}")
