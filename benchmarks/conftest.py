"""Shared benchmark fixtures and the BENCH_smc.json recorder.

Benchmarks in ``test_bench_smc.py`` report structured measurements
(per-figure median step latency for the inline loop vs the parallel
executors, and with the log-prob cache on vs off) through the
``smc_bench`` fixture; at session end everything recorded is written as
strict JSON to ``BENCH_smc.json`` in the repository root (override the
path with the ``BENCH_SMC_OUT`` environment variable).  CI uploads the
file as an artifact so speedups are tracked per-commit.
"""

import json
import os
import pathlib
import platform

import numpy as np
import pytest

_SMC_RECORDS = []
_STORE_RECORDS = []
_SERVICE_RECORDS = []
_DERIVE_RECORDS = []


@pytest.fixture
def rng():
    return np.random.default_rng(2018)


@pytest.fixture
def smc_bench():
    """Record one structured measurement destined for BENCH_smc.json.

    Call it with a dict; ``figure``, ``series`` and
    ``median_step_latency_s`` are the conventional keys.
    """

    def record(entry):
        _SMC_RECORDS.append(dict(entry))

    return record


@pytest.fixture
def store_bench():
    """Record one structured measurement destined for BENCH_store.json.

    Call it with a dict; ``operation``, ``series`` and
    ``median_latency_s`` are the conventional keys.
    """

    def record(entry):
        _STORE_RECORDS.append(dict(entry))

    return record


@pytest.fixture
def service_bench():
    """Record one structured measurement destined for BENCH_service.json.

    Call it with a dict; ``series`` plus the latency/rejection/recovery
    keys of ``test_bench_service.py`` are the conventional shape.
    """

    def record(entry):
        _SERVICE_RECORDS.append(dict(entry))

    return record


@pytest.fixture
def derive_bench():
    """Record one structured measurement destined for BENCH_derive.json.

    Call it with a dict; ``series`` plus the latency/accuracy keys of
    ``test_bench_derive.py`` are the conventional shape.
    """

    def record(entry):
        _DERIVE_RECORDS.append(dict(entry))

    return record


def _write_bench_file(records, default_name, env_var):
    out = os.environ.get(env_var)
    if out is None:
        out = str(pathlib.Path(__file__).resolve().parent.parent / default_name)
    payload = {
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
        "records": records,
    }
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\n{default_name}: {len(records)} records written to {out}")


def pytest_sessionfinish(session, exitstatus):
    if _SMC_RECORDS:
        _write_bench_file(_SMC_RECORDS, "BENCH_smc.json", "BENCH_SMC_OUT")
    if _STORE_RECORDS:
        _write_bench_file(_STORE_RECORDS, "BENCH_store.json", "BENCH_STORE_OUT")
    if _SERVICE_RECORDS:
        _write_bench_file(
            _SERVICE_RECORDS, "BENCH_service.json", "BENCH_SERVICE_OUT"
        )
    if _DERIVE_RECORDS:
        _write_bench_file(_DERIVE_RECORDS, "BENCH_derive.json", "BENCH_DERIVE_OUT")
