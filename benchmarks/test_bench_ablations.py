"""Ablation benchmarks for the design choices called out in DESIGN.md.

* resampling schemes (multinomial vs systematic/stratified/residual);
* weight evaluation on/off inside Algorithm 2;
* dependency-graph propagation vs full re-recording for a no-op edit;
* single-site MH and Gibbs kernel throughput.
"""

import numpy as np
import pytest

from repro import (
    CorrespondenceTranslator,
    WeightedCollection,
    exact_posterior_sampler,
    infer,
)
from repro.core.mcmc import gibbs_site, single_site_mh
from repro.experiments import (
    burglary_correspondence,
    burglary_original,
    burglary_refined,
)
from repro.gmm import gmm_edit_setup
from repro.graph import propagate, run_initial


@pytest.fixture(scope="module")
def burglary_setup():
    original = burglary_original()
    refined = burglary_refined()
    translator = CorrespondenceTranslator(original, refined, burglary_correspondence())
    rng = np.random.default_rng(0)
    sampler = exact_posterior_sampler(original)
    collection = WeightedCollection.uniform([sampler(rng) for _ in range(500)])
    return original, refined, translator, collection


@pytest.mark.parametrize("scheme", ["multinomial", "systematic", "stratified", "residual"])
def test_resampling_scheme(benchmark, scheme, rng):
    collection = WeightedCollection(
        list(range(5000)), list(np.random.default_rng(1).normal(size=5000))
    )
    result = benchmark(collection.resample, rng, None, scheme)
    assert len(result) == 5000


@pytest.mark.parametrize("use_weights", [True, False], ids=["weighted", "no-weights"])
def test_infer_weight_ablation(benchmark, burglary_setup, rng, use_weights):
    _original, _refined, translator, collection = burglary_setup
    benchmark(infer, translator, collection, rng, None, "never", 0.5, "multinomial", use_weights)


@pytest.mark.parametrize("n", [1000])
def test_noop_propagation_vs_full_rerun(benchmark, rng, n):
    """Propagating an unchanged program is O(1); compare against
    test_full_initial_run below for the same n."""
    setup = gmm_edit_setup(n, k=10)
    trace = run_initial(setup.source_program, rng, setup.env)
    result = benchmark(propagate, setup.source_program, trace)
    assert result.visited_statements == 0


@pytest.mark.parametrize("n", [1000])
def test_full_initial_run(benchmark, rng, n):
    setup = gmm_edit_setup(n, k=10)
    benchmark(run_initial, setup.source_program, rng, setup.env)


def test_single_site_mh_step(benchmark, burglary_setup, rng):
    _original, refined, _translator, _collection = burglary_setup
    kernel = single_site_mh(refined)
    trace = refined.simulate(rng)
    benchmark(kernel, rng, trace)


def test_gibbs_site_step(benchmark, burglary_setup, rng):
    _original, refined, _translator, _collection = burglary_setup
    kernel = gibbs_site(refined, "burglary")
    trace = refined.simulate(rng)
    benchmark(kernel, rng, trace)
