"""Benchmarks for the Figure 1 overview example.

Measures the primitive costs of the trace-translation machinery on the
burglary programs: exact enumeration, simulation, single-trace
translation, and a full Algorithm-2 step.
"""

import numpy as np
import pytest

from repro import (
    CorrespondenceTranslator,
    WeightedCollection,
    exact_choice_marginal,
    exact_posterior_sampler,
    infer,
)
from repro.experiments import (
    burglary_correspondence,
    burglary_original,
    burglary_refined,
)


@pytest.fixture(scope="module")
def setup():
    original = burglary_original()
    refined = burglary_refined()
    translator = CorrespondenceTranslator(
        original, refined, burglary_correspondence()
    )
    return original, refined, translator


def test_exact_enumeration(benchmark, setup):
    _original, refined, _translator = setup
    result = benchmark(exact_choice_marginal, refined, "burglary")
    assert result[1] == pytest.approx(0.194, abs=0.001)


def test_simulate(benchmark, setup, rng):
    original, _refined, _translator = setup
    benchmark(original.simulate, rng)


def test_single_trace_translation(benchmark, setup, rng):
    original, _refined, translator = setup
    trace = original.score({"burglary": 1, "alarm": 1})
    result = benchmark(translator.translate, rng, trace)
    assert np.isfinite(result.log_weight)


def test_algorithm2_step_1000_traces(benchmark, setup, rng):
    original, refined, translator = setup
    sampler = exact_posterior_sampler(original)
    collection = WeightedCollection.uniform([sampler(rng) for _ in range(1000)])

    def step():
        return infer(translator, collection, rng)

    result = benchmark(step)
    estimate = result.collection.estimate_probability(lambda u: u["burglary"] == 1)
    truth = exact_choice_marginal(refined, "burglary")[1]
    assert estimate == pytest.approx(truth, abs=0.1)
