"""Correspondence-derivation benchmarks: latency and fidelity.

Measures

* the median latency of :func:`repro.derive.derive_correspondence` as
  the model grows (the GMM sigma edit at increasing data sizes — the
  cost is dominated by profiling, which scales with the address space),
* sequence accuracy with derived maps versus hand-written ones on the
  fig. 8 regression edit and the fig. 9 HMM window-growth chain.

On both workloads the derived map makes the same reuse decisions as the
hand-written reference, so the runs consume identical randomness and the
final estimates must agree *exactly* — the benchmark doubles as a
regression gate on that equivalence.  Everything is recorded through the
``derive_bench`` fixture, so the session writes ``BENCH_derive.json``
(see ``conftest.py``).

Run with ``pytest benchmarks/test_bench_derive.py -q`` (benchmarks are
not collected by the default ``testpaths``).
"""

import time

import numpy as np
import pytest

from repro import CorrespondenceTranslator, infer, infer_sequence
from repro.core.importance import importance_sampling
from repro.derive import derive_correspondence
from repro.gmm.model import gmm_edit_setup
from repro.hmm.model import FirstOrderParams
from repro.hmm.programs import first_order_model, hidden_state_correspondence
from repro.lang import lang_model
from repro.regression import (
    NoOutlierModelParams,
    OutlierModelParams,
    coefficient_correspondence,
    hospital_like_dataset,
    no_outlier_model,
    outlier_model,
)

REPETITIONS = 3
NUM_PARTICLES = 150


def median_seconds(fn, repetitions=REPETITIONS):
    samples = []
    for _ in range(repetitions):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return float(np.median(samples))


class TestDerivationLatency:
    @pytest.mark.parametrize("num_points", [10, 40, 160])
    def test_gmm_latency_scales_with_model_size(self, derive_bench, num_points):
        setup = gmm_edit_setup(num_points, k=5)
        source = lang_model(setup.source_program, env=setup.env, name="gmm_old")
        target = lang_model(setup.target_program, env=setup.env, name="gmm_new")

        derivation = derive_correspondence(source, target)
        latency = median_seconds(lambda: derive_correspondence(source, target))
        derive_bench(
            {
                "series": "gmm-sigma-edit",
                "num_points": num_points,
                "num_addresses": derivation.report.num_matched,
                "median_derive_latency_s": latency,
                "min_confidence": derivation.report.confidence(),
            }
        )
        # Fidelity guard: the sigma edit preserves every address.
        assert derivation.report.fresh == []
        assert derivation.report.dropped == []


class TestProfilingStrategyLatency:
    @pytest.mark.parametrize("num_points", [10, 40, 160])
    def test_static_vs_sampled_profiling(self, derive_bench, num_points):
        """Derivation latency by profiling strategy at growing sizes.

        The static path replaces 2×24 forward simulations with one
        abstract interpretation per model; the series records both so
        ``BENCH_derive.json`` tracks the speedup (and would catch a
        regression that silently demotes the bundled models to the
        sampling fallback)."""
        setup = gmm_edit_setup(num_points, k=5)
        source = lang_model(setup.source_program, env=setup.env, name="gmm_old")
        target = lang_model(setup.target_program, env=setup.env, name="gmm_new")

        static_latency = median_seconds(
            lambda: derive_correspondence(source, target, profile_method="static")
        )
        sampled_latency = median_seconds(
            lambda: derive_correspondence(source, target, profile_method="runtime")
        )
        static = derive_correspondence(source, target, profile_method="static")
        derive_bench(
            {
                "series": "profiling-strategy",
                "num_points": num_points,
                "median_static_latency_s": static_latency,
                "median_sampled_latency_s": sampled_latency,
                "sampled_over_static": (
                    sampled_latency / static_latency if static_latency else None
                ),
                "num_addresses": static.report.num_matched,
            }
        )
        # The static path must actually have run statically on both sides.
        assert any(
            "source=static" in note and "target=static" in note
            for note in static.report.notes
        )


class TestFig8Fidelity:
    def test_derived_equals_handwritten_on_regression(self, derive_bench):
        data = hospital_like_dataset(np.random.default_rng(7), num_points=50)
        source = no_outlier_model(NoOutlierModelParams(), data.xs, data.ys)
        target = outlier_model(OutlierModelParams(), data.xs, data.ys)

        def run(correspondence):
            rng = np.random.default_rng(41)
            collection = importance_sampling(source, rng, NUM_PARTICLES)
            translator = CorrespondenceTranslator(source, target, correspondence)
            step = infer(translator, collection, rng)
            return step.collection.estimate(lambda u: u[("slope",)])

        hand = run(coefficient_correspondence())
        derived = run(derive_correspondence(source, target).correspondence)
        derive_bench(
            {
                "series": "fig8-regression",
                "estimate_handwritten": hand,
                "estimate_derived": derived,
                "exactly_equal": hand == derived,
            }
        )
        assert hand == derived


class TestHMMWindowGrowthFidelity:
    def test_derived_equals_handwritten_on_window_growth(self, derive_bench):
        params = FirstOrderParams(
            log_initial=np.log([0.5, 0.5]),
            log_transition=np.log([[0.7, 0.3], [0.3, 0.7]]),
            log_observation=np.log([[0.8, 0.2], [0.2, 0.8]]),
        )
        observations = (0, 1, 0, 1, 0, 0, 1, 0, 1, 1)
        models = [first_order_model(params, observations[:w]) for w in (4, 7, 10)]

        def run(derive):
            rng = np.random.default_rng(12)
            initial = importance_sampling(models[0], rng, NUM_PARTICLES).resample(rng)
            if derive:
                steps = infer_sequence(models, initial, rng, correspondence="derive")
            else:
                translators = [
                    CorrespondenceTranslator(
                        models[i], models[i + 1], hidden_state_correspondence()
                    )
                    for i in range(len(models) - 1)
                ]
                steps = infer_sequence(translators, initial, rng)
            final = steps[-1].collection
            return final.estimate_probability(lambda u: u[("hidden", 9)] == 1)

        hand = run(False)
        start = time.perf_counter()
        derived = run(True)
        derived_wall = time.perf_counter() - start
        derive_bench(
            {
                "series": "hmm-window-growth",
                "windows": [4, 7, 10],
                "estimate_handwritten": hand,
                "estimate_derived": derived,
                "exactly_equal": hand == derived,
                "derived_sequence_wall_s": derived_wall,
            }
        )
        assert hand == derived
