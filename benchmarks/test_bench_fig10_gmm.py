"""Figure 10 benchmark: GMM translation time, baseline vs optimized.

The central asymptotic claim of Section 6: as the number of data points
``N`` grows (with ``K = 10`` clusters fixed), translating a trace across
the hyper-parameter edit costs O(N + K) with the Section 5 baseline but
O(K) with the dependency-tracking engine.  Compare the two series across
the parameterized ``n`` values in the benchmark table.
"""

import numpy as np
import pytest

from repro.gmm import gmm_edit_setup
from repro.graph import (
    GraphTranslator,
    baseline_lang_translator,
    graph_trace_to_choice_map,
)

SIZES = [10, 100, 1000]


@pytest.fixture(scope="module")
def setups():
    rng = np.random.default_rng(2018)
    prepared = {}
    for n in SIZES:
        setup = gmm_edit_setup(n, k=10)
        optimized = GraphTranslator(
            setup.source_program, setup.target_program, source_env=setup.env
        )
        graph_trace = optimized.initial_trace(rng)
        baseline = baseline_lang_translator(
            setup.source_program, setup.target_program, source_env=setup.env
        )
        flat_trace = baseline.source.score(graph_trace_to_choice_map(graph_trace))
        prepared[n] = (optimized, graph_trace, baseline, flat_trace)
    return prepared


@pytest.mark.parametrize("n", SIZES)
def test_baseline_translation(benchmark, setups, rng, n):
    _optimized, _graph_trace, baseline, flat_trace = setups[n]
    result = benchmark(baseline.translate, rng, flat_trace)
    assert np.isfinite(result.log_weight)


@pytest.mark.parametrize("n", SIZES)
def test_optimized_translation(benchmark, setups, rng, n):
    optimized, graph_trace, _baseline, _flat_trace = setups[n]
    result = benchmark(optimized.translate, rng, graph_trace)
    assert np.isfinite(result.log_weight)
    # The work measure is constant in n: 16 statements for k = 10.
    assert result.components["visited_statements"] == 16


@pytest.mark.parametrize("n", [1000])
def test_initial_recording_run(benchmark, setups, rng, n):
    optimized, _graph_trace, _baseline, _flat_trace = setups[n]
    benchmark(optimized.initial_trace, rng)
