"""Figure 8 benchmark: robust regression, incremental vs MCMC.

Each benchmark measures the runtime of producing one posterior-mean
estimate of the robust model's slope, the quantity plotted on Figure 8's
x-axis; the paired accuracy numbers are produced by
``python -m repro.experiments.fig8`` and recorded in EXPERIMENTS.md.
"""

import numpy as np
import pytest

from repro import CorrespondenceTranslator, WeightedCollection, infer
from repro.core.mcmc import chain, cycle, independent_mh_site
from repro.regression import (
    ADDR_INTERCEPT,
    ADDR_OUTLIER_LOG_VAR,
    ADDR_SLOPE,
    NoOutlierModelParams,
    OutlierModelParams,
    coefficient_correspondence,
    conjugate_posterior,
    exact_regression_trace,
    hospital_like_dataset,
    no_outlier_model,
    outlier_model,
)


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(2018)
    data = hospital_like_dataset(rng, num_points=305)
    p_params = NoOutlierModelParams(prior_std=10.0, std=0.5)
    q_params = OutlierModelParams(prior_std=10.0, prob_outlier=0.1, inlier_std=0.5)
    p_model = no_outlier_model(p_params, data.xs, data.ys)
    q_model = outlier_model(q_params, data.xs, data.ys)
    posterior = conjugate_posterior(p_params, data.xs, data.ys)
    translator = CorrespondenceTranslator(p_model, q_model, coefficient_correspondence())
    return p_model, q_model, posterior, translator


@pytest.mark.parametrize("num_traces", [10, 30, 100])
def test_incremental_estimate(benchmark, setup, rng, num_traces):
    p_model, _q_model, posterior, translator = setup

    def estimate():
        traces = [
            exact_regression_trace(posterior, rng, p_model) for _ in range(num_traces)
        ]
        step = infer(translator, WeightedCollection.uniform(traces), rng)
        return step.collection.estimate(lambda u: u[ADDR_SLOPE])

    slope = benchmark(estimate)
    assert -2.0 < slope < 0.5


@pytest.mark.parametrize("num_traces", [30])
def test_incremental_estimate_no_weights(benchmark, setup, rng, num_traces):
    p_model, _q_model, posterior, translator = setup

    def estimate():
        traces = [
            exact_regression_trace(posterior, rng, p_model) for _ in range(num_traces)
        ]
        step = infer(
            translator, WeightedCollection.uniform(traces), rng, use_weights=False
        )
        return step.collection.estimate(lambda u: u[ADDR_SLOPE])

    benchmark(estimate)


@pytest.mark.parametrize("iterations", [30, 100])
def test_mcmc_estimate(benchmark, setup, rng, iterations):
    _p_model, q_model, _posterior, _translator = setup
    kernel = cycle(
        [
            independent_mh_site(q_model, ADDR_SLOPE),
            independent_mh_site(q_model, ADDR_INTERCEPT),
            independent_mh_site(q_model, ADDR_OUTLIER_LOG_VAR),
        ]
    )

    def estimate():
        states = chain(q_model, kernel, rng, iterations=iterations, burn_in=iterations // 4)
        return float(np.mean([t[ADDR_SLOPE] for t in states]))

    benchmark(estimate)


def test_exact_conjugate_sampling(benchmark, setup, rng):
    p_model, _q, posterior, _t = setup
    benchmark(exact_regression_trace, posterior, rng, p_model)
