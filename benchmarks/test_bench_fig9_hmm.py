"""Figure 9 benchmark: typo correction, incremental vs Gibbs.

Measures the per-word cost of (a) exact FFBS sampling plus trace
translation to the second-order model and (b) Gibbs sweeps on the
second-order model — the two runtimes plotted in Figure 9.
"""

import numpy as np
import pytest

from repro import CorrespondenceTranslator, WeightedCollection, infer
from repro.core.mcmc import chain, gibbs_sweep
from repro.hmm import (
    encode,
    exact_first_order_trace,
    first_order_model,
    generate_corpus,
    hidden_state_correspondence,
    second_order_model,
    train_first_order,
    train_second_order,
)


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(2018)
    corpus = generate_corpus(rng, num_train_words=3000, num_test_words=1)
    p_params = train_first_order(corpus.train)
    q_params = train_second_order(corpus.train)
    typed, _truth = corpus.test[0]
    observations = encode(typed)
    p_model = first_order_model(p_params, observations)
    q_model = second_order_model(q_params, observations)
    translator = CorrespondenceTranslator(
        p_model, q_model, hidden_state_correspondence()
    )
    return p_params, q_params, observations, p_model, q_model, translator


def test_ffbs_exact_sample(benchmark, setup, rng):
    p_params, _q_params, observations, p_model, _q_model, _translator = setup
    benchmark(exact_first_order_trace, p_params, observations, rng, p_model)


@pytest.mark.parametrize("num_traces", [1, 10, 30])
def test_incremental_per_word(benchmark, setup, rng, num_traces):
    p_params, _q_params, observations, p_model, _q_model, translator = setup

    def correct_word():
        traces = [
            exact_first_order_trace(p_params, observations, rng, p_model)
            for _ in range(num_traces)
        ]
        return infer(translator, WeightedCollection.uniform(traces), rng).collection

    collection = benchmark(correct_word)
    assert len(collection) == num_traces


@pytest.mark.parametrize("num_sweeps", [1, 10])
def test_gibbs_per_word(benchmark, setup, rng, num_sweeps):
    _p_params, _q_params, observations, _p_model, q_model, _translator = setup
    addresses = [("hidden", i) for i in range(len(observations))]
    kernel = gibbs_sweep(q_model, addresses)

    def sweep():
        return chain(q_model, kernel, rng, iterations=num_sweeps)

    benchmark(sweep)


def test_single_trace_translation(benchmark, setup, rng):
    p_params, _q_params, observations, p_model, _q_model, translator = setup
    trace = exact_first_order_trace(p_params, observations, rng, p_model)
    benchmark(translator.translate, rng, trace)
