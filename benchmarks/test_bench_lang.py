"""Benchmarks for the structured-language toolchain.

Measures the parser, both semantics (big-step vs the literal small-step
machine of Figure 2), constant folding, the static checker, and
enumeration over a lang program — the substrate costs underlying the
Figure 10 experiment.
"""

import numpy as np
import pytest

from repro.core.enumerate import log_normalizer
from repro.lang import (
    RandomSource,
    check_program,
    fold_constants,
    lang_model,
    parse_program,
    pretty,
    run,
)
from repro.lang.programs import BURGLARY_REFINED, FIGURE3, gmm_source


@pytest.fixture(scope="module")
def burglary_program():
    return parse_program(BURGLARY_REFINED)


def test_parse(benchmark):
    program = benchmark(parse_program, BURGLARY_REFINED)
    assert program is not None


def test_pretty_print(benchmark, burglary_program):
    text = benchmark(pretty, burglary_program)
    assert "flip" in text


def test_big_step_simulation(benchmark, burglary_program, rng):
    model = lang_model(burglary_program)
    benchmark(model.simulate, rng)


def test_small_step_simulation(benchmark, burglary_program, rng):
    def once():
        return run(burglary_program, RandomSource(rng))

    result = benchmark(once)
    assert result.return_value in (0, 1)


def test_constant_folding(benchmark, burglary_program):
    folded = benchmark(fold_constants, burglary_program)
    assert folded is not None


def test_static_checker(benchmark, burglary_program):
    diagnostics = benchmark(check_program, burglary_program)
    assert diagnostics == []


def test_enumeration(benchmark, burglary_program):
    model = lang_model(burglary_program)
    total = benchmark(log_normalizer, model)
    assert total < 0


@pytest.mark.parametrize("n", [100, 1000])
def test_gmm_simulation_scaling(benchmark, rng, n):
    model = lang_model(parse_program(gmm_source(10)), env={"sigma": 2.0, "n": n})
    trace = benchmark(model.simulate, rng)
    assert len(trace) == 10 + 2 * n
