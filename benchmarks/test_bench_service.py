"""Service benchmarks: latency, rejection behavior, recovery, density.

Each test drives a real server (in-process :class:`ServiceHandle` over
a real TCP socket) with the deterministic load generator and records
one structured entry per workload series into ``BENCH_service.json``:

* ``gauss-chain`` / ``gmm-edits`` — p50/p99 per-op latency, rejection
  rate, throughput under healthy capacity (the two required series);
* ``overload`` — the same chain workload against a deliberately
  starved server (1 shard, depth-2 queue, no retries), recording the
  *structured* rejection rate backpressure produces instead of
  unbounded buffering;
* ``recovery`` — sessions/GB of durable state and the wall-clock cost
  of replaying all commit snapshots after an abrupt kill;
* ``scaling-<workload>`` — throughput versus shard *process* count
  (1/2/4) on ``gauss-chain`` and ``fig8-session``: the scale-out series
  process mode exists for.  On hosts with enough cores the series is
  CI-gated monotonic (adding processes must not lose throughput); on
  smaller hosts the records are informational.
"""

import os
import shutil
import tempfile
import time

import pytest

from repro.service import (
    LoadgenConfig,
    ServiceClient,
    ServiceConfig,
    ServiceHandle,
    run_loadgen,
)

pytestmark = pytest.mark.benchmark

NUM_PARTICLES = 60


@pytest.fixture
def store_dir():
    path = tempfile.mkdtemp(prefix="bench-service-")
    yield path
    shutil.rmtree(path, ignore_errors=True)


def _healthy_config(store_dir):
    return ServiceConfig(
        store_dir=store_dir, num_shards=2, queue_depth=16,
        num_particles=NUM_PARTICLES,
    )


@pytest.mark.parametrize("workload", ["gauss-chain", "gmm-edits"])
def test_bench_workload_latency(service_bench, store_dir, workload):
    handle = ServiceHandle.start(_healthy_config(store_dir))
    try:
        summary = run_loadgen(
            *handle.address,
            LoadgenConfig(
                workload=workload, num_sessions=4, ops_per_session=6,
                posterior_every=2, concurrency=2,
                num_particles=NUM_PARTICLES, seed=7,
            ),
        )
    finally:
        handle.stop()
    assert summary["ok"] > 0
    assert summary["rejection_rate"] == 0.0
    service_bench({
        "series": workload,
        "requests": summary["requests"],
        "rejection_rate": summary["rejection_rate"],
        "retries": summary["retries"],
        "throughput_rps": summary["throughput_rps"],
        "latency": summary["latency"],
    })


def test_bench_overload_rejections(service_bench, store_dir):
    """A starved server must reject structurally, not buffer unboundedly."""
    config = ServiceConfig(
        store_dir=store_dir, num_shards=1, queue_depth=2,
        max_inflight_per_tenant=16, num_particles=NUM_PARTICLES,
    )
    handle = ServiceHandle.start(config)
    try:
        summary = run_loadgen(
            *handle.address,
            LoadgenConfig(
                workload="gauss-chain", num_sessions=6, ops_per_session=4,
                posterior_every=0, concurrency=6,
                num_particles=NUM_PARTICLES, seed=7,
                max_attempts=1,  # no retries: count every rejection
            ),
            sleep=lambda _s: None,
        )
    finally:
        handle.stop()
    # Some requests landed, and the overload produced structured
    # rejections (codes, not hangs) — exact counts are timing-dependent.
    assert summary["ok"] > 0
    service_bench({
        "series": "overload",
        "requests": summary["requests"],
        "rejection_rate": summary["rejection_rate"],
        "rejected": summary["rejected"],
        "throughput_rps": summary["throughput_rps"],
    })


SCALING_PROCESS_COUNTS = (1, 2, 4)


@pytest.mark.parametrize("workload", ["gauss-chain", "fig8-session"])
def test_bench_scaling_series(service_bench, workload):
    """Throughput vs shard-process count — the scale-out headline."""
    cpu_count = os.cpu_count() or 1
    throughput = {}
    for shard_processes in SCALING_PROCESS_COUNTS:
        store = tempfile.mkdtemp(prefix=f"bench-scale-{shard_processes}-")
        config = ServiceConfig(
            store_dir=store, shard_processes=shard_processes,
            queue_depth=32, num_particles=NUM_PARTICLES,
            max_sessions_per_tenant=16, max_inflight_per_tenant=16,
        )
        handle = ServiceHandle.start(config)
        try:
            summary = run_loadgen(
                *handle.address,
                LoadgenConfig(
                    workload=workload, num_sessions=8, ops_per_session=3,
                    posterior_every=0, concurrency=4,
                    num_particles=NUM_PARTICLES, seed=7,
                ),
            )
        finally:
            handle.stop()
            shutil.rmtree(store, ignore_errors=True)
        assert summary["ok"] > 0
        assert summary["rejection_rate"] == 0.0
        throughput[shard_processes] = summary["throughput_rps"]
        service_bench({
            "series": f"scaling-{workload}",
            "shard_processes": shard_processes,
            "cpu_count": cpu_count,
            "requests": summary["requests"],
            "throughput_rps": summary["throughput_rps"],
            "latency": summary["latency"],
        })
    # The CI gate: adding shard processes must not lose throughput, up
    # to the host's core count (beyond it processes only time-slice).
    # 15% tolerance absorbs scheduler noise on shared runners.
    for lower, higher in zip(SCALING_PROCESS_COUNTS, SCALING_PROCESS_COUNTS[1:]):
        if cpu_count >= higher:
            assert throughput[higher] >= 0.85 * throughput[lower], (
                f"{workload}: {higher} shard processes slower than {lower} "
                f"({throughput[higher]:.1f} vs {throughput[lower]:.1f} rps) "
                f"on a {cpu_count}-core host"
            )


def test_bench_recovery_time_and_density(service_bench, store_dir):
    """Recovery wall-clock and sessions/GB of durable state."""
    config = _healthy_config(store_dir)
    num_sessions = 6
    handle = ServiceHandle.start(config)
    client = ServiceClient(*handle.address, tenant="bench")
    for index in range(num_sessions):
        sid = f"recov-{index}"
        client.create(sid, "x = gauss(0.0, 2.0);\nreturn x;",
                      num_particles=NUM_PARTICLES, seed=index)
        client.observe(sid, "observe(gauss(x, 1.0) == 1.0);")
    disk_bytes = sum(
        handle.service.store.disk_bytes(f"recov-{i}") for i in range(num_sessions)
    )
    client.close()
    handle.kill()  # abrupt: recovery must come from commit snapshots

    started = time.monotonic()
    handle = ServiceHandle.start(config)
    recovery_wall_s = time.monotonic() - started
    try:
        assert len(handle.service.recovered_sessions) == num_sessions
        sessions_per_gb = num_sessions / (disk_bytes / 1e9)
        service_bench({
            "series": "recovery",
            "num_sessions": num_sessions,
            "num_particles": NUM_PARTICLES,
            "recovery_seconds": handle.service.recovery_seconds,
            "recovery_wall_seconds": recovery_wall_s,
            "disk_bytes": disk_bytes,
            "sessions_per_gb": sessions_per_gb,
        })
    finally:
        handle.stop()
