"""SMC hot-path benchmarks: executor backends, the log-prob cache, and
the columnar collection runtime.

Measures the per-figure median latency of one Algorithm-2 translate
step (the SMC hot path) under

* the legacy inline loop (``executor=None``),
* the ``serial`` / ``thread`` / ``process`` backends of
  :mod:`repro.parallel`,
* the reuse-aware log-prob cache on vs off, and
* ``collection='columnar'`` vs ``collection='object'`` across particle
  counts (100 to 10k),

and records every measurement through the ``smc_bench`` fixture so the
session writes ``BENCH_smc.json`` (see ``conftest.py``).  Three guards
ride along: the fig8-style workload must keep a cache hit rate of at
least 50% when the cache is enabled, cache-on posterior estimates must
match cache-off bitwise (memoization may never change the numbers, only
the time), and the columnar step must beat the object step by at least
3x at 1000 particles (the win that justifies the batched Distribution
API).

Run with ``pytest benchmarks/test_bench_smc.py -q`` (benchmarks are not
collected by the default ``testpaths``).
"""

import os
import time

import numpy as np
import pytest

from repro import CorrespondenceTranslator, WeightedCollection, infer
from repro.core import InferenceConfig
from repro.hmm import (
    encode,
    exact_first_order_trace,
    first_order_model,
    generate_corpus,
    hidden_state_correspondence,
    second_order_model,
    train_first_order,
    train_second_order,
)
from repro.regression import (
    ADDR_SLOPE,
    NoOutlierModelParams,
    OutlierModelParams,
    coefficient_correspondence,
    conjugate_posterior,
    exact_regression_trace,
    hospital_like_dataset,
    no_outlier_model,
    outlier_model,
)

#: Worker count for the parallel series: min(4, cores), but at least 2 so
#: the pool actually fans out even on single-core CI runners.
PARALLEL_WORKERS = max(2, min(4, os.cpu_count() or 1))

REPETITIONS = 5
NUM_TRACES = 100


@pytest.fixture(scope="module")
def fig8_setup():
    rng = np.random.default_rng(2018)
    data = hospital_like_dataset(rng, num_points=305)
    p_params = NoOutlierModelParams(prior_std=10.0, std=0.5)
    q_params = OutlierModelParams(prior_std=10.0, prob_outlier=0.1, inlier_std=0.5)
    p_model = no_outlier_model(p_params, data.xs, data.ys)
    q_model = outlier_model(q_params, data.xs, data.ys)
    posterior = conjugate_posterior(p_params, data.xs, data.ys)
    return p_model, q_model, posterior


@pytest.fixture(scope="module")
def fig9_setup():
    rng = np.random.default_rng(2018)
    corpus = generate_corpus(rng, num_train_words=1500, num_test_words=3)
    p_params = train_first_order(corpus.train)
    q_params = train_second_order(corpus.train)
    return p_params, q_params, corpus


def _median_step_latency(run_step, repetitions=REPETITIONS):
    times = []
    result = None
    for _ in range(repetitions):
        start = time.perf_counter()
        result = run_step()
        times.append(time.perf_counter() - start)
    return float(np.median(times)), result


def _fig8_step(setup, executor, cache, seed=7):
    p_model, q_model, posterior = setup
    translator = CorrespondenceTranslator(
        p_model, q_model, coefficient_correspondence(), log_prob_cache=cache
    )
    config = InferenceConfig(executor=executor, workers=PARALLEL_WORKERS)

    def run_step():
        rng = np.random.default_rng(seed)
        traces = [
            exact_regression_trace(posterior, rng, p_model) for _ in range(NUM_TRACES)
        ]
        step = infer(translator, WeightedCollection.uniform(traces), rng, config=config)
        return step.collection.estimate(lambda u: u[ADDR_SLOPE])

    return run_step, translator


@pytest.mark.parametrize("backend", [None, "serial", "thread", "process"])
def test_fig8_step_latency_by_backend(fig8_setup, smc_bench, backend):
    run_step, _ = _fig8_step(fig8_setup, backend, cache=True)
    median, estimate = _median_step_latency(run_step)
    smc_bench(
        {
            "figure": "fig8",
            "series": f"executor={backend or 'inline'}",
            "workers": 1 if backend in (None, "serial") else PARALLEL_WORKERS,
            "cache": True,
            "num_particles": NUM_TRACES,
            "median_step_latency_s": median,
        }
    )
    assert -2.0 < estimate < 0.5


@pytest.mark.parametrize("cache", [True, False])
def test_fig8_step_latency_by_cache(fig8_setup, smc_bench, cache):
    run_step, translator = _fig8_step(fig8_setup, None, cache=cache)
    median, _ = _median_step_latency(run_step)
    info = translator.cache_info()
    smc_bench(
        {
            "figure": "fig8",
            "series": f"cache={'on' if cache else 'off'}",
            "workers": 1,
            "cache": cache,
            "num_particles": NUM_TRACES,
            "median_step_latency_s": median,
            "cache_hit_rate": None if info is None else info["hit_rate"],
        }
    )
    if cache:
        assert info is not None and info["hit_rate"] >= 0.5, (
            f"fig8 cache hit rate {info} below the 50% floor"
        )


def test_fig8_cache_preserves_posterior_estimates(fig8_setup):
    """Gate: memoized densities are bitwise identical to recomputation."""
    run_on, _ = _fig8_step(fig8_setup, None, cache=True)
    run_off, _ = _fig8_step(fig8_setup, None, cache=False)
    estimate_on = run_on()
    estimate_off = run_off()
    assert estimate_on == estimate_off


#: Particle counts for the columnar scaling series.  The object path is
#: measured at the two smaller sizes only: its per-particle replay takes
#: ~40s/step at 10k, which would dominate the whole benchmark session
#: for a point the 1000-particle gate already establishes.
COLUMNAR_SCALING = [100, 1000, 10_000]
OBJECT_SCALING_CAP = 1000

#: Required columnar speedup over the object path at 1000 particles.
COLUMNAR_SPEEDUP_FLOOR = 3.0


@pytest.fixture(scope="module")
def fig8_populations(fig8_setup):
    """One exact-posterior population per particle count, built once so
    the timed region is the translate step alone (generation at 10k costs
    more than the columnar step itself)."""
    p_model, _q_model, posterior = fig8_setup
    rng = np.random.default_rng(7)
    populations = {}
    for num_particles in COLUMNAR_SCALING:
        traces = [
            exact_regression_trace(posterior, rng, p_model)
            for _ in range(num_particles)
        ]
        populations[num_particles] = WeightedCollection.uniform(traces)
    return populations


def _fig8_collection_step(setup, populations, mode, num_particles):
    p_model, q_model, _posterior = setup
    translator = CorrespondenceTranslator(
        p_model, q_model, coefficient_correspondence()
    )
    config = InferenceConfig(collection=mode)
    population = populations[num_particles]

    def run_step():
        step = infer(
            translator, population.copy(), np.random.default_rng(7), config=config
        )
        assert step.stats.collection_mode == mode
        return step.collection.estimate(lambda u: u[ADDR_SLOPE])

    return run_step


@pytest.mark.parametrize("num_particles", COLUMNAR_SCALING)
def test_fig8_columnar_particle_scaling(
    fig8_setup, fig8_populations, smc_bench, num_particles
):
    repetitions = 3 if num_particles >= 10_000 else REPETITIONS
    for mode in ("columnar", "object"):
        if mode == "object" and num_particles > OBJECT_SCALING_CAP:
            continue
        run_step = _fig8_collection_step(
            fig8_setup, fig8_populations, mode, num_particles
        )
        median, estimate = _median_step_latency(run_step, repetitions=repetitions)
        smc_bench(
            {
                "figure": "fig8",
                "series": f"collection={mode}",
                "workers": 1,
                "cache": False,
                "num_particles": num_particles,
                "median_step_latency_s": median,
            }
        )
        assert -2.0 < estimate < 0.5


def test_fig8_columnar_speedup_gate(fig8_setup, fig8_populations, smc_bench):
    """CI gate: the columnar step must beat the object step >= 3x at 1000
    particles on the paper's Figure 8 workload."""
    medians = {}
    for mode in ("object", "columnar"):
        run_step = _fig8_collection_step(fig8_setup, fig8_populations, mode, 1000)
        medians[mode], _ = _median_step_latency(run_step)
    speedup = medians["object"] / medians["columnar"]
    smc_bench(
        {
            "figure": "fig8",
            "series": "columnar-speedup-gate",
            "workers": 1,
            "cache": False,
            "num_particles": 1000,
            "median_step_latency_s": medians["columnar"],
            "object_median_step_latency_s": medians["object"],
            "speedup": speedup,
        }
    )
    assert speedup >= COLUMNAR_SPEEDUP_FLOOR, (
        f"columnar step is only {speedup:.2f}x faster than the object step "
        f"at 1000 particles (floor: {COLUMNAR_SPEEDUP_FLOOR}x): "
        f"{medians}"
    )


def test_fig8_columnar_estimates_match_object_bitwise(
    fig8_setup, fig8_populations
):
    """The speed win may never change the numbers: fig8's edit has one
    fresh address, so the inline columnar step is bitwise reproducible."""
    estimates = {}
    for mode in ("object", "columnar"):
        run_step = _fig8_collection_step(fig8_setup, fig8_populations, mode, 100)
        estimates[mode] = run_step()
    assert estimates["object"] == estimates["columnar"]


@pytest.mark.parametrize("backend", [None, "thread"])
def test_fig9_step_latency_by_backend(fig9_setup, smc_bench, backend):
    p_params, q_params, corpus = fig9_setup
    typed, _truth = corpus.test[0]
    observations = encode(typed)
    p_model = first_order_model(p_params, observations)
    q_model = second_order_model(q_params, observations)
    translator = CorrespondenceTranslator(
        p_model, q_model, hidden_state_correspondence()
    )
    config = InferenceConfig(executor=backend, workers=PARALLEL_WORKERS)

    def run_step():
        rng = np.random.default_rng(11)
        traces = [
            exact_first_order_trace(p_params, observations, rng, p_model)
            for _ in range(30)
        ]
        return infer(translator, WeightedCollection.uniform(traces), rng, config=config)

    median, _ = _median_step_latency(run_step)
    smc_bench(
        {
            "figure": "fig9",
            "series": f"executor={backend or 'inline'}",
            "workers": 1 if backend is None else PARALLEL_WORKERS,
            "cache": True,
            "num_particles": 30,
            "median_step_latency_s": median,
        }
    )
