"""Persistence benchmarks: checkpoint write/restore and session edits.

Measures the median latency of

* one atomic checkpoint ``save`` and one verified ``load`` of a
  realistic particle collection (JSON and binary wire formats),
* one session ``submit`` (translate request) on the fig8 regression
  workload, and one evict/reload round trip through the on-disk store,

and records everything through the ``store_bench`` fixture so the
session writes ``BENCH_store.json`` (see ``conftest.py``).  A
correctness guard rides along: the loaded checkpoint must carry the
same log-weights that were saved, so timing never drifts away from the
round-trip contract.

Run with ``pytest benchmarks/test_bench_store.py -q`` (benchmarks are
not collected by the default ``testpaths``).
"""

import time

import numpy as np
import pytest

from repro import CorrespondenceTranslator
from repro.core.importance import importance_sampling
from repro.regression import (
    NoOutlierModelParams,
    OutlierModelParams,
    coefficient_correspondence,
    hospital_like_dataset,
    no_outlier_model,
    outlier_model,
)
from repro.store import CheckpointManager, SessionManager

REPETITIONS = 5
NUM_PARTICLES = 200


def median_seconds(fn, repetitions=REPETITIONS):
    samples = []
    for _ in range(repetitions):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return float(np.median(samples))


@pytest.fixture(scope="module")
def fig8_setup():
    data = hospital_like_dataset(np.random.default_rng(7), num_points=50)
    source = no_outlier_model(NoOutlierModelParams(), data.xs, data.ys)
    target = outlier_model(OutlierModelParams(), data.xs, data.ys)
    translator = CorrespondenceTranslator(
        source, target, coefficient_correspondence()
    )
    collection = importance_sampling(
        source, np.random.default_rng(0), NUM_PARTICLES
    )
    return source, translator, collection


@pytest.mark.parametrize("format", ["json", "binary"])
def test_checkpoint_write_latency(fig8_setup, store_bench, tmp_path, format):
    _, _, collection = fig8_setup
    manager = CheckpointManager(tmp_path, format=format)
    rng = np.random.default_rng(1)
    step = iter(range(10_000))

    latency = median_seconds(
        lambda: manager.save(next(step), collection, rng=rng)
    )
    size = manager.path_for(0).stat().st_size
    store_bench({
        "operation": "checkpoint_write",
        "series": format,
        "num_particles": NUM_PARTICLES,
        "file_bytes": size,
        "median_latency_s": latency,
    })


@pytest.mark.parametrize("format", ["json", "binary"])
def test_checkpoint_restore_latency(fig8_setup, store_bench, tmp_path, format):
    _, _, collection = fig8_setup
    manager = CheckpointManager(tmp_path, format=format)
    manager.save(0, collection, rng=np.random.default_rng(1))

    latency = median_seconds(lambda: manager.load(0))
    loaded = manager.load(0)
    assert loaded.collection.log_weights == collection.log_weights
    store_bench({
        "operation": "checkpoint_restore",
        "series": format,
        "num_particles": NUM_PARTICLES,
        "median_latency_s": latency,
    })


def test_session_translate_latency(fig8_setup, store_bench):
    _, translator, collection = fig8_setup
    manager = SessionManager()
    session = manager.create("bench", collection, seed=3)

    latency = median_seconds(lambda: session.submit(translator))
    store_bench({
        "operation": "session_translate",
        "series": "fig8",
        "num_particles": NUM_PARTICLES,
        "edits_timed": REPETITIONS,
        "median_latency_s": latency,
    })


def test_session_evict_reload_latency(fig8_setup, store_bench, tmp_path):
    _, _, collection = fig8_setup
    manager = SessionManager(tmp_path)
    manager.create("bench", collection, seed=3)

    def round_trip():
        manager.evict("bench")
        manager.get("bench")

    latency = median_seconds(round_trip)
    store_bench({
        "operation": "session_evict_reload",
        "series": "json",
        "num_particles": NUM_PARTICLES,
        "median_latency_s": latency,
    })
