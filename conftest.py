"""Repository-root pytest configuration.

Defines the ``--workers`` option consumed by the cross-backend
determinism suite (``tests/parallel``): CI runs that suite at an
explicit worker count (``pytest tests/parallel --workers 2``) on top of
the grid the tests always cover.
"""


def pytest_addoption(parser):
    parser.addoption(
        "--workers",
        type=int,
        default=2,
        help="worker count for the cross-backend determinism checks "
        "(tests/parallel); the in-test backend grid runs regardless",
    )
