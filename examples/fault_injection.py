"""Fault-isolated SMC: one bad particle no longer kills the run.

Translations fail in practice — a correspondence misses a choice, a
proposal leaves a distribution's support, arithmetic collapses to NaN.
This example injects such faults *deterministically* into the burglary
translation of Figure 1 and shows what each fault policy does with the
identical fault stream:

* ``fail_fast`` (the default) crashes with the injected error,
* ``drop`` loses the affected particles but keeps the run alive,
* ``regenerate`` retries and then re-draws the particle from the prior,
  recovering the exact posterior despite a 20% failure rate.

Run with::

    python examples/fault_injection.py

See ``docs/robustness.md`` for why the policies preserve the paper's
statistical guarantees.
"""

import numpy as np

from repro import (
    Correspondence,
    CorrespondenceTranslator,
    FaultPolicy,
    InferenceConfig,
    Model,
    ReproError,
    WeightedCollection,
    exact_choice_marginal,
    exact_posterior_sampler,
    infer,
)
from repro.distributions import Flip
from repro.testing import FaultInjector, FaultyTranslator


def original_program(t):
    burglary = t.sample(Flip(0.02), "burglary")
    alarm = t.sample(Flip(0.9 if burglary else 0.01), "alarm")
    t.observe(Flip(0.8 if alarm else 0.05), 1, "mary_wakes")
    return burglary


def refined_program(t):
    burglary = t.sample(Flip(0.02), "burglary")
    earthquake = t.sample(Flip(0.005), "earthquake")
    p_alarm = 0.95 if earthquake else (0.9 if burglary else 0.01)
    alarm = t.sample(Flip(p_alarm), "alarm")
    p_wakes = (0.9 if earthquake else 0.8) if alarm else 0.05
    t.observe(Flip(p_wakes), 1, "mary_wakes")
    return burglary


def run_policy(translator, collection, policy):
    """One Algorithm-2 step under a fresh 20%-failure fault stream."""
    # Same injector seed every time: each policy faces identical faults.
    faulty = FaultyTranslator(translator, FaultInjector(seed=13, error_rate=0.2))
    rng = np.random.default_rng(2018)
    return infer(faulty, collection, rng, config=InferenceConfig(fault_policy=policy))


def main():
    p = Model(original_program, name="original")
    q = Model(refined_program, name="refined")
    translator = CorrespondenceTranslator(
        p, q, Correspondence.identity(["burglary", "alarm"])
    )

    truth = exact_choice_marginal(q, "burglary")[1]
    print(f"exact P(burglary | mary wakes) under the refined model: {truth:.4f}\n")

    rng = np.random.default_rng(0)
    sampler = exact_posterior_sampler(p)
    collection = WeightedCollection.uniform([sampler(rng) for _ in range(8000)])

    # --- fail_fast: the pre-policy behaviour, a crash ---------------------
    try:
        run_policy(translator, collection, "fail_fast")
    except ReproError as error:
        print(f"fail_fast : crashed as before -> {type(error).__name__}: {error}")

    # --- drop: lose the particle, keep the collection ---------------------
    step = run_policy(translator, collection, "drop")
    estimate = step.collection.estimate_probability(lambda u: u["burglary"] == 1)
    print(f"drop      : estimate {estimate:.4f}   {step.stats}")

    # --- regenerate: retry, then importance-sample from the prior ---------
    policy = FaultPolicy(mode="regenerate", max_retries=2)
    step = run_policy(translator, collection, policy)
    estimate = step.collection.estimate_probability(lambda u: u["burglary"] == 1)
    print(f"regenerate: estimate {estimate:.4f}   {step.stats}")


if __name__ == "__main__":
    main()
