"""An iterative modeling session (the workflow of the paper's intro).

"One may often explore different variants of a model, change the data
upon which a model is conditioned, or change the prior assumptions" —
this example plays such a session in the structured language: starting
from a simple coin-bias model, the modeler makes three successive edits
(a prior change, a likelihood refinement, and new data), and after each
edit the existing traces are *translated* rather than re-generated.

Run with::

    python examples/model_exploration.py
"""

import numpy as np

from repro import InferenceConfig, WeightedCollection, infer
from repro.core.enumerate import exact_return_distribution
from repro.graph import GraphTranslator, replace_constant, run_initial
from repro.lang import lang_model, parse_program

BASE = """
pBias = 0.3;
pHeadsBiased = 0.9;
biased = flip(pBias);
pHeads = biased ? pHeadsBiased : 0.5;
observe(flip(pHeads) == 1);
observe(flip(pHeads) == 1);
observe(flip(pHeads) == 0);
return biased;
"""


def posterior_of(program):
    return exact_return_distribution(lang_model(program))[1]


def estimate(collection, address):
    return collection.estimate_probability(lambda t: t[address] == 1)


def main():
    rng = np.random.default_rng(3)
    program = parse_program(BASE)
    biased_address = ("flip:4:10",)  # the `biased = flip(pBias)` choice

    # Initial inference: sampling-importance-resampling into graph traces.
    print("initial model: P(biased | H, H, T) =", f"{posterior_of(program):.4f}")
    raw = [run_initial(program, rng) for _ in range(20000)]
    collection = WeightedCollection(
        raw, [trace.observation_log_prob for trace in raw]
    ).resample(rng, size=4000)
    print(f"  estimate from {len(collection)} traces:",
          f"{estimate(collection, biased_address):.4f}")

    # Edit 1: the prior probability of a biased coin was too low.
    edited1 = replace_constant(program, "pBias", 0.5)
    # Edit 2: a biased coin is less extreme than first assumed.
    edited2 = replace_constant(edited1, "pHeadsBiased", 0.75)

    history = [program, edited1, edited2]
    descriptions = ["edit 1: pBias 0.3 -> 0.5", "edit 2: pHeadsBiased 0.9 -> 0.75"]
    for old, new, description in zip(history, history[1:], descriptions):
        translator = GraphTranslator(old, new)
        step = infer(
            translator, collection, rng, config=InferenceConfig(resample="adaptive")
        )
        collection = step.collection
        print(f"\n{description}")
        print(f"  exact posterior:      {posterior_of(new):.4f}")
        print(f"  translated estimate:  {estimate(collection, biased_address):.4f}")
        print(f"  {step.stats}")

    print("\nEvery step reused the existing traces; no inference from scratch.")


if __name__ == "__main__":
    main()
