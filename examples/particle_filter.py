"""Particle filtering as incremental inference (Section 8 connection).

Previous SMC systems for probabilistic programs supported one form of
incrementality: sequentially observing data.  The paper's framework
generalizes it — and this example shows the reduction in code: a
state-space model observed one step at a time becomes a sequence of
programs, and translating with the *full identity correspondence* is a
bootstrap particle filter.

We track a noisy 1-D random walk and compare the filtered state
estimates against the exact Kalman filter.

Run with::

    python examples/particle_filter.py
"""

import numpy as np

from repro import Model
from repro.core.annealing import observation_schedule, sequential_observations
from repro.distributions import Normal

PROCESS_STD = 1.0
OBS_STD = 0.7


def random_walk(t, num_steps):
    """A latent random walk with noisy observations at every step."""
    states = []
    position = 0.0
    for i in range(num_steps):
        position = t.sample(Normal(position, PROCESS_STD), ("x", i))
        t.sample(Normal(position, OBS_STD), ("y", i))
        states.append(position)
    return states


def kalman_filter(observations):
    """Exact filtering means/variances for the same model."""
    means, variances = [], []
    mean, variance = 0.0, PROCESS_STD**2  # prior of x_0 (walk from 0)
    for i, y in enumerate(observations):
        if i > 0:
            variance = variance + PROCESS_STD**2
        gain = variance / (variance + OBS_STD**2)
        mean = mean + gain * (y - mean)
        variance = (1 - gain) * variance
        means.append(mean)
        variances.append(variance)
    return means, variances


def main():
    rng = np.random.default_rng(11)

    # Simulate a ground-truth trajectory and observations.
    num_steps = 12
    truth = np.cumsum(rng.normal(0, PROCESS_STD, size=num_steps))
    observations = truth + rng.normal(0, OBS_STD, size=num_steps)

    # One program per time step: P_k observes y_0..y_k and has k+1 states.
    base = Model(random_walk)
    models = observation_schedule(
        base,
        batches=[{("y", i): float(observations[i])} for i in range(num_steps)],
        args_per_step=[(i + 1,) for i in range(num_steps)],
    )

    print(f"running a {num_steps}-step particle filter with 4000 particles...")
    collection, steps = sequential_observations(models, 4000, rng)

    kalman_means, _kalman_vars = kalman_filter(observations)
    # steps[k] holds the particle cloud after observing y_0..y_{k+1}, so
    # its estimate of x_{k+1} is the *filtered* state — directly
    # comparable to the Kalman filter at the same step.
    print(f"\n{'step':>4}  {'truth':>8}  {'observed':>8}  {'particle':>9}  {'kalman':>8}")
    for i in (1, num_steps // 2, num_steps - 1):
        filtered = steps[i - 1].collection.estimate(lambda u, i=i: u[("x", i)])
        print(
            f"{i:>4}  {truth[i]:>8.3f}  {observations[i]:>8.3f}  "
            f"{filtered:>9.3f}  {kalman_means[i]:>8.3f}"
        )

    final_error = abs(
        collection.estimate(lambda u: u[("x", num_steps - 1)]) - kalman_means[-1]
    )
    print(f"\nfinal-state error vs exact Kalman filter: {final_error:.4f}")
    resamples = sum(1 for step in steps if step.stats.resampled)
    print(f"adaptive resampling triggered in {resamples}/{len(steps)} steps")


if __name__ == "__main__":
    main()
