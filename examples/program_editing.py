"""Editing a structured probabilistic program with incremental
re-execution (Section 6 of the paper).

This example uses the paper's concrete language (Section 3).  We parse
a Gaussian mixture model (Listing 5), run it once while recording its
dependency graph, then apply a hyper-parameter *edit* and propagate the
change: only the statements affected by the edit are re-executed, the
cluster centers are reused and reweighted, and the N data-point
statements are skipped entirely.

Run with::

    python examples/program_editing.py
"""

import time

import numpy as np

from repro.graph import (
    GraphTranslator,
    baseline_lang_translator,
    graph_trace_to_choice_map,
    replace_constant,
)
from repro.gmm import gmm_generative_source
from repro.lang import parse_program, pretty


def main():
    rng = np.random.default_rng(5)
    n = 2000  # data points; K = 10 clusters

    source_program = parse_program(gmm_generative_source(k=10, sigma=2))
    print("the Gaussian mixture program (Listing 5):\n")
    print(pretty(source_program))

    # Edit: change the prior std of the cluster centers from 2 to 3.
    target_program = replace_constant(source_program, "sigma", 3)
    print("\nedit: sigma = 2  ->  sigma = 3\n")

    translator = GraphTranslator(
        source_program, target_program, source_env={"n": n}
    )

    print(f"running the original program once (n = {n})...")
    trace = translator.initial_trace(rng)
    print(f"  trace has {len(trace)} random choices, "
          f"log-probability {trace.log_prob:.1f}")

    print("\npropagating the edit through the dependency graph...")
    start = time.perf_counter()
    result = translator.translate(rng, trace)
    optimized_seconds = time.perf_counter() - start
    print(f"  visited {result.components['visited_statements']} statements "
          f"(skipped {result.components['skipped_statements']}), "
          f"log weight {result.log_weight:+.4f}, "
          f"{optimized_seconds * 1e3:.2f} ms")

    # Compare with the Section 5 baseline, which re-executes everything.
    baseline = baseline_lang_translator(
        source_program, target_program, source_env={"n": n}
    )
    flat_trace = baseline.source.score(graph_trace_to_choice_map(trace))
    start = time.perf_counter()
    baseline_result = baseline.translate(rng, flat_trace)
    baseline_seconds = time.perf_counter() - start
    print(f"\nbaseline full re-execution: log weight "
          f"{baseline_result.log_weight:+.4f}, {baseline_seconds * 1e3:.2f} ms")
    print(f"speedup from dependency tracking: "
          f"{baseline_seconds / optimized_seconds:.0f}x")

    assert abs(result.log_weight - baseline_result.log_weight) < 1e-9, (
        "both algorithms compute the same weight"
    )


if __name__ == "__main__":
    main()
