"""Quickstart: incremental inference on the paper's burglary example.

Mr. Holmes models whether a burglary is in progress given that Mary
woke up (Figure 1 of the paper).  He then *refines* the model to account
for earthquakes.  Instead of re-running inference from scratch on the
refined model, we translate the traces we already have.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import (
    Correspondence,
    CorrespondenceTranslator,
    InferenceConfig,
    Model,
    WeightedCollection,
    exact_choice_marginal,
    exact_posterior_sampler,
    infer,
)
from repro.distributions import Flip


def original_program(t):
    """Burglary -> alarm -> Mary wakes (observed)."""
    burglary = t.sample(Flip(0.02), "burglary")
    alarm = t.sample(Flip(0.9 if burglary else 0.01), "alarm")
    t.observe(Flip(0.8 if alarm else 0.05), 1, "mary_wakes")
    return burglary


def refined_program(t):
    """The same story, refined with an earthquake cause for the alarm."""
    burglary = t.sample(Flip(0.02), "burglary")
    earthquake = t.sample(Flip(0.005), "earthquake")
    p_alarm = 0.95 if earthquake else (0.9 if burglary else 0.01)
    alarm = t.sample(Flip(p_alarm), "alarm")
    p_wakes = (0.9 if earthquake else 0.8) if alarm else 0.05
    t.observe(Flip(p_wakes), 1, "mary_wakes")
    return burglary


def main():
    rng = np.random.default_rng(0)
    p = Model(original_program)
    q = Model(refined_program)

    # Ground truth by exact enumeration (these are tiny discrete models).
    truth_p = exact_choice_marginal(p, "burglary")[1]
    truth_q = exact_choice_marginal(q, "burglary")[1]
    print(f"P(burglary | mary wakes), original program: {truth_p:.4f}")
    print(f"P(burglary | mary wakes), refined program:  {truth_q:.4f}")

    # Suppose we already have posterior samples of the original program
    # (here drawn exactly; in general they come from whatever inference
    # algorithm was run on P).
    sampler = exact_posterior_sampler(p)
    traces = WeightedCollection.uniform([sampler(rng) for _ in range(20000)])

    # The correspondence says: "burglary" and "alarm" play the same role
    # in both programs.  The earthquake choice is new and will be sampled.
    correspondence = Correspondence.identity(["burglary", "alarm"])
    translator = CorrespondenceTranslator(p, q, correspondence)

    # One step of SMC (Algorithm 2): translate every trace and reweight.
    step = infer(translator, traces, rng)
    estimate = step.collection.estimate_probability(lambda u: u["burglary"] == 1)
    print(f"incremental estimate for the refined program: {estimate:.4f}")
    print(step.stats)

    # The weights matter: discarding them converges to the wrong answer.
    unweighted = infer(
        translator, traces, rng, config=InferenceConfig(use_weights=False)
    )
    wrong = unweighted.collection.estimate_probability(lambda u: u["burglary"] == 1)
    print(f"without weights (biased towards P's posterior):  {wrong:.4f}")


if __name__ == "__main__":
    main()
