"""Robust Bayesian linear regression via incremental inference
(Section 7.2 of the paper).

Workflow:

1. fit the plain Bayesian regression ``P`` (Listing 1) — its posterior
   is conjugate, so exact samples are cheap;
2. decide the data has outliers and move to the robust model ``Q``
   (Listing 2), which adds an outlier-variance random choice and a
   mixture likelihood;
3. translate the exact samples of ``P`` into weighted samples of ``Q``
   instead of running MCMC on ``Q`` from scratch.

Run with::

    python examples/robust_regression.py
"""

import numpy as np

from repro import CorrespondenceTranslator, WeightedCollection, infer
from repro.core.mcmc import chain, cycle, random_walk_mh_site
from repro.regression import (
    ADDR_INTERCEPT,
    ADDR_OUTLIER_LOG_VAR,
    ADDR_SLOPE,
    NoOutlierModelParams,
    OutlierModelParams,
    coefficient_correspondence,
    conjugate_posterior,
    exact_regression_trace,
    hospital_like_dataset,
    no_outlier_model,
    outlier_model,
)


def main():
    rng = np.random.default_rng(1)

    # A synthetic stand-in for the paper's 305-municipality hospital data:
    # linear signal plus ~10% gross outliers.
    data = hospital_like_dataset(rng, num_points=305)
    print(
        f"dataset: {data.num_points} points, {data.num_outliers} outliers, "
        f"true slope {data.true_slope:+.2f}"
    )

    p_params = NoOutlierModelParams(prior_std=10.0, std=0.5)
    q_params = OutlierModelParams(prior_std=10.0, prob_outlier=0.1, inlier_std=0.5)
    p = no_outlier_model(p_params, data.xs, data.ys)
    q = outlier_model(q_params, data.xs, data.ys)

    # Step 1: exact posterior of the non-robust model.
    posterior = conjugate_posterior(p_params, data.xs, data.ys)
    print(f"non-robust posterior slope mean: {posterior.slope_mean:+.4f} "
          "(biased by the outliers)")

    # Step 2 & 3: translate exact samples of P into samples of Q, reusing
    # the regression coefficients and sampling the new outlier-variance
    # choice from its prior.
    traces = [exact_regression_trace(posterior, rng, p) for _ in range(300)]
    translator = CorrespondenceTranslator(p, q, coefficient_correspondence())
    step = infer(translator, WeightedCollection.uniform(traces), rng)
    slope = step.collection.estimate(lambda u: u[ADDR_SLOPE])
    outlier_log_var = step.collection.estimate(lambda u: u[ADDR_OUTLIER_LOG_VAR])
    print(f"robust posterior slope (incremental):  {slope:+.4f}")
    print(f"inferred outlier log-variance:         {outlier_log_var:+.3f}")
    print(step.stats)

    # Reference: a long hand-tuned random-walk chain on Q.
    kernel = cycle(
        [
            random_walk_mh_site(q, ADDR_SLOPE, 0.03),
            random_walk_mh_site(q, ADDR_INTERCEPT, 0.03),
            random_walk_mh_site(q, ADDR_OUTLIER_LOG_VAR, 0.3),
        ]
    )
    initial = q.score(
        {
            ADDR_SLOPE: posterior.slope_mean,
            ADDR_INTERCEPT: posterior.intercept_mean,
            ADDR_OUTLIER_LOG_VAR: q_params.outlier_log_var_mu,
        }
    )
    states = chain(q, kernel, rng, initial=initial, iterations=8000, burn_in=2000)
    gold = float(np.mean([t[ADDR_SLOPE] for t in states]))
    print(f"robust posterior slope (long MCMC):    {gold:+.4f}")
    print(f"incremental error vs gold standard:    {abs(slope - gold):.4f}")


if __name__ == "__main__":
    main()
