"""The inference service, end to end: serve, observe, crash, recover.

A tour of ``repro.service`` from the client's seat:

1. start a durable server on an ephemeral port (in-process
   :class:`~repro.service.ServiceHandle`, same code path as
   ``repro serve``);
2. create a session and stream observations into it through
   :class:`~repro.service.RetryingClient` — the client half of
   backpressure (full-jitter exponential backoff, floored by the
   server's ``retry_after_s`` hints);
3. read the posterior, then **kill the server without warning** and
   restart it on the same store — every acknowledged observation is
   recovered byte-identically from the commit snapshots;
4. show the quota and deadline rejections a misbehaving client sees:
   structured, typed, and retryable (or not) by design.

Run with::

    python examples/service_client.py
"""

import tempfile

from repro.errors import DeadlineExceededError, QuotaExceededError
from repro.service import (
    RetryingClient,
    ServiceClient,
    ServiceConfig,
    ServiceHandle,
)

PROGRAM = "x = gauss(0.0, 2.0);\nreturn x;"
OBSERVATIONS = [0.8, 1.1, 0.9, 1.3]


def main() -> None:
    store_dir = tempfile.mkdtemp(prefix="repro-service-demo-")
    config = ServiceConfig(
        store_dir=store_dir,
        num_shards=2,
        num_particles=150,
        max_sessions_per_tenant=2,
    )

    # -- 1. serve ---------------------------------------------------------
    handle = ServiceHandle.start(config)
    host, port = handle.address
    print(f"serving on {host}:{port} (store: {store_dir})")

    # -- 2. a session fed by a retrying client ----------------------------
    client = RetryingClient(ServiceClient(host, port, tenant="demo"))
    created = client.create("melt", PROGRAM, seed=42)
    print(f"created session 'melt': ess={created['ess']:.1f} "
          f"over {created['num_particles']} particles")

    for value in OBSERVATIONS:
        ack = client.observe("melt", f"observe(gauss(x, 1.0) == {value});")
        print(f"  observed {value}: edit #{ack['num_edits']}, "
              f"ess={ack['ess']:.1f}")

    before = client.posterior("melt", top=3)
    print(f"posterior after {before['num_edits']} edits "
          f"(degraded={before['degraded']}):")
    for entry in before["values"]:
        print(f"  {entry['value']:+.3f}  p={entry['probability']:.3f}")

    # -- 3. crash and recover ---------------------------------------------
    client.client.close()
    handle.kill()  # SIGKILL-equivalent: no draining, no goodbye
    print("\nserver killed; restarting on the same store...")
    handle = ServiceHandle.start(config)
    print(f"recovered sessions: {handle.service.recovered_sessions} "
          f"in {handle.service.recovery_seconds:.3f}s")

    client = RetryingClient(
        ServiceClient(*handle.address, tenant="demo")
    )
    after = client.posterior("melt", top=3)
    assert after["values"] == before["values"], "recovery must be exact"
    print("posterior after recovery is byte-identical ✓")

    # -- 4. structured rejections -----------------------------------------
    client.create("second", PROGRAM, seed=1)
    try:
        # The quota is 2: a third session is rejected with a typed,
        # retryable error — not a hang, not a stack trace.
        ServiceClient(*handle.address, tenant="demo").create(
            "third", PROGRAM
        )
    except QuotaExceededError as error:
        print(f"quota rejection as expected: {error} "
              f"(quota={error.quota}, limit={error.limit}, "
              f"retryable={error.retryable})")

    try:
        # An impossible deadline cancels mid-translation and rolls the
        # session back; the same edit succeeds later with a sane one.
        client.client.observe(
            "melt", "observe(gauss(x, 1.0) == 0.7);", deadline_s=0.001
        )
    except DeadlineExceededError as error:
        print(f"deadline rejection as expected: {error}")
    unchanged = client.posterior("melt")
    assert unchanged["num_edits"] == before["num_edits"]
    print("session state untouched by the cancelled request ✓")

    client.client.close()
    handle.stop()
    print("\ndone; server drained cleanly")


if __name__ == "__main__":
    main()
