"""An HMM edit sequence served through an inference session.

The paper's interactive workflow, end to end on the Section 7.3 models:
a client keeps one :class:`repro.store.InferenceSession` while editing
its hidden Markov model several times —

1. start with the first-order HMM of Listing 3 observing a short prefix
   of the data;
2. grow the observation window twice (the classic SMC special case:
   each edit adds hidden states *and* the observations that constrain
   them, reusing every existing hidden state);
3. swap the program structure from first-order to the second-order
   model of Listing 4 (the paper's Figure 9 edit), carrying all hidden
   states across with :func:`repro.hmm.hidden_state_correspondence`.

The session records per-edit diagnostics and metrics; at the end the
session is persisted to an on-disk store, reloaded into a fresh
manager, and queried again — demonstrating that the durable state
(collection, RNG stream, history) survives the round trip.

Run with::

    python examples/session_edits.py
"""

import tempfile

import numpy as np

from repro.core import CorrespondenceTranslator
from repro.core.importance import importance_sampling
from repro.hmm import (
    FirstOrderParams,
    SecondOrderParams,
    first_order_model,
    hidden_sequence,
    hidden_state_correspondence,
    second_order_model,
)
from repro.store import SessionManager

NUM_PARTICLES = 300
SEED = 7


def log(rows):
    return np.log(np.asarray(rows, dtype=float))


def build_params():
    """A sticky 2-state chain with informative binary observations."""
    first = FirstOrderParams(
        log_initial=FirstOrderParams.uniform_initial(2),
        log_transition=log([[0.85, 0.15], [0.15, 0.85]]),
        log_observation=log([[0.8, 0.2], [0.2, 0.8]]),
    )
    # The second-order variant makes staying put even stickier when the
    # two previous states agree.
    second = SecondOrderParams(
        log_initial=first.log_initial,
        log_first_transition=first.log_transition,
        log_transition=log([
            [[0.95, 0.05], [0.50, 0.50]],
            [[0.50, 0.50], [0.05, 0.95]],
        ]),
        log_observation=first.log_observation,
    )
    return first, second


def most_likely_states(session, num_steps):
    """Posterior marginal argmax of each hidden state."""
    states = []
    for i in range(num_steps):
        p_one = session.estimate(lambda t, i=i: float(t[("hidden", i)] == 1))
        states.append(1 if p_one > 0.5 else 0)
    return states


def main():
    first, second = build_params()
    observations = [0, 0, 1, 1, 1, 0, 0, 1, 1, 0]
    windows = [4, 7, 10]  # growing observation prefixes

    rng = np.random.default_rng(SEED)
    store_dir = tempfile.mkdtemp(prefix="repro-sessions-")
    manager = SessionManager(store_dir)

    # Edit 0 baseline: the first-order model on the shortest window.
    model = first_order_model(first, observations[: windows[0]])
    initial = importance_sampling(model, rng, NUM_PARTICLES).resample(rng)
    session = manager.create("hmm-demo", initial, seed=SEED + 1)
    print(f"created session {session.session_id!r} with {len(initial)} particles")
    print(f"window={windows[0]}: states={most_likely_states(session, windows[0])}")

    # Edits 1-2: grow the observation window.  Every existing hidden
    # state is reused; only the new suffix is sampled fresh.
    correspondence = hidden_state_correspondence()
    for window in windows[1:]:
        next_model = first_order_model(first, observations[:window])
        step = session.submit(
            CorrespondenceTranslator(model, next_model, correspondence)
        )
        model = next_model
        print(
            f"window={window}: ess={step.stats.ess_after:6.1f}  "
            f"states={most_likely_states(session, window)}"
        )

    # Edit 3: structural edit, first-order -> second-order (Figure 9).
    target = second_order_model(second, observations)
    step = session.submit(CorrespondenceTranslator(model, target, correspondence))
    print(
        f"second-order swap: ess={step.stats.ess_after:6.1f}  "
        f"states={most_likely_states(session, len(observations))}"
    )

    print(f"\nsession history ({session.num_edits} edits):")
    for entry in session.history:
        print(
            f"  edit {entry['edit']}: ess_after={entry['ess_after']:8.1f}  "
            f"resampled={entry['resampled']}  "
            f"log_mean_w={entry['log_mean_weight_increment']:+.3f}"
        )

    # Persist, then reload into a *fresh* manager: the durable state —
    # collection, RNG stream, history — survives the round trip.
    path = manager.close(session.session_id)
    print(f"\nsession persisted to {path}")
    reloaded = SessionManager(store_dir).get("hmm-demo")
    assert reloaded.num_edits == 3
    sample = hidden_sequence(reloaded.collection.items[0])
    print(f"reloaded: {reloaded!r}")
    print(f"one posterior hidden sequence from the reloaded session: {sample}")


if __name__ == "__main__":
    main()
