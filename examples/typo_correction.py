"""Typo correction with a higher-order HMM via incremental inference
(Section 7.3 of the paper).

A first-order character HMM admits exact posterior sampling by dynamic
programming (FFBS), but misses second-order structure ("the", "ing").
Instead of running MCMC on the second-order model from scratch, we
translate the first-order model's exact samples — reusing every hidden
state and reweighting by the second-order transition probabilities.

Run with::

    python examples/typo_correction.py
"""

from collections import Counter

import numpy as np

from repro import CorrespondenceTranslator, WeightedCollection, infer
from repro.hmm import (
    ALPHABET,
    decode,
    encode,
    exact_first_order_trace,
    first_order_model,
    generate_corpus,
    ground_truth_posterior_probability,
    hidden_sequence,
    hidden_state_correspondence,
    second_order_model,
    train_first_order,
    train_second_order,
)


def correct_word(typed, p_params, q_params, rng, num_traces=30):
    """Return the most probable correction and its posterior weight."""
    observations = encode(typed)
    p = first_order_model(p_params, observations)
    q = second_order_model(q_params, observations)
    translator = CorrespondenceTranslator(p, q, hidden_state_correspondence())
    traces = [
        exact_first_order_trace(p_params, observations, rng, p)
        for _ in range(num_traces)
    ]
    step = infer(translator, WeightedCollection.uniform(traces), rng)
    collection = step.collection

    # Most probable full correction under the weighted samples.
    weights = collection.normalized_weights()
    scores = Counter()
    for trace, weight in zip(collection.items, weights):
        scores[decode(hidden_sequence(trace))] += weight
    best, weight = scores.most_common(1)[0]
    return best, weight, collection


def main():
    rng = np.random.default_rng(7)
    print("training character HMMs on a synthetic typo corpus...")
    corpus = generate_corpus(rng, num_train_words=6000, num_test_words=8)
    p_params = train_first_order(corpus.train)
    q_params = train_second_order(corpus.train)
    print(f"  {len(corpus.train)} training words, "
          f"{corpus.train_character_count} characters\n")

    header = f"{'typed':>12}  {'corrected':>12}  {'truth':>12}  {'weight':>7}  ok"
    print(header)
    print("-" * len(header))
    correct = 0
    accuracy_values = []
    for typed, truth in corpus.test:
        best, weight, collection = correct_word(typed, p_params, q_params, rng)
        ok = best == truth
        correct += ok
        accuracy_values.append(
            ground_truth_posterior_probability(collection, encode(truth))
        )
        print(f"{typed:>12}  {best:>12}  {truth:>12}  {weight:7.3f}  {'Y' if ok else 'n'}")

    print(f"\nexact word accuracy: {correct}/{len(corpus.test)}")
    print(
        "average per-character ground-truth posterior probability: "
        f"{np.mean(accuracy_values):.3f}"
    )


if __name__ == "__main__":
    main()
