"""Legacy setup shim: the environment's setuptools lacks bdist_wheel,
so editable installs go through `setup.py develop`."""
from setuptools import setup

setup()
