"""repro — Incremental inference for probabilistic programs.

A reproduction of *Incremental Inference for Probabilistic Programs*
(Cusumano-Towner, Bichsel, Gehr, Vechev, Mansinghka — PLDI 2018).

The package provides two complete probabilistic-programming runtimes and
the paper's trace-translation framework on top of them:

* :mod:`repro.core` — a lightweight embedded PPL (traced Python
  functions with addressed random choices) with correspondence-based
  trace translation, SMC (Algorithm 2), MCMC kernels, and exact
  enumeration;
* :mod:`repro.lang` — the paper's structured probabilistic language
  (Section 3) with a parser, small-step interpreter, and exact
  enumeration;
* :mod:`repro.graph` — the dependency-tracking runtime of Section 6:
  traces as dependency graphs, program edits, syntactic correspondence,
  and asymptotically efficient incremental trace translation;
* :mod:`repro.hmm`, :mod:`repro.regression`, :mod:`repro.gmm` — the
  substrates of the paper's evaluation (Sections 7.2-7.4);
* :mod:`repro.experiments` — runnable reproductions of Figures 1 and
  8-10.

Quickstart::

    import numpy as np
    from repro import Model, Correspondence, CorrespondenceTranslator
    from repro import WeightedCollection, infer
    from repro.distributions import Flip

    def original(t):
        burglary = t.sample(Flip(0.02), "burglary")
        alarm = t.sample(Flip(0.9 if burglary else 0.01), "alarm")
        t.observe(Flip(0.8 if alarm else 0.05), 1, "mary_wakes")
        return burglary

    def refined(t):
        burglary = t.sample(Flip(0.02), "burglary")
        earthquake = t.sample(Flip(0.005), "earthquake")
        p_alarm = 0.95 if earthquake else (0.9 if burglary else 0.01)
        alarm = t.sample(Flip(p_alarm), "alarm")
        p_wakes = (0.9 if earthquake else 0.8) if alarm else 0.05
        t.observe(Flip(p_wakes), 1, "mary_wakes")
        return burglary

    p, q = Model(original), Model(refined)
    translator = CorrespondenceTranslator(
        p, q, Correspondence.identity(["burglary", "alarm"]))
    rng = np.random.default_rng(0)
    traces = WeightedCollection.uniform([p.simulate(rng) for _ in range(100)])
    step = infer(translator, traces, rng)
    print(step.collection.estimate_probability(lambda u: u["burglary"] == 1))
"""

from .core import (
    RECOVERABLE_ERRORS,
    Address,
    ChoiceMap,
    Correspondence,
    CorrespondenceTranslator,
    DegeneracyError,
    FaultPolicy,
    ImpossibleConstraintError,
    InferenceConfig,
    LogProbCache,
    Kernel,
    MissingChoiceError,
    Model,
    ModelExecutionError,
    NumericalError,
    ReproError,
    SMCStats,
    SMCStep,
    SupportError,
    TranslationError,
    Trace,
    TraceTranslator,
    TranslationResult,
    WeightedCollection,
    addr,
    effective_sample_size,
    enumerate_traces,
    exact_choice_marginal,
    exact_expectation,
    exact_posterior_sampler,
    exact_return_distribution,
    infer,
    infer_sequence,
    log_normalizer,
    probabilistic,
)

__version__ = "0.1.0"

__all__ = [
    "RECOVERABLE_ERRORS",
    "Address",
    "ChoiceMap",
    "Correspondence",
    "CorrespondenceTranslator",
    "DegeneracyError",
    "FaultPolicy",
    "ImpossibleConstraintError",
    "InferenceConfig",
    "LogProbCache",
    "Kernel",
    "MissingChoiceError",
    "Model",
    "ModelExecutionError",
    "NumericalError",
    "ReproError",
    "SMCStats",
    "SMCStep",
    "SupportError",
    "TranslationError",
    "Trace",
    "TraceTranslator",
    "TranslationResult",
    "WeightedCollection",
    "addr",
    "effective_sample_size",
    "enumerate_traces",
    "exact_choice_marginal",
    "exact_expectation",
    "exact_posterior_sampler",
    "exact_return_distribution",
    "infer",
    "infer_sequence",
    "log_normalizer",
    "probabilistic",
    "__version__",
]
