"""Static validation for correspondences, edits, configs, and programs.

The analysis framework catches the failure modes that used to surface
only at run time, deep inside a particle loop:

* a correspondence that is not an injective, support-compatible map
  between the address spaces of the two programs (Section 5.1) —
  :func:`validate_correspondence` / :func:`validate_label_map`;
* a program edit whose incremental propagation visits statements the
  edit cannot reach, or skips statements it must revisit (Section 6) —
  :func:`check_edit`;
* an :class:`~repro.core.config.InferenceConfig` whose field
  *combination* fails mid-run even though each field validates alone
  (process executor with an unpicklable translator, checkpoint cadence
  without a directory, ...) — :func:`lint_config`;
* structured-language programs, via an extended version of
  :func:`repro.lang.check.check_program` with unused-variable,
  constant-observation, and parameter-range-propagation rules —
  :func:`extended_check_program`.

Everything reports through the shared :class:`Diagnostic` type (the same
type :mod:`repro.lang.check` now re-exports), aggregates into an
:class:`AnalysisResult`, and surfaces in three places: the ``repro lint``
CLI, the opt-in ``InferenceConfig(validate=...)`` pre-flight of
:func:`repro.core.smc.infer`, and the CI lint job over every bundled
program and correspondence (:func:`bundled_targets`).

The diagnostic core is imported eagerly (it is standard-library only);
the concrete passes load lazily on first attribute access, both to keep
``import repro`` light and to break the import cycle with
:mod:`repro.lang`, whose ``check`` module imports the diagnostic types
from here.
"""

from __future__ import annotations

from .diagnostics import (
    SEVERITIES,
    AnalysisResult,
    Diagnostic,
    Pass,
    max_severity,
    severity_rank,
)

__all__ = [
    "SEVERITIES",
    "AnalysisResult",
    "Diagnostic",
    "Pass",
    "max_severity",
    "severity_rank",
    # Lazily loaded passes (PEP 562):
    "profile_model",
    "validate_correspondence",
    "validate_label_map",
    "validate_translator",
    "statement_effects",
    "invalidation_sets",
    "check_edit",
    "lint_config",
    "lint_service_config",
    "extended_check_program",
    "bundled_targets",
    "lint_bundled",
    "preflight_inference",
    "apply_validation_mode",
    "static_profile_model",
    "columnar_plan_lint",
    "bundled_static_profiles",
]

#: Lazy attribute -> defining submodule (see module ``__getattr__``).
_LAZY = {
    "profile_model": "correspondence",
    "validate_correspondence": "correspondence",
    "validate_label_map": "correspondence",
    "validate_translator": "correspondence",
    "statement_effects": "edits",
    "invalidation_sets": "edits",
    "check_edit": "edits",
    "lint_config": "config_lint",
    "lint_service_config": "config_lint",
    "extended_check_program": "programs",
    "bundled_targets": "targets",
    "lint_bundled": "targets",
    "preflight_inference": "preflight",
    "apply_validation_mode": "preflight",
    "static_profile_model": "static_profile",
    "columnar_plan_lint": "static_profile",
    "bundled_static_profiles": "static_profile",
}


def __getattr__(name: str):
    submodule = _LAZY.get(name)
    if submodule is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    module = import_module(f".{submodule}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
