"""Static model profiler: abstract interpretation of embedded models.

The pass answers — without executing the model or consuming RNG —

* which addresses a model samples at, with per-address distribution
  class and abstract support (:func:`analyze_model` →
  :class:`StaticProfile`);
* how those addresses group into loop-indexed families and depend on
  one another (statement-level dependency graph);
* whether any control flow depends on a sampled value, and therefore
  whether the columnar runtime can execute the model at all
  (:func:`plan_columnar_step` → :class:`ColumnarPlan`).

Sound by refusal: whatever the interpreter cannot close marks the
profile ``complete=False`` and every consumer falls back to the runtime
behavior (sampling profiles, per-step columnar probing).
"""

from .interp import AnalysisFailure, analyze_model
from .plan import SPILL_CODES, ColumnarPlan, PlanFinding, plan_columnar_step
from .profile import AddressInfo, ControlSite, StaticProfile

__all__ = [
    "AnalysisFailure",
    "analyze_model",
    "AddressInfo",
    "ControlSite",
    "StaticProfile",
    "ColumnarPlan",
    "PlanFinding",
    "plan_columnar_step",
    "SPILL_CODES",
]
