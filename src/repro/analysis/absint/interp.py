"""Abstract interpretation of embedded-PPL model functions.

:func:`analyze_model` walks the *source* of a model's generative
function (``inspect.getsource`` + the ``ast`` module) with the model's
``args`` constant-propagated, unrolling constant-bounded loops and
joining over data-dependent branches, and emits a
:class:`~repro.analysis.absint.profile.StaticProfile` of the model's
address space — without executing the model or touching an RNG.

Soundness contract
------------------

The analyzer is *fail-closed*: anything it cannot prove it refuses to
guess.  Every unsupported construct — a value-dependent loop bound, an
address that is not a compile-time constant, a ``sample`` whose
distribution support cannot be determined, a call that could mutate an
abstractly-tracked container — raises :class:`AnalysisFailure`, and the
resulting profile comes back ``complete=False`` with the reason, which
makes every consumer (``profile_model``, the columnar plan, lint) fall
back to the runtime behavior it had before this pass existed.

Two deliberate asymmetries with the sampling profiler:

* Pure helper calls whose arguments are all compile-time constants
  (``addr_y(i)``, ``range``, ``math.*``) are executed concretely.  The
  sampling profiler executes the entire model — including those same
  calls — so this introduces no new class of effects.
* Branches on sampled values are *joined*: both arms are analyzed and
  the profile over-approximates the address space (a sampled profile
  under-approximates it).  Each such branch is also recorded as a
  ``value-dependent-control-flow`` site, the verdict the columnar
  pre-flight keys off.
"""

from __future__ import annotations

import ast
import builtins
import inspect
import itertools
import textwrap
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from ...core.address import normalize_address
from ...core.model import Model
from ...distributions import base as dist_base
from ...distributions.base import (
    BinarySupport,
    Distribution,
    FiniteSupport,
    IntegerRange,
    PositiveReals,
    RealInterval,
    RealLine,
    Support,
)
from .profile import StaticProfile
from .values import (
    MAX_ONE_OF,
    AbstractValue,
    Const,
    OneOf,
    Sampled,
    Unknown,
    UNKNOWN,
    const_value,
    deps_of,
    is_numeric_scalar,
    is_tainted,
    join,
    make_one_of,
    possible_values,
)

__all__ = ["AnalysisFailure", "analyze_model"]

#: Total statements (including unrolled loop iterations) before the
#: analyzer declares the program too large to close statically.
STATEMENT_BUDGET = 50_000

_EMPTY: FrozenSet[Any] = frozenset()


class AnalysisFailure(Exception):
    """The analyzer hit a construct it cannot close soundly."""


# ---------------------------------------------------------------------------
# Non-lattice runtime objects the interpreter threads through evaluation.
# ---------------------------------------------------------------------------


class _Handler:
    """Marker bound to the model function's trace-handler parameter."""

    __slots__ = ()


class _HandlerMethod:
    """``t.sample`` / ``t.observe`` looked up but not yet called."""

    __slots__ = ("kind",)

    def __init__(self, kind: str):
        self.kind = kind


class AbstractList:
    """A Python list the analyzed program builds out of abstract values."""

    __slots__ = ("items",)

    def __init__(self, items: Optional[List[Any]] = None):
        self.items = list(items or [])


class AbstractTuple:
    """An immutable tuple of abstract values."""

    __slots__ = ("items",)

    def __init__(self, items: Tuple[Any, ...]):
        self.items = tuple(items)


class _ListMethod:
    """A bound mutating method (``append``/``extend``) on an AbstractList."""

    __slots__ = ("target", "name")

    def __init__(self, target: AbstractList, name: str):
        self.target = target
        self.name = name


class _AbstractDist:
    """A distribution whose parameters are not all constants.

    ``supports`` is the statically derived tuple of possible supports
    (empty means the analyzer could not determine them — a fatal
    condition at a ``sample`` site).  ``scalar_params`` is True when
    every varying parameter is a numeric scalar — the condition under
    which the columnar runtime can merge per-particle instances into one
    array-parameterized template."""

    __slots__ = ("dist_class", "supports", "deps", "tainted", "scalar_params")

    def __init__(
        self,
        dist_class: type,
        supports: Tuple[Support, ...],
        deps: FrozenSet[Any],
        tainted: bool,
        scalar_params: bool = True,
    ):
        self.dist_class = dist_class
        self.supports = supports
        self.deps = deps
        self.tainted = tainted
        self.scalar_params = scalar_params


class _Return(Exception):
    def __init__(self, value: Any):
        self.value = value


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _concretize(value: Any) -> Tuple[bool, Any]:
    """(True, concrete) when an abstract value is fully constant."""
    if isinstance(value, Const):
        return True, value.value
    if isinstance(value, AbstractList):
        out = []
        for item in value.items:
            ok, concrete = _concretize(item)
            if not ok:
                return False, None
            out.append(concrete)
        return True, out
    if isinstance(value, AbstractTuple):
        out = []
        for item in value.items:
            ok, concrete = _concretize(item)
            if not ok:
                return False, None
            out.append(concrete)
        return True, tuple(out)
    return False, None


def _possible(value: Any) -> Optional[Tuple[Any, ...]]:
    """Finite possible concrete values of scalars *and* tuples."""
    if isinstance(value, AbstractTuple):
        member_sets = []
        total = 1
        for item in value.items:
            members = _possible(item)
            if members is None:
                return None
            total *= max(len(members), 1)
            if total > MAX_ONE_OF:
                return None
            member_sets.append(members)
        return tuple(itertools.product(*member_sets))
    if isinstance(value, AbstractValue):
        return possible_values(value)
    return None


def _verified_batch_class(dist_class: type) -> bool:
    """Whether the distribution class's batched contract is one this
    package ships and tests (``log_prob_batch``/``sample_batch`` shapes,
    template rebuild, value dtypes).  Third-party subclasses work on the
    columnar path through the base-class shims, but nothing *verifies*
    their overrides — the plan keeps the batch-layer spill codes
    possible for them."""
    module = getattr(dist_class, "__module__", "") or ""
    return module == "repro.distributions" or module.startswith("repro.distributions.")


def _mergeable_param(value: Any) -> bool:
    """Whether one distribution parameter lets per-particle instances
    merge into a single template (``repro.core.columnar._merge_dists``):
    a shared constant, or a varying *numeric scalar*.  Varying arrays
    (HMM transition rows selected by a sampled state) and opaque values
    do not merge."""
    concrete, _ = _concretize(value)
    if concrete:
        return True  # shared by every particle
    if isinstance(value, AbstractValue):
        return is_numeric_scalar(value)
    return False


def _batchable_return(value: Any) -> bool:
    """Whether a model returning this can be stacked into a column.

    Mirrors ``repro.core.columnar._batch_values``: per-particle scalars
    stack into an array, tuples stack memberwise, and anything shared by
    every particle collapses to the shared value.  A *varying* list (or
    any other container) cannot be stacked and spills ``return-value``.
    """
    concrete, plain = _concretize(value)
    if concrete:
        # Every particle returns an equal value; ``_batch_values``
        # collapses it — unless equality itself is ambiguous (ndarray).
        import numpy as np

        return not isinstance(plain, np.ndarray)
    if isinstance(value, AbstractTuple):
        return all(_batchable_return(item) for item in value.items)
    if isinstance(value, (Const, OneOf, Sampled)):
        # Scalar-valued per-particle results; the distributions this
        # analyzer closes all produce numeric scalars.
        return True
    return False


def _value_deps(value: Any) -> FrozenSet[Any]:
    if isinstance(value, AbstractValue):
        return deps_of(value)
    if isinstance(value, (AbstractList, AbstractTuple)):
        deps: FrozenSet[Any] = _EMPTY
        for item in value.items:
            deps = deps | _value_deps(item)
        return deps
    if isinstance(value, _AbstractDist):
        return value.deps
    return _EMPTY


def _value_tainted(value: Any) -> bool:
    if isinstance(value, AbstractValue):
        return is_tainted(value)
    if isinstance(value, (AbstractList, AbstractTuple)):
        return any(_value_tainted(item) for item in value.items)
    if isinstance(value, _AbstractDist):
        return value.tainted
    return False


def _contains_handler(value: Any) -> bool:
    if isinstance(value, (_Handler, _HandlerMethod)):
        return True
    if isinstance(value, (AbstractList, AbstractTuple)):
        return any(_contains_handler(item) for item in value.items)
    if isinstance(value, Const):
        return isinstance(value.value, _Handler)
    return False


def _param_lengths(values: Tuple[Any, ...]) -> Optional[int]:
    """The common ``len`` of the possible parameter vectors, or None."""
    lengths = set()
    for member in values:
        try:
            lengths.add(len(member))
        except Exception:
            return None
    if len(lengths) == 1:
        return lengths.pop()
    return None


def _abstract_support(
    dist_class: type, args: List[Any], kwargs: Dict[str, Any]
) -> Tuple[Support, ...]:
    """Statically known supports of ``dist_class(*args)`` with abstract
    parameters.  Empty tuple means unknown.

    The registry mirrors each distribution's ``support()`` method:
    classes whose support ignores the parameters get it outright;
    parameter-shaped supports (Uniform bounds, Categorical length) are
    derived only when the relevant parameter is statically determined.
    """
    name = dist_class.__name__
    if name in ("Normal", "TwoNormals"):
        return (RealLine(),)
    if name in ("LogNormal", "Gamma", "Exponential"):
        return (PositiveReals(),)
    if name == "Beta":
        return (RealInterval(0.0, 1.0),)
    if name in ("Flip", "Bernoulli"):
        return (BinarySupport(),)
    if name in ("Geometric", "Poisson"):
        return (IntegerRange(0, 2**63 - 1),)
    if kwargs:
        # Keyword-parameterized calls to the shape-dependent classes
        # below are rare enough to leave to the sampling fallback.
        return ()
    if name == "Uniform" and len(args) == 2:
        ok_low, low = _concretize(args[0])
        ok_high, high = _concretize(args[1])
        if ok_low and ok_high:
            return (RealInterval(float(low), float(high)),)
        return ()
    if name == "UniformDiscrete" and len(args) == 2:
        ok_low, low = _concretize(args[0])
        ok_high, high = _concretize(args[1])
        if ok_low and ok_high:
            return (IntegerRange(int(low), int(high)),)
        return ()
    if name in ("Categorical", "LogCategorical") and len(args) == 1:
        members = _possible(args[0])
        if members is None:
            return ()
        length = _param_lengths(members)
        if length is None or length < 1:
            return ()
        return (IntegerRange(0, length - 1),)
    if name == "Delta" and len(args) == 1:
        members = _possible(args[0])
        if members is None:
            return ()
        supports: List[Support] = []
        for member in members:
            support = FiniteSupport((member,))
            if support not in supports:
                supports.append(support)
        return tuple(supports)
    return ()


_ALLOWED_MUTATING_LIST_METHODS = ("append", "extend")


# ---------------------------------------------------------------------------
# The interpreter
# ---------------------------------------------------------------------------


class _PyInterpreter:
    """One abstract execution of ``model.fn(t, *model.args)``."""

    def __init__(self, model: Model, profile: StaticProfile):
        self.model = model
        self.profile = profile
        self.fn = model.fn
        self.steps = 0
        #: Stack of (tainted, deps) entries, one per enclosing
        #: non-constant branch; used for ``always`` and control deps.
        self.ctrl: List[Tuple[bool, FrozenSet[Any]]] = []
        #: Depth of non-constant branches: list mutation and early
        #: returns are refused inside them (the join could not represent
        #: either soundly).
        self.branch_depth = 0
        self.globals = getattr(self.fn, "__globals__", {})
        self.closure: Dict[str, Any] = {}
        code = getattr(self.fn, "__code__", None)
        cells = getattr(self.fn, "__closure__", None) or ()
        if code is not None and code.co_freevars:
            for name, cell in zip(code.co_freevars, cells):
                try:
                    self.closure[name] = cell.cell_contents
                except ValueError as error:  # pragma: no cover - empty cell
                    raise AnalysisFailure(f"unresolvable closure cell {name!r}") from error

    # -- entry ----------------------------------------------------------------

    def run(self) -> None:
        try:
            source = textwrap.dedent(inspect.getsource(self.fn))
            tree = ast.parse(source)
        except (TypeError, OSError, IndentationError, SyntaxError) as error:
            raise AnalysisFailure(f"model source unavailable ({error})") from error
        fndef = next(
            (
                node
                for node in tree.body
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            ),
            None,
        )
        if not isinstance(fndef, ast.FunctionDef):
            raise AnalysisFailure("model function definition not found in source")
        env = self._bind_parameters(fndef)
        returned: Any = Const(None)
        try:
            self._exec_block(fndef.body, env)
        except _Return as signal:
            returned = signal.value
        except (_Break, _Continue):  # pragma: no cover - malformed program
            raise AnalysisFailure("break/continue outside a loop")
        self.profile.return_batchable = _batchable_return(returned)

    def _bind_parameters(self, fndef: ast.FunctionDef) -> Dict[str, Any]:
        arguments = fndef.args
        if arguments.vararg or arguments.kwarg:
            raise AnalysisFailure("*args/**kwargs model signatures are unsupported")
        params = [a.arg for a in arguments.posonlyargs] + [a.arg for a in arguments.args]
        if not params:
            raise AnalysisFailure("model function takes no trace-handler parameter")
        env: Dict[str, Any] = {params[0]: _Handler()}
        model_args = self.model.args
        positional = params[1:]
        if len(model_args) > len(positional):
            raise AnalysisFailure(
                f"model called with {len(model_args)} args but the function "
                f"declares {len(positional)}"
            )
        defaults = getattr(self.fn, "__defaults__", None) or ()
        for index, name in enumerate(positional):
            if index < len(model_args):
                env[name] = Const(model_args[index])
            else:
                default_index = index - (len(positional) - len(defaults))
                if default_index < 0:
                    raise AnalysisFailure(f"missing model argument {name!r}")
                env[name] = Const(defaults[default_index])
        kw_defaults = getattr(self.fn, "__kwdefaults__", None) or {}
        for arg in arguments.kwonlyargs:
            if arg.arg not in kw_defaults:
                raise AnalysisFailure(f"missing keyword-only model argument {arg.arg!r}")
            env[arg.arg] = Const(kw_defaults[arg.arg])
        return env

    # -- bookkeeping ----------------------------------------------------------

    def _tick(self, node: ast.AST) -> None:
        self.steps += 1
        if self.steps > STATEMENT_BUDGET:
            raise AnalysisFailure(
                f"statement budget exceeded ({STATEMENT_BUDGET}) at line "
                f"{getattr(node, 'lineno', '?')}"
            )

    def _control_always(self) -> bool:
        return not self.ctrl

    def _control_deps(self) -> FrozenSet[Any]:
        deps: FrozenSet[Any] = _EMPTY
        for tainted, entry_deps in self.ctrl:
            if tainted:
                deps = deps | entry_deps
        return deps

    # -- statements -----------------------------------------------------------

    def _exec_block(self, stmts: List[ast.stmt], env: Dict[str, Any]) -> None:
        for stmt in stmts:
            self._exec(stmt, env)

    def _exec(self, stmt: ast.stmt, env: Dict[str, Any]) -> None:
        self._tick(stmt)
        if isinstance(stmt, ast.Expr):
            self._eval(stmt.value, env)
        elif isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value, env)
            for target in stmt.targets:
                self._assign(target, value, env)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign(stmt.target, self._eval(stmt.value, env), env)
        elif isinstance(stmt, ast.AugAssign):
            current = self._eval(
                ast.copy_location(
                    ast.Name(id=stmt.target.id, ctx=ast.Load()), stmt
                )
                if isinstance(stmt.target, ast.Name)
                else stmt.target,
                env,
            )
            value = self._eval(stmt.value, env)
            combined = self._binop(stmt.op, current, value, stmt)
            self._assign(stmt.target, combined, env)
        elif isinstance(stmt, ast.If):
            self._exec_if(stmt, env)
        elif isinstance(stmt, ast.For):
            self._exec_for(stmt, env)
        elif isinstance(stmt, ast.While):
            self._exec_while(stmt, env)
        elif isinstance(stmt, ast.Return):
            if self.branch_depth:
                raise AnalysisFailure(
                    f"early return under a data-dependent branch at line {stmt.lineno}"
                )
            value = self._eval(stmt.value, env) if stmt.value is not None else Const(None)
            raise _Return(value)
        elif isinstance(stmt, ast.Pass):
            pass
        elif isinstance(stmt, ast.Break):
            if self.branch_depth:
                raise AnalysisFailure(
                    f"break under a data-dependent branch at line {stmt.lineno}"
                )
            raise _Break()
        elif isinstance(stmt, ast.Continue):
            if self.branch_depth:
                raise AnalysisFailure(
                    f"continue under a data-dependent branch at line {stmt.lineno}"
                )
            raise _Continue()
        elif isinstance(stmt, ast.Assert):
            pass
        else:
            raise AnalysisFailure(
                f"unsupported statement {type(stmt).__name__} at line {stmt.lineno}"
            )

    def _assign(self, target: ast.expr, value: Any, env: Dict[str, Any]) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            items = self._iterable_items(value, target)
            if items is None or len(items) != len(target.elts):
                raise AnalysisFailure(
                    f"cannot unpack assignment at line {target.lineno}"
                )
            for element, item in zip(target.elts, items):
                self._assign(element, item, env)
            return
        if isinstance(target, ast.Subscript):
            base = self._eval(target.value, env)
            if isinstance(base, AbstractList):
                if self.branch_depth:
                    raise AnalysisFailure(
                        "list mutation under a data-dependent branch at line "
                        f"{target.lineno}"
                    )
                ok, index = _concretize(self._eval(target.slice, env))
                if ok and isinstance(index, int) and -len(base.items) <= index < len(base.items):
                    base.items[index] = value
                    return
            raise AnalysisFailure(
                f"unsupported subscript assignment at line {target.lineno}"
            )
        raise AnalysisFailure(
            f"unsupported assignment target {type(target).__name__} at line "
            f"{target.lineno}"
        )

    def _exec_if(self, stmt: ast.If, env: Dict[str, Any]) -> None:
        cond = self._eval(stmt.test, env)
        ok, concrete = self._truthiness(cond)
        if ok:
            self._exec_block(stmt.body if concrete else stmt.orelse, env)
            return
        tainted = _value_tainted(cond)
        deps = _value_deps(cond)
        if tainted:
            self.profile.record_control("if", stmt.lineno, deps)
        self._run_branches(stmt.body, stmt.orelse, env, tainted, deps)

    def _run_branches(
        self,
        body: List[ast.stmt],
        orelse: List[ast.stmt],
        env: Dict[str, Any],
        tainted: bool,
        deps: FrozenSet[Any],
    ) -> None:
        self.ctrl.append((tainted, deps))
        self.branch_depth += 1
        try:
            then_env = dict(env)
            else_env = dict(env)
            self._exec_block(body, then_env)
            self._exec_block(orelse, else_env)
        finally:
            self.branch_depth -= 1
            self.ctrl.pop()
        for name in set(then_env) | set(else_env):
            left = then_env.get(name)
            right = else_env.get(name)
            if left is right:
                if left is not None:
                    env[name] = left
                continue
            if left is None or right is None:
                present = left if right is None else right
                env[name] = Unknown(
                    tainted or _value_tainted(present),
                    deps | _value_deps(present),
                )
                continue
            if isinstance(left, AbstractValue) and isinstance(right, AbstractValue):
                env[name] = join(left, right, tainted=tainted, extra_deps=deps)
                continue
            # Divergent containers/handlers across a data-dependent
            # branch cannot be represented; refuse.
            raise AnalysisFailure(
                f"variable {name!r} diverges structurally across a "
                "data-dependent branch"
            )

    def _exec_for(self, stmt: ast.For, env: Dict[str, Any]) -> None:
        if stmt.orelse:
            raise AnalysisFailure(f"for/else is unsupported at line {stmt.lineno}")
        iterable = self._eval(stmt.iter, env)
        items = self._iterable_items(iterable, stmt.iter)
        if items is None:
            deps = _value_deps(iterable)
            if _value_tainted(iterable):
                self.profile.record_control("for", stmt.lineno, deps)
            raise AnalysisFailure(
                f"loop iterable at line {stmt.lineno} is not statically bounded"
            )
        for item in items:
            self._tick(stmt)
            self._assign(stmt.target, item, env)
            try:
                self._exec_block(stmt.body, env)
            except _Break:
                break
            except _Continue:
                continue

    def _exec_while(self, stmt: ast.While, env: Dict[str, Any]) -> None:
        if stmt.orelse:
            raise AnalysisFailure(f"while/else is unsupported at line {stmt.lineno}")
        while True:
            self._tick(stmt)
            cond = self._eval(stmt.test, env)
            ok, concrete = self._truthiness(cond)
            if not ok:
                deps = _value_deps(cond)
                if _value_tainted(cond):
                    self.profile.record_control("while", stmt.lineno, deps)
                raise AnalysisFailure(
                    f"while condition at line {stmt.lineno} is not statically "
                    "decidable (value-dependent loop bound)"
                )
            if not concrete:
                return
            try:
                self._exec_block(stmt.body, env)
            except _Break:
                return
            except _Continue:
                continue

    def _iterable_items(self, value: Any, node: ast.AST) -> Optional[List[Any]]:
        """Materialize an iterable as a list of abstract items, or None."""
        if isinstance(value, (AbstractList, AbstractTuple)):
            return list(value.items)
        ok, concrete = _concretize(value)
        if not ok:
            return None
        try:
            items = list(concrete)
        except TypeError:
            return None
        if len(items) > STATEMENT_BUDGET:
            raise AnalysisFailure(
                f"iterable at line {getattr(node, 'lineno', '?')} is too large "
                "to unroll"
            )
        return [Const(item) for item in items]

    def _truthiness(self, value: Any) -> Tuple[bool, bool]:
        ok, concrete = _concretize(value)
        if not ok:
            return False, False
        try:
            return True, bool(concrete)
        except Exception as error:
            raise AnalysisFailure(f"untestable branch condition ({error})") from error

    # -- expressions ----------------------------------------------------------

    def _eval(self, node: ast.expr, env: Dict[str, Any]) -> Any:
        method = getattr(self, f"_eval_{type(node).__name__}", None)
        if method is None:
            raise AnalysisFailure(
                f"unsupported expression {type(node).__name__} at line "
                f"{getattr(node, 'lineno', '?')}"
            )
        return method(node, env)

    def _eval_Constant(self, node: ast.Constant, env: Dict[str, Any]) -> Any:
        return Const(node.value)

    def _eval_Name(self, node: ast.Name, env: Dict[str, Any]) -> Any:
        if node.id in env:
            return env[node.id]
        if node.id in self.closure:
            return Const(self.closure[node.id])
        if node.id in self.globals:
            return Const(self.globals[node.id])
        if hasattr(builtins, node.id):
            return Const(getattr(builtins, node.id))
        raise AnalysisFailure(f"unresolvable name {node.id!r} at line {node.lineno}")

    def _eval_Tuple(self, node: ast.Tuple, env: Dict[str, Any]) -> Any:
        items = [self._eval(element, env) for element in node.elts]
        if all(isinstance(item, Const) for item in items):
            return Const(tuple(item.value for item in items))
        return AbstractTuple(tuple(items))

    def _eval_List(self, node: ast.List, env: Dict[str, Any]) -> Any:
        return AbstractList([self._eval(element, env) for element in node.elts])

    def _eval_Dict(self, node: ast.Dict, env: Dict[str, Any]) -> Any:
        keys = []
        values = []
        tainted = False
        deps: FrozenSet[Any] = _EMPTY
        for key_node, value_node in zip(node.keys, node.values):
            if key_node is None:
                raise AnalysisFailure(f"dict unpacking at line {node.lineno}")
            key = self._eval(key_node, env)
            value = self._eval(value_node, env)
            tainted = tainted or _value_tainted(key) or _value_tainted(value)
            deps = deps | _value_deps(key) | _value_deps(value)
            keys.append(key)
            values.append(value)
        if all(isinstance(item, Const) for item in keys + values):
            return Const(
                {key.value: value.value for key, value in zip(keys, values)}
            )
        return Unknown(tainted, deps)

    def _eval_Attribute(self, node: ast.Attribute, env: Dict[str, Any]) -> Any:
        base = self._eval(node.value, env)
        if isinstance(base, _Handler):
            if node.attr in ("sample", "observe"):
                return _HandlerMethod(node.attr)
            raise AnalysisFailure(
                f"unsupported trace-handler attribute {node.attr!r} at line "
                f"{node.lineno}"
            )
        if isinstance(base, AbstractList):
            if node.attr in _ALLOWED_MUTATING_LIST_METHODS:
                return _ListMethod(base, node.attr)
            raise AnalysisFailure(
                f"unsupported list method {node.attr!r} at line {node.lineno}"
            )
        if isinstance(base, Const):
            try:
                return Const(getattr(base.value, node.attr))
            except AttributeError as error:
                raise AnalysisFailure(
                    f"attribute error at line {node.lineno}: {error}"
                ) from error
        members = _possible(base) if isinstance(base, AbstractValue) else None
        if members is not None:
            try:
                attrs = [getattr(member, node.attr) for member in members]
            except AttributeError as error:
                raise AnalysisFailure(
                    f"attribute error at line {node.lineno}: {error}"
                ) from error
            return make_one_of(attrs, _value_tainted(base), _value_deps(base))
        return Unknown(_value_tainted(base), _value_deps(base))

    def _eval_Subscript(self, node: ast.Subscript, env: Dict[str, Any]) -> Any:
        base = self._eval(node.value, env)
        index = self._eval(node.slice, env)
        if isinstance(base, (AbstractList, AbstractTuple)):
            ok, concrete = _concretize(index)
            if ok:
                try:
                    selected = base.items[concrete]
                except Exception as error:
                    raise AnalysisFailure(
                        f"index error at line {node.lineno}: {error}"
                    ) from error
                if isinstance(concrete, slice):
                    items = list(selected)
                    return (
                        AbstractList(items)
                        if isinstance(base, AbstractList)
                        else AbstractTuple(tuple(items))
                    )
                return selected
            members = _possible(index)
            if members is not None and base.items:
                selected_values: List[Any] = []
                for member in members:
                    try:
                        selected_values.append(base.items[member])
                    except Exception:
                        continue
                if selected_values:
                    out = selected_values[0]
                    for other in selected_values[1:]:
                        if not (
                            isinstance(out, AbstractValue)
                            and isinstance(other, AbstractValue)
                        ):
                            raise AnalysisFailure(
                                f"container-valued dynamic index at line {node.lineno}"
                            )
                        out = join(out, other, tainted=True, extra_deps=_value_deps(index))
                    if isinstance(out, AbstractValue):
                        if len(selected_values) == 1:
                            out = join(
                                out, out, tainted=True, extra_deps=_value_deps(index)
                            )
                        return out
            return Unknown(True, _value_deps(base) | _value_deps(index))
        ok_base, concrete_base = _concretize(base)
        if ok_base:
            ok_index, concrete_index = _concretize(index)
            if ok_index:
                try:
                    return Const(concrete_base[concrete_index])
                except Exception as error:
                    raise AnalysisFailure(
                        f"subscript error at line {node.lineno}: {error}"
                    ) from error
            members = _possible(index)
            if members is not None:
                selected = []
                for member in members:
                    try:
                        selected.append(concrete_base[member])
                    except Exception:
                        continue
                if selected:
                    return make_one_of(
                        selected, True, _value_deps(index)
                    )
            return Unknown(
                _value_tainted(index), _value_deps(index)
            ) if not _value_tainted(index) else Unknown(True, _value_deps(index))
        return Unknown(
            _value_tainted(base) or _value_tainted(index),
            _value_deps(base) | _value_deps(index),
        )

    def _eval_Slice(self, node: ast.Slice, env: Dict[str, Any]) -> Any:
        parts = []
        for part in (node.lower, node.upper, node.step):
            if part is None:
                parts.append(None)
                continue
            ok, concrete = _concretize(self._eval(part, env))
            if not ok:
                raise AnalysisFailure(f"non-constant slice at line {node.lineno}")
            parts.append(concrete)
        return Const(slice(*parts))

    def _eval_Index(self, node: Any, env: Dict[str, Any]) -> Any:  # pragma: no cover
        return self._eval(node.value, env)  # python<3.9 compatibility

    def _eval_UnaryOp(self, node: ast.UnaryOp, env: Dict[str, Any]) -> Any:
        operand = self._eval(node.operand, env)
        return self._apply_concrete(
            node, (operand,), lambda values: self._unary(node.op, values[0])
        )

    def _eval_BinOp(self, node: ast.BinOp, env: Dict[str, Any]) -> Any:
        left = self._eval(node.left, env)
        right = self._eval(node.right, env)
        return self._binop(node.op, left, right, node)

    def _binop(self, op: ast.operator, left: Any, right: Any, node: ast.AST) -> Any:
        return self._apply_concrete(
            node, (left, right), lambda values: self._binary(op, values[0], values[1])
        )

    def _eval_BoolOp(self, node: ast.BoolOp, env: Dict[str, Any]) -> Any:
        is_and = isinstance(node.op, ast.And)
        result: Any = None
        for value_node in node.values:
            value = self._eval(value_node, env)
            ok, concrete = self._truth_or_none(value)
            if ok:
                if is_and and not concrete:
                    return value
                if not is_and and concrete:
                    return value
                result = value
                continue
            # Short-circuit undecidable: remaining operands may or may
            # not evaluate; join everything seen plus the rest.
            rest = [self._eval(v, env) for v in node.values[node.values.index(value_node) + 1 :]]
            candidates = [value] + rest + ([result] if result is not None else [])
            tainted = any(_value_tainted(c) for c in candidates)
            deps: FrozenSet[Any] = _EMPTY
            for candidate in candidates:
                deps = deps | _value_deps(candidate)
            return Unknown(tainted, deps)
        return result if result is not None else Const(True if is_and else False)

    def _truth_or_none(self, value: Any) -> Tuple[bool, bool]:
        ok, concrete = _concretize(value)
        if not ok:
            return False, False
        try:
            return True, bool(concrete)
        except Exception:
            return False, False

    def _eval_Compare(self, node: ast.Compare, env: Dict[str, Any]) -> Any:
        operands = [self._eval(node.left, env)] + [
            self._eval(comparator, env) for comparator in node.comparators
        ]

        def compute(values: Tuple[Any, ...]) -> Any:
            result = True
            left = values[0]
            for op, right in zip(node.ops, values[1:]):
                result = self._compare(op, left, right)
                if not result:
                    return False
                left = right
            return result

        return self._apply_concrete(node, tuple(operands), compute)

    def _eval_IfExp(self, node: ast.IfExp, env: Dict[str, Any]) -> Any:
        cond = self._eval(node.test, env)
        ok, concrete = self._truthiness(cond)
        if ok:
            return self._eval(node.body if concrete else node.orelse, env)
        tainted = _value_tainted(cond)
        deps = _value_deps(cond)
        if tainted:
            self.profile.record_control("ifexp", node.lineno, deps)
        self.ctrl.append((tainted, deps))
        self.branch_depth += 1
        try:
            then_value = self._eval(node.body, env)
            else_value = self._eval(node.orelse, env)
        finally:
            self.branch_depth -= 1
            self.ctrl.pop()
        if isinstance(then_value, AbstractValue) and isinstance(else_value, AbstractValue):
            return join(then_value, else_value, tainted=tainted, extra_deps=deps)
        raise AnalysisFailure(
            f"container-valued conditional expression at line {node.lineno}"
        )

    def _eval_JoinedStr(self, node: ast.JoinedStr, env: Dict[str, Any]) -> Any:
        parts: List[str] = []
        tainted = False
        deps: FrozenSet[Any] = _EMPTY
        for part in node.values:
            if isinstance(part, ast.Constant):
                parts.append(str(part.value))
                continue
            if isinstance(part, ast.FormattedValue):
                value = self._eval(part.value, env)
                ok, concrete = _concretize(value)
                if ok and part.format_spec is None and part.conversion in (-1, 115):
                    parts.append(
                        str(concrete) if part.conversion == -1 else str(concrete)
                    )
                    continue
                tainted = tainted or _value_tainted(value)
                deps = deps | _value_deps(value)
                parts = []
                break
            tainted = True
            parts = []
            break
        else:
            return Const("".join(parts))
        return Unknown(tainted, deps)

    def _eval_FormattedValue(self, node: ast.FormattedValue, env: Dict[str, Any]) -> Any:
        value = self._eval(node.value, env)
        ok, concrete = _concretize(value)
        if ok:
            return Const(str(concrete))
        return Unknown(_value_tainted(value), _value_deps(value))

    def _eval_Call(self, node: ast.Call, env: Dict[str, Any]) -> Any:
        func = self._eval(node.func, env)
        if any(isinstance(arg, ast.Starred) for arg in node.args):
            raise AnalysisFailure(f"star-args call at line {node.lineno}")
        args = [self._eval(arg, env) for arg in node.args]
        kwargs: Dict[str, Any] = {}
        for keyword in node.keywords:
            if keyword.arg is None:
                raise AnalysisFailure(f"**kwargs call at line {node.lineno}")
            kwargs[keyword.arg] = self._eval(keyword.value, env)

        if isinstance(func, _HandlerMethod):
            return self._handler_call(func, args, kwargs, node)
        if isinstance(func, _ListMethod):
            return self._list_method_call(func, args, kwargs, node)
        if not isinstance(func, Const):
            raise AnalysisFailure(
                f"call target at line {node.lineno} is not statically resolvable"
            )
        callee = func.value
        if any(_contains_handler(arg) for arg in list(args) + list(kwargs.values())):
            raise AnalysisFailure(
                f"call at line {node.lineno} forwards the trace handler; nested "
                "generative functions are not statically analyzable"
            )
        if isinstance(callee, type) and issubclass(callee, Distribution):
            return self._distribution_call(callee, args, kwargs, node)
        return self._concrete_or_opaque_call(callee, args, kwargs, node)

    def _handler_call(
        self,
        method: _HandlerMethod,
        args: List[Any],
        kwargs: Dict[str, Any],
        node: ast.Call,
    ) -> Any:
        if kwargs:
            raise AnalysisFailure(
                f"keyword arguments to t.{method.kind} at line {node.lineno}"
            )
        if method.kind == "sample":
            if len(args) != 2:
                raise AnalysisFailure(
                    f"t.sample expects (dist, address) at line {node.lineno}"
                )
            dist_value, address_value = args
            observed_value = None
        else:
            if len(args) != 3:
                raise AnalysisFailure(
                    f"t.observe expects (dist, value, address) at line {node.lineno}"
                )
            dist_value, observed_value, address_value = args
        ok, raw_address = _concretize(address_value)
        if not ok:
            raise AnalysisFailure(
                f"address at line {node.lineno} is not a compile-time constant "
                "(dynamic address)"
            )
        try:
            address = normalize_address(raw_address)
        except Exception as error:
            raise AnalysisFailure(
                f"unnormalizable address at line {node.lineno}: {error}"
            ) from error
        dist_class, supports, param_deps, scalar_params, verified = self._dist_facts(
            dist_value, node
        )
        control_deps = self._control_deps()
        always = self._control_always()
        if method.kind == "observe":
            self.profile.record(
                address,
                dist_class,
                supports,
                observed=True,
                always=always,
                param_deps=param_deps,
                control_deps=control_deps,
                scalar_params=scalar_params,
                verified_batch=verified,
            )
            return Const(None)
        if address in self.model.observations:
            self.profile.record(
                address,
                dist_class,
                supports,
                observed=True,
                always=always,
                param_deps=param_deps,
                control_deps=control_deps,
                scalar_params=scalar_params,
                verified_batch=verified,
            )
            return Const(self.model.observations[address])
        self.profile.record(
            address,
            dist_class,
            supports,
            observed=False,
            always=always,
            param_deps=param_deps,
            control_deps=control_deps,
            scalar_params=scalar_params,
            verified_batch=verified,
        )
        return Sampled(address, supports)

    def _dist_facts(
        self, dist_value: Any, node: ast.Call
    ) -> Tuple[str, Tuple[Support, ...], FrozenSet[Any], bool, bool]:
        if isinstance(dist_value, Const) and isinstance(dist_value.value, Distribution):
            dist = dist_value.value
            try:
                supports: Tuple[Support, ...] = (dist.support(),)
            except Exception as error:
                raise AnalysisFailure(
                    f"support of {dist!r} unavailable at line {node.lineno}: {error}"
                ) from error
            return (
                type(dist).__name__,
                supports,
                _EMPTY,
                True,
                _verified_batch_class(type(dist)),
            )
        if isinstance(dist_value, _AbstractDist):
            if not dist_value.supports:
                raise AnalysisFailure(
                    f"support of {dist_value.dist_class.__name__} at line "
                    f"{node.lineno} is not statically determined"
                )
            return (
                dist_value.dist_class.__name__,
                dist_value.supports,
                dist_value.deps,
                dist_value.scalar_params,
                _verified_batch_class(dist_value.dist_class),
            )
        raise AnalysisFailure(
            f"sampled object at line {node.lineno} is not a statically known "
            "distribution"
        )

    def _list_method_call(
        self,
        method: _ListMethod,
        args: List[Any],
        kwargs: Dict[str, Any],
        node: ast.Call,
    ) -> Any:
        if kwargs:
            raise AnalysisFailure(f"keyword arguments to list.{method.name}")
        if self.branch_depth:
            raise AnalysisFailure(
                f"list mutation under a data-dependent branch at line {node.lineno}"
            )
        if method.name == "append":
            if len(args) != 1:
                raise AnalysisFailure(f"list.append arity at line {node.lineno}")
            method.target.items.append(args[0])
            return Const(None)
        if len(args) != 1:
            raise AnalysisFailure(f"list.extend arity at line {node.lineno}")
        items = self._iterable_items(args[0], node)
        if items is None:
            raise AnalysisFailure(
                f"list.extend with unbounded iterable at line {node.lineno}"
            )
        method.target.items.extend(items)
        return Const(None)

    def _distribution_call(
        self,
        dist_class: type,
        args: List[Any],
        kwargs: Dict[str, Any],
        node: ast.Call,
    ) -> Any:
        concrete_args = []
        all_const = True
        for value in args:
            ok, concrete = _concretize(value)
            if not ok:
                all_const = False
                break
            concrete_args.append(concrete)
        concrete_kwargs = {}
        if all_const:
            for name, value in kwargs.items():
                ok, concrete = _concretize(value)
                if not ok:
                    all_const = False
                    break
                concrete_kwargs[name] = concrete
        if all_const:
            try:
                return Const(dist_class(*concrete_args, **concrete_kwargs))
            except Exception as error:
                raise AnalysisFailure(
                    f"distribution construction failed at line {node.lineno}: {error}"
                ) from error
        deps: FrozenSet[Any] = _EMPTY
        tainted = False
        for value in list(args) + list(kwargs.values()):
            deps = deps | _value_deps(value)
            tainted = tainted or _value_tainted(value)
        supports = _abstract_support(dist_class, args, kwargs)
        scalar_params = all(
            _mergeable_param(value) for value in list(args) + list(kwargs.values())
        )
        return _AbstractDist(dist_class, supports, deps, tainted, scalar_params)

    def _concrete_or_opaque_call(
        self, callee: Any, args: List[Any], kwargs: Dict[str, Any], node: ast.Call
    ) -> Any:
        concrete_args = []
        all_const = True
        for value in args:
            ok, concrete = _concretize(value)
            if not ok:
                all_const = False
                break
            concrete_args.append(concrete)
        concrete_kwargs = {}
        if all_const:
            for name, value in kwargs.items():
                ok, concrete = _concretize(value)
                if not ok:
                    all_const = False
                    break
                concrete_kwargs[name] = concrete
        if all_const:
            try:
                result = callee(*concrete_args, **concrete_kwargs)
            except Exception as error:
                raise AnalysisFailure(
                    f"call to {getattr(callee, '__name__', callee)!r} failed at "
                    f"line {node.lineno}: {error}"
                ) from error
            return Const(result)
        # Special-case the iteration builtins over abstract containers so
        # constant-bounded loops over partially-abstract data still unroll.
        if callee is enumerate and len(args) in (1, 2) and not kwargs:
            items = self._iterable_items(args[0], node)
            if items is not None:
                start = 0
                if len(args) == 2:
                    ok, start = _concretize(args[1])
                    if not ok:
                        raise AnalysisFailure(
                            f"non-constant enumerate start at line {node.lineno}"
                        )
                return AbstractList(
                    [
                        AbstractTuple((Const(start + offset), item))
                        for offset, item in enumerate(items)
                    ]
                )
        if callee is len and len(args) == 1 and not kwargs:
            if isinstance(args[0], (AbstractList, AbstractTuple)):
                return Const(len(args[0].items))
        if callee in (list, tuple) and len(args) == 1 and not kwargs:
            items = self._iterable_items(args[0], node)
            if items is not None:
                return (
                    AbstractList(items)
                    if callee is list
                    else AbstractTuple(tuple(items))
                )
        for value in list(args) + list(kwargs.values()):
            if isinstance(value, AbstractList):
                raise AnalysisFailure(
                    f"opaque call at line {node.lineno} receives a mutable "
                    "abstract list; its mutations cannot be tracked"
                )
        deps: FrozenSet[Any] = _EMPTY
        tainted = False
        for value in list(args) + list(kwargs.values()):
            deps = deps | _value_deps(value)
            tainted = tainted or _value_tainted(value)
        if tainted:
            self.profile.opaque_tainted_lines.append(node.lineno)
        if isinstance(callee, type):
            # Constructing an object from tainted parts: opaque value.
            return Unknown(tainted, deps)
        if getattr(callee, "__self__", None) is not None and isinstance(
            callee.__self__, (list, dict, set)
        ):
            raise AnalysisFailure(
                f"opaque mutating method call at line {node.lineno}"
            )
        return Unknown(tainted, deps)

    # -- concrete/finite operator evaluation ----------------------------------

    def _apply_concrete(self, node: ast.AST, operands: Tuple[Any, ...], compute) -> Any:
        concrete = []
        all_const = True
        for operand in operands:
            ok, value = _concretize(operand)
            if not ok:
                all_const = False
                break
            concrete.append(value)
        if all_const:
            try:
                return Const(compute(tuple(concrete)))
            except Exception as error:
                raise AnalysisFailure(
                    f"evaluation failed at line {getattr(node, 'lineno', '?')}: "
                    f"{error}"
                ) from error
        member_sets = []
        total = 1
        for operand in operands:
            members = _possible(operand) if isinstance(operand, AbstractValue) else None
            if members is None:
                member_sets = None
                break
            total *= max(len(members), 1)
            if total > MAX_ONE_OF:
                member_sets = None
                break
            member_sets.append(members)
        tainted = any(_value_tainted(operand) for operand in operands)
        deps: FrozenSet[Any] = _EMPTY
        for operand in operands:
            deps = deps | _value_deps(operand)
        if member_sets is not None:
            results = []
            for combo in itertools.product(*member_sets):
                try:
                    results.append(compute(combo))
                except Exception:
                    continue
            if results:
                return make_one_of(results, tainted, deps)
        numeric = all(
            isinstance(operand, AbstractValue) and is_numeric_scalar(operand)
            for operand in operands
        )
        return Unknown(tainted, deps, numeric)

    _BIN_OPS = {
        ast.Add: lambda a, b: a + b,
        ast.Sub: lambda a, b: a - b,
        ast.Mult: lambda a, b: a * b,
        ast.Div: lambda a, b: a / b,
        ast.FloorDiv: lambda a, b: a // b,
        ast.Mod: lambda a, b: a % b,
        ast.Pow: lambda a, b: a**b,
        ast.MatMult: lambda a, b: a @ b,
        ast.LShift: lambda a, b: a << b,
        ast.RShift: lambda a, b: a >> b,
        ast.BitOr: lambda a, b: a | b,
        ast.BitXor: lambda a, b: a ^ b,
        ast.BitAnd: lambda a, b: a & b,
    }

    _UNARY_OPS = {
        ast.USub: lambda a: -a,
        ast.UAdd: lambda a: +a,
        ast.Not: lambda a: not a,
        ast.Invert: lambda a: ~a,
    }

    _CMP_OPS = {
        ast.Eq: lambda a, b: a == b,
        ast.NotEq: lambda a, b: a != b,
        ast.Lt: lambda a, b: a < b,
        ast.LtE: lambda a, b: a <= b,
        ast.Gt: lambda a, b: a > b,
        ast.GtE: lambda a, b: a >= b,
        ast.Is: lambda a, b: a is b,
        ast.IsNot: lambda a, b: a is not b,
        ast.In: lambda a, b: a in b,
        ast.NotIn: lambda a, b: a not in b,
    }

    def _binary(self, op: ast.operator, left: Any, right: Any) -> Any:
        handler = self._BIN_OPS.get(type(op))
        if handler is None:
            raise AnalysisFailure(f"unsupported operator {type(op).__name__}")
        return handler(left, right)

    def _unary(self, op: ast.unaryop, operand: Any) -> Any:
        handler = self._UNARY_OPS.get(type(op))
        if handler is None:
            raise AnalysisFailure(f"unsupported unary operator {type(op).__name__}")
        return handler(operand)

    def _compare(self, op: ast.cmpop, left: Any, right: Any) -> Any:
        handler = self._CMP_OPS.get(type(op))
        if handler is None:
            raise AnalysisFailure(f"unsupported comparison {type(op).__name__}")
        return handler(left, right)


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def analyze_model(model: Model) -> StaticProfile:
    """Statically profile ``model`` — no execution, no RNG.

    Dispatches on the generative function's shape: structured-language
    models (:class:`repro.lang.interp._LangModelFn`) get the lang-AST
    interpreter (:mod:`repro.analysis.absint.lang`); everything else is
    treated as a Python function and analyzed from source.  Always
    returns a profile; when the analyzer cannot close the program the
    profile is ``complete=False`` with ``failure`` naming the reason and
    callers fall back to runtime profiling.
    """
    profile = StaticProfile(name=getattr(model, "name", "model"))
    fn = getattr(model, "fn", None)
    if fn is None:
        profile.fail("model has no generative function")
        return profile
    if hasattr(fn, "program") and hasattr(fn, "initial"):
        from .lang import analyze_lang_model

        return analyze_lang_model(model, profile)
    try:
        _PyInterpreter(model, profile).run()
        if not profile.failure:
            profile.complete = True
    except AnalysisFailure as error:
        profile.fail(str(error))
    except RecursionError:  # pragma: no cover - pathological nesting
        profile.fail("recursion limit exceeded during analysis")
    return profile
