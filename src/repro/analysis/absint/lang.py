"""Abstract interpretation of structured-language (lang) models.

The embedded runtime executes lang programs through
:class:`repro.lang.interp._Interpreter`; this module walks the same AST
*abstractly*, mirroring the interpreter's semantics — including the
``(label, *loop_indices)`` addressing scheme of Section 5.4 — over the
value lattice of :mod:`repro.analysis.absint.values`.

Lang is friendlier to static analysis than Python: arrays are values
(copy-on-write on ``x[i] = e``), so branch joins never have to reason
about aliased mutation, and loop indices are part of the address, so a
closable loop yields a closable address family.  What remains
un-closable is exactly what the paper flags: ``while`` loops whose
condition is (or depends on) a random choice — the geometric program of
Figure 6 — which fail the analysis and fall back to runtime profiling.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from ...core.model import Model
from ...distributions import Flip, Normal, UniformDiscrete
from ...distributions.base import BinarySupport, RealLine, Support
from ...lang import ast as last
from ...lang.interp import MAX_CALL_DEPTH, choice_address
from .interp import STATEMENT_BUDGET, AnalysisFailure
from .profile import StaticProfile
from .values import (
    MAX_ONE_OF,
    AbstractValue,
    Const,
    Sampled,
    Unknown,
    const_value,
    deps_of,
    is_tainted,
    join,
    make_one_of,
    possible_values,
)

__all__ = ["analyze_lang_model"]

_EMPTY: FrozenSet[Any] = frozenset()


class _Array:
    """A lang array: an immutable vector of abstract values."""

    __slots__ = ("items",)

    def __init__(self, items: Tuple[AbstractValue, ...]):
        self.items = tuple(items)


class _LangReturn(Exception):
    def __init__(self, value: Any):
        self.value = value


def _tainted(value: Any) -> bool:
    if isinstance(value, _Array):
        return any(is_tainted(item) for item in value.items)
    return is_tainted(value)


def _deps(value: Any) -> FrozenSet[Any]:
    if isinstance(value, _Array):
        deps: FrozenSet[Any] = _EMPTY
        for item in value.items:
            deps = deps | deps_of(item)
        return deps
    return deps_of(value)


def _as_array(value: Any) -> Optional[_Array]:
    if isinstance(value, _Array):
        return value
    ok, concrete = const_value(value) if isinstance(value, AbstractValue) else (False, None)
    if ok and isinstance(concrete, (list, tuple)):
        return _Array(tuple(Const(item) for item in concrete))
    return None


#: Lang truthiness: a value is true iff it differs from 0.
def _lang_truthy(value: Any) -> bool:
    return value != 0


_BIN_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "==": lambda a, b: 1 if a == b else 0,
    "!=": lambda a, b: 1 if a != b else 0,
    "<": lambda a, b: 1 if a < b else 0,
    "<=": lambda a, b: 1 if a <= b else 0,
    ">": lambda a, b: 1 if a > b else 0,
    ">=": lambda a, b: 1 if a >= b else 0,
}


def _div(a: Any, b: Any) -> Any:
    if b == 0:
        raise ZeroDivisionError("division by zero")
    return a / b


class _LangAbstractInterpreter:
    """Mirrors :class:`repro.lang.interp._Interpreter` over the lattice."""

    def __init__(self, model: Model, profile: StaticProfile):
        fn = model.fn
        self.model = model
        self.profile = profile
        program = fn.program
        if isinstance(program, str):
            from ...lang.parser import parse_program

            program = parse_program(program)
        self.program: last.Stmt = program
        self.env: Dict[str, Any] = {
            name: Const(value) for name, value in fn.initial.items()
        }
        #: Concrete loop indices / call-site labels (Section 5.4).  Every
        #: entry is concrete by construction: a loop whose bounds cannot
        #: be resolved fails the analysis before indexing anything.
        self.loop_indices: List[Any] = []
        self.functions: Dict[str, last.FuncDef] = {}
        self.call_depth = 0
        self.steps = 0
        self.ctrl: List[Tuple[bool, FrozenSet[Any]]] = []
        self.branch_depth = 0

    def run(self) -> None:
        returned: Any = Const(None)
        try:
            self.exec(self.program, self.env)
        except _LangReturn as signal:
            returned = signal.value
        # Lang programs return scalars or (copy-on-write) arrays; only a
        # per-particle array resists ``_batch_values`` stacking.
        self.profile.return_batchable = not (
            isinstance(returned, _Array) and _tainted(returned)
        )

    # -- bookkeeping ----------------------------------------------------------

    def _tick(self) -> None:
        self.steps += 1
        if self.steps > STATEMENT_BUDGET:
            raise AnalysisFailure(
                f"statement budget exceeded ({STATEMENT_BUDGET}) while "
                "unrolling lang program"
            )

    def _control_deps(self) -> FrozenSet[Any]:
        deps: FrozenSet[Any] = _EMPTY
        for tainted, entry_deps in self.ctrl:
            if tainted:
                deps = deps | entry_deps
        return deps

    def _truthiness(self, value: Any) -> Tuple[bool, bool]:
        ok, concrete = const_value(value) if isinstance(value, AbstractValue) else (False, None)
        if not ok:
            return False, False
        try:
            return True, _lang_truthy(concrete)
        except Exception as error:
            raise AnalysisFailure(f"untestable lang condition ({error})") from error

    # -- expressions ----------------------------------------------------------

    def eval(self, expr: last.Expr, env: Dict[str, Any]) -> Any:
        self._tick()
        if isinstance(expr, last.Const):
            return Const(expr.value)
        if isinstance(expr, last.Var):
            if expr.name not in env:
                raise AnalysisFailure(f"unbound lang variable {expr.name!r}")
            return env[expr.name]
        if isinstance(expr, last.Unary):
            return self._eval_unary(expr, env)
        if isinstance(expr, last.Binary):
            return self._eval_binary(expr, env)
        if isinstance(expr, last.Ternary):
            return self._eval_ternary(expr, env)
        if isinstance(expr, last.Index):
            return self._eval_index(expr, env)
        if isinstance(expr, last.ArrayExpr):
            ok, size = const_value(self.eval(expr.size, env))
            if not ok:
                raise AnalysisFailure("array size is not a compile-time constant")
            fill = self.eval(expr.fill, env)
            if isinstance(fill, _Array):
                raise AnalysisFailure("nested lang arrays are unsupported")
            return _Array((fill,) * int(size))
        if isinstance(expr, last.RandomExpr):
            return self._sample(expr, env)
        if isinstance(expr, last.Call):
            return self._call(expr, env)
        raise AnalysisFailure(f"unknown lang expression {expr!r}")

    def _apply(self, operands: Tuple[Any, ...], compute) -> AbstractValue:
        for operand in operands:
            if isinstance(operand, _Array):
                raise AnalysisFailure("lang arrays are not scalar operands")
        concrete = []
        all_const = True
        for operand in operands:
            ok, value = const_value(operand)
            if not ok:
                all_const = False
                break
            concrete.append(value)
        if all_const:
            try:
                return Const(compute(tuple(concrete)))
            except Exception as error:
                raise AnalysisFailure(f"lang evaluation failed: {error}") from error
        tainted = any(is_tainted(operand) for operand in operands)
        deps: FrozenSet[Any] = _EMPTY
        for operand in operands:
            deps = deps | deps_of(operand)
        member_sets = []
        total = 1
        for operand in operands:
            members = possible_values(operand)
            if members is None:
                member_sets = None
                break
            total *= max(len(members), 1)
            if total > MAX_ONE_OF:
                member_sets = None
                break
            member_sets.append(members)
        if member_sets is not None:
            results = []
            for combo in itertools.product(*member_sets):
                try:
                    results.append(compute(combo))
                except Exception:
                    continue
            if results:
                return make_one_of(results, tainted, deps)
        return Unknown(tainted, deps)

    def _eval_unary(self, expr: last.Unary, env: Dict[str, Any]) -> AbstractValue:
        operand = self.eval(expr.operand, env)
        if expr.op == "-":
            return self._apply((operand,), lambda values: -values[0])
        if expr.op == "!":
            return self._apply(
                (operand,), lambda values: 0 if _lang_truthy(values[0]) else 1
            )
        raise AnalysisFailure(f"unknown lang unary operator {expr.op!r}")

    def _eval_binary(self, expr: last.Binary, env: Dict[str, Any]) -> AbstractValue:
        if expr.op in ("&&", "||"):
            left = self.eval(expr.left, env)
            ok, truthy = self._truthiness(left)
            if ok:
                if expr.op == "&&" and not truthy:
                    return Const(0)
                if expr.op == "||" and truthy:
                    return Const(1)
                right = self.eval(expr.right, env)
                return self._apply(
                    (right,), lambda values: 1 if _lang_truthy(values[0]) else 0
                )
            # Undecidable left operand: the right-hand side may or may
            # not evaluate (and may sample) — analyze it under an
            # uncertainty frame, then merge.
            self.ctrl.append((is_tainted(left), deps_of(left)))
            self.branch_depth += 1
            try:
                right = self.eval(expr.right, env)
            finally:
                self.branch_depth -= 1
                self.ctrl.pop()
            return self._apply(
                (left, right),
                lambda values: (
                    (1 if _lang_truthy(values[1]) else 0)
                    if _lang_truthy(values[0]) == (expr.op == "&&")
                    else (0 if expr.op == "&&" else 1)
                ),
            )
        left = self.eval(expr.left, env)
        right = self.eval(expr.right, env)
        if expr.op == "/":
            return self._apply((left, right), lambda values: _div(values[0], values[1]))
        handler = _BIN_OPS.get(expr.op)
        if handler is None:
            raise AnalysisFailure(f"unknown lang binary operator {expr.op!r}")
        return self._apply(
            (left, right), lambda values: handler(values[0], values[1])
        )

    def _eval_ternary(self, expr: last.Ternary, env: Dict[str, Any]) -> Any:
        cond = self.eval(expr.cond, env)
        ok, truthy = self._truthiness(cond)
        if ok:
            return self.eval(expr.then if truthy else expr.otherwise, env)
        tainted = is_tainted(cond)
        deps = deps_of(cond)
        if tainted:
            self.profile.record_control("ifexp", 0, deps)
        self.ctrl.append((tainted, deps))
        self.branch_depth += 1
        try:
            then_value = self.eval(expr.then, env)
            else_value = self.eval(expr.otherwise, env)
        finally:
            self.branch_depth -= 1
            self.ctrl.pop()
        if isinstance(then_value, AbstractValue) and isinstance(else_value, AbstractValue):
            return join(then_value, else_value, tainted=tainted, extra_deps=deps)
        raise AnalysisFailure("array-valued lang conditional expression")

    def _eval_index(self, expr: last.Index, env: Dict[str, Any]) -> Any:
        array = _as_array(self.eval(expr.array, env))
        if array is None:
            raise AnalysisFailure("indexing a non-array lang value")
        index = self.eval(expr.index, env)
        ok, concrete = const_value(index)
        if ok:
            i = int(concrete)
            if not 0 <= i < len(array.items):
                raise AnalysisFailure(
                    f"lang index {i} out of bounds for array of size "
                    f"{len(array.items)}"
                )
            return array.items[i]
        members = possible_values(index)
        if members is not None:
            selected = [
                array.items[int(member)]
                for member in members
                if 0 <= int(member) < len(array.items)
            ]
            if selected:
                out = selected[0]
                for other in selected[1:]:
                    out = join(out, other, tainted=True, extra_deps=deps_of(index))
                if len(selected) == 1:
                    out = join(out, out, tainted=True, extra_deps=deps_of(index))
                return out
        return Unknown(True, _deps(array) | deps_of(index))

    # -- random expressions ---------------------------------------------------

    def _dist_facts(
        self, expr: last.RandomExpr, env: Dict[str, Any]
    ) -> Tuple[str, Tuple[Support, ...], FrozenSet[Any]]:
        """(dist class name, supports, parameter deps) of a random expr."""
        if isinstance(expr, last.FlipExpr):
            prob = self.eval(expr.prob, env)
            ok, concrete = const_value(prob)
            if ok:
                try:
                    return "Flip", (Flip(float(concrete)).support(),), _EMPTY
                except Exception as error:
                    raise AnalysisFailure(f"invalid flip parameter: {error}") from error
            return "Flip", (BinarySupport(),), deps_of(prob)
        if isinstance(expr, last.UniformExpr):
            low = self.eval(expr.low, env)
            high = self.eval(expr.high, env)
            ok_low, concrete_low = const_value(low)
            ok_high, concrete_high = const_value(high)
            if ok_low and ok_high:
                try:
                    support = UniformDiscrete(
                        int(concrete_low), int(concrete_high)
                    ).support()
                except Exception as error:
                    raise AnalysisFailure(
                        f"invalid uniform bounds: {error}"
                    ) from error
                return "UniformDiscrete", (support,), _EMPTY
            raise AnalysisFailure(
                "uniform bounds are not compile-time constants; the support "
                "cannot be statically determined"
            )
        if isinstance(expr, last.GaussExpr):
            mean = self.eval(expr.mean, env)
            std = self.eval(expr.std, env)
            ok_mean, concrete_mean = const_value(mean)
            ok_std, concrete_std = const_value(std)
            if ok_mean and ok_std:
                try:
                    support = Normal(float(concrete_mean), float(concrete_std)).support()
                except Exception as error:
                    raise AnalysisFailure(f"invalid gauss parameters: {error}") from error
                return "Normal", (support,), _EMPTY
            return "Normal", (RealLine(),), deps_of(mean) | deps_of(std)
        raise AnalysisFailure(f"unknown lang random expression {expr!r}")

    def _sample(self, expr: last.RandomExpr, env: Dict[str, Any]) -> AbstractValue:
        dist_class, supports, param_deps = self._dist_facts(expr, env)
        address = choice_address(expr.label, tuple(self.loop_indices))
        always = not self.ctrl
        control_deps = self._control_deps()
        if address in self.model.observations:
            self.profile.record(
                address,
                dist_class,
                supports,
                observed=True,
                always=always,
                param_deps=param_deps,
                control_deps=control_deps,
            )
            return Const(self.model.observations[address])
        self.profile.record(
            address,
            dist_class,
            supports,
            observed=False,
            always=always,
            param_deps=param_deps,
            control_deps=control_deps,
        )
        return Sampled(address, supports)

    def _call(self, expr: last.Call, env: Dict[str, Any]) -> Any:
        function = self.functions.get(expr.name)
        if function is None:
            raise AnalysisFailure(f"call to undefined lang function {expr.name!r}")
        if len(expr.args) != len(function.params):
            raise AnalysisFailure(f"lang call arity mismatch for {expr.name!r}")
        if self.call_depth >= MAX_CALL_DEPTH:
            raise AnalysisFailure(
                f"lang call depth exceeded {MAX_CALL_DEPTH} during analysis"
            )
        arguments = [self.eval(arg, env) for arg in expr.args]
        call_env = dict(zip(function.params, arguments))
        self.loop_indices.append(expr.label)
        self.call_depth += 1
        try:
            self.exec(function.body, call_env)
        except _LangReturn as signal:
            return signal.value
        finally:
            self.loop_indices.pop()
            self.call_depth -= 1
        raise AnalysisFailure(f"lang function {expr.name!r} did not return a value")

    # -- statements -----------------------------------------------------------

    def exec(self, stmt: last.Stmt, env: Dict[str, Any]) -> None:
        self._tick()
        if isinstance(stmt, last.Skip):
            return
        if isinstance(stmt, last.Assign):
            env[stmt.name] = self.eval(stmt.expr, env)
            return
        if isinstance(stmt, last.IndexAssign):
            self._index_assign(stmt, env)
            return
        if isinstance(stmt, last.Seq):
            self.exec(stmt.first, env)
            self.exec(stmt.second, env)
            return
        if isinstance(stmt, last.If):
            self._exec_if(stmt, env)
            return
        if isinstance(stmt, last.Observe):
            self._exec_observe(stmt, env)
            return
        if isinstance(stmt, last.For):
            self._exec_for(stmt, env)
            return
        if isinstance(stmt, last.While):
            self._exec_while(stmt, env)
            return
        if isinstance(stmt, last.Return):
            if self.branch_depth:
                raise AnalysisFailure(
                    "lang return under a data-dependent branch"
                )
            raise _LangReturn(self.eval(stmt.expr, env))
        if isinstance(stmt, last.FuncDef):
            if stmt.name in self.functions:
                raise AnalysisFailure(f"lang function {stmt.name!r} redefined")
            self.functions[stmt.name] = stmt
            return
        raise AnalysisFailure(f"unknown lang statement {stmt!r}")

    def _index_assign(self, stmt: last.IndexAssign, env: Dict[str, Any]) -> None:
        if stmt.name not in env:
            raise AnalysisFailure(f"unbound lang variable {stmt.name!r}")
        array = _as_array(env[stmt.name])
        if array is None:
            raise AnalysisFailure(
                f"index-assigning a non-array lang variable {stmt.name!r}"
            )
        index = self.eval(stmt.index, env)
        value = self.eval(stmt.expr, env)
        if isinstance(value, _Array):
            raise AnalysisFailure("nested lang arrays are unsupported")
        ok, concrete = const_value(index)
        if ok:
            i = int(concrete)
            if not 0 <= i < len(array.items):
                raise AnalysisFailure(
                    f"lang index {i} out of bounds for array of size "
                    f"{len(array.items)}"
                )
            items = list(array.items)
            items[i] = value
            env[stmt.name] = _Array(tuple(items))
            return
        members = possible_values(index)
        if members is None:
            raise AnalysisFailure(
                f"index-assignment into {stmt.name!r} with an unbounded index"
            )
        # Weak update: every possibly-written slot joins old and new.
        indices = {int(member) for member in members if 0 <= int(member) < len(array.items)}
        items = [
            join(item, value, tainted=True, extra_deps=deps_of(index))
            if position in indices
            else item
            for position, item in enumerate(array.items)
        ]
        env[stmt.name] = _Array(tuple(items))

    def _exec_observe(self, stmt: last.Observe, env: Dict[str, Any]) -> None:
        dist_class, supports, param_deps = self._dist_facts(stmt.random, env)
        self.eval(stmt.value, env)
        address = choice_address(stmt.random.label, tuple(self.loop_indices))
        self.profile.record(
            address,
            dist_class,
            supports,
            observed=True,
            always=not self.ctrl,
            param_deps=param_deps,
            control_deps=self._control_deps(),
        )

    def _exec_if(self, stmt: last.If, env: Dict[str, Any]) -> None:
        cond = self.eval(stmt.cond, env)
        ok, truthy = self._truthiness(cond)
        if ok:
            self.exec(stmt.then if truthy else stmt.otherwise, env)
            return
        tainted = is_tainted(cond)
        deps = deps_of(cond)
        if tainted:
            self.profile.record_control("if", 0, deps)
        self.ctrl.append((tainted, deps))
        self.branch_depth += 1
        try:
            then_env = dict(env)
            else_env = dict(env)
            self.exec(stmt.then, then_env)
            self.exec(stmt.otherwise, else_env)
        finally:
            self.branch_depth -= 1
            self.ctrl.pop()
        for name in set(then_env) | set(else_env):
            left = then_env.get(name)
            right = else_env.get(name)
            if left is right:
                if left is not None:
                    env[name] = left
                continue
            if left is None or right is None:
                present = left if right is None else right
                env[name] = Unknown(
                    tainted or _tainted(present), deps | _deps(present)
                )
                continue
            left_array = _as_array(left) if isinstance(left, _Array) else None
            right_array = _as_array(right) if isinstance(right, _Array) else None
            if isinstance(left, _Array) or isinstance(right, _Array):
                left_array = _as_array(left)
                right_array = _as_array(right)
                if (
                    left_array is None
                    or right_array is None
                    or len(left_array.items) != len(right_array.items)
                ):
                    raise AnalysisFailure(
                        f"lang array {name!r} diverges structurally across a "
                        "data-dependent branch"
                    )
                env[name] = _Array(
                    tuple(
                        join(a, b, tainted=tainted, extra_deps=deps)
                        for a, b in zip(left_array.items, right_array.items)
                    )
                )
                continue
            env[name] = join(left, right, tainted=tainted, extra_deps=deps)

    def _exec_for(self, stmt: last.For, env: Dict[str, Any]) -> None:
        ok_low, low = const_value(self.eval(stmt.low, env))
        ok_high, high = const_value(self.eval(stmt.high, env))
        if not ok_low or not ok_high:
            iterable_deps = _EMPTY
            for bound in (stmt.low, stmt.high):
                value = self.eval(bound, env)
                iterable_deps = iterable_deps | deps_of(value)
                if is_tainted(value):
                    self.profile.record_control("for", 0, deps_of(value))
            raise AnalysisFailure(
                "lang for-loop bounds are not compile-time constants"
            )
        for i in range(int(low), int(high)):
            self._tick()
            env[stmt.var] = Const(i)
            self.loop_indices.append(i)
            try:
                self.exec(stmt.body, env)
            finally:
                self.loop_indices.pop()

    def _exec_while(self, stmt: last.While, env: Dict[str, Any]) -> None:
        iteration = 0
        while True:
            self._tick()
            self.loop_indices.append(iteration)
            try:
                cond = self.eval(stmt.cond, env)
                ok, truthy = self._truthiness(cond)
                if not ok:
                    if is_tainted(cond):
                        self.profile.record_control("while", 0, deps_of(cond))
                    raise AnalysisFailure(
                        "lang while condition is not statically decidable "
                        "(value-dependent loop bound)"
                    )
                if not truthy:
                    return
                self.exec(stmt.body, env)
            finally:
                self.loop_indices.pop()
            iteration += 1


def analyze_lang_model(model: Model, profile: StaticProfile) -> StaticProfile:
    """Statically profile a lang model (called from
    :func:`repro.analysis.absint.analyze_model`)."""
    try:
        _LangAbstractInterpreter(model, profile).run()
        if not profile.failure:
            profile.complete = True
    except AnalysisFailure as error:
        profile.fail(str(error))
    except RecursionError:  # pragma: no cover - pathological nesting
        profile.fail("recursion limit exceeded during lang analysis")
    return profile
