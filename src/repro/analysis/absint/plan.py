"""Static columnar-eligibility pre-flight (:class:`ColumnarPlan`).

The columnar runtime (:mod:`repro.core.columnar`) discovers at run time
— by probing, once per step — whether a step can be laid out
address-major, and raises :class:`~repro.core.columnar.ColumnarSpill`
with a stable reason ``code`` when it cannot.  This module predicts
those reasons *statically*, from the translator's shape and the
abstract interpretation of its models:

* findings with ``certain=True`` identify steps that would definitely
  spill (a rejuvenation kernel, a containing fault policy,
  value-dependent control flow in the target);
  :func:`repro.core.columnar.columnar_infer_step` consults them and
  routes straight to the object path without per-step probing;
* findings with ``certain=False`` are possible spill reasons; the step
  still runs columnar and the runtime probe decides;
* an incomplete static profile widens the prediction to *every* spill
  code (top) — the plan never claims a spill impossible on a model it
  could not close.

Soundness contract: :meth:`ColumnarPlan.predicted_codes` is a superset
of the codes any actual spill of the planned step can carry, and a plan
with no certain finding never *causes* a spill (the runtime probe is
unchanged); it may only be wrong in the conservative direction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, FrozenSet, List, Optional, Set, Tuple

from .interp import analyze_model
from .profile import StaticProfile

__all__ = [
    "SPILL_CODES",
    "LINT_CODE_PREFIX",
    "PlanFinding",
    "ColumnarPlan",
    "plan_columnar_step",
]

#: Stable spill reason codes, shared with
#: :class:`repro.core.columnar.ColumnarSpill` and surfaced by lint as
#: ``columnar-ineligible-<code>``.
SPILL_CODES = {
    "translator": "translator is not a plain CorrespondenceTranslator",
    "proposals": "translator carries custom forward/backward proposals",
    "mcmc": "an MCMC rejuvenation kernel is configured",
    "fault-policy": "the fault policy requires per-particle isolation",
    "collection-type": "the input collection type is not supported",
    "items": "collection items are not (all) object traces",
    "address-structure": "particles disagree on address sets or order",
    "value-kind": "a value column is non-numeric or of mixed kind",
    "dist-merge": "per-particle distributions cannot merge into one template",
    "template": "an array-parameterized template cannot be gathered/rebuilt",
    "observation": "an observation column cannot be represented",
    "batch-shape": "a batched sample/score returned the wrong shape",
    "return-value": "per-particle return values cannot be batched",
    "control-flow": "control flow branches on a sampled value",
    "execution": "the batched model execution raised",
    "unspecified": "reason not annotated (legacy raise)",
}

#: Lint diagnostics derived from plan findings use this prefix.
LINT_CODE_PREFIX = "columnar-ineligible-"


@dataclass(frozen=True)
class PlanFinding:
    """One predicted spill reason."""

    #: A key of :data:`SPILL_CODES` — the ``code`` the matching runtime
    #: :class:`~repro.core.columnar.ColumnarSpill` would carry.
    code: str
    #: True when the spill is unavoidable and the step should route to
    #: the object path without probing.
    certain: bool
    detail: str
    #: The model side the finding concerns ("source"/"target"/"step").
    subject: str = "step"
    #: True when the certainty only holds for populations of more than
    #: one particle (a single-particle column is a size-1 array, which
    #: numpy happily coerces to bool, so value-dependent control flow
    #: does not raise there).
    needs_multiple_particles: bool = False

    @property
    def lint_code(self) -> str:
        return LINT_CODE_PREFIX + self.code

    def describe(self) -> str:
        certainty = "will spill" if self.certain else "may spill"
        return f"[{self.lint_code}] {self.subject} {certainty}: {self.detail}"


@dataclass
class ColumnarPlan:
    """Static prediction of a columnar step's spill behaviour."""

    findings: List[PlanFinding] = field(default_factory=list)
    source_profile: Optional[StaticProfile] = None
    target_profile: Optional[StaticProfile] = None

    @property
    def eligible(self) -> bool:
        """True when no *certain* spill was found (the probe still runs)."""
        return not any(f.certain for f in self.findings)

    def blocking(self, num_particles: Optional[int] = None) -> Optional[PlanFinding]:
        """The first certain finding applicable to a population of
        ``num_particles`` (None means "unknown, assume many")."""
        for finding in self.findings:
            if not finding.certain:
                continue
            if (
                finding.needs_multiple_particles
                and num_particles is not None
                and num_particles <= 1
            ):
                continue
            return finding
        return None

    def predicted_codes(self) -> FrozenSet[str]:
        """Every spill code a run of the planned step could raise.

        Widens to all codes whenever either model resisted analysis:
        the plan refuses to rule out what it could not see.
        """
        codes: Set[str] = {f.code for f in self.findings}
        # The plan sees the translator and its models, never the input
        # collection — malformed-input spills stay possible regardless.
        codes.update(("collection-type", "items"))
        for profile in (self.source_profile, self.target_profile):
            if profile is None or not profile.complete:
                codes.update(SPILL_CODES)
        if "control-flow" in codes:
            # A sampled branch usually trips numpy's array-truth-value
            # guard (code "control-flow"), but the same batched run can
            # fail on a neighboring coercion first (code "execution").
            codes.add("execution")
        return frozenset(codes)

    def to_json(self) -> dict:
        return {
            "eligible": self.eligible,
            "findings": [
                {
                    "code": f.lint_code,
                    "certain": f.certain,
                    "subject": f.subject,
                    "detail": f.detail,
                }
                for f in self.findings
            ],
            "predicted_codes": sorted(self.predicted_codes()),
        }


def _is_numeric(value: Any) -> bool:
    import numpy as np

    return isinstance(value, (bool, int, float, np.bool_, np.integer, np.floating))


def _profile_findings(
    profile: StaticProfile, subject: str
) -> List[PlanFinding]:
    """Spill predictions read off one model's static profile."""
    findings: List[PlanFinding] = []
    if not profile.complete:
        findings.append(
            PlanFinding(
                "execution",
                certain=False,
                subject=subject,
                detail=(
                    f"static analysis could not close the model "
                    f"({profile.failure}); every spill reason stays possible"
                ),
            )
        )
    if profile.value_dependent_control_flow:
        site = profile.control_sites[0].describe() if profile.control_sites else ""
        if subject == "target":
            # The batched target run feeds whole columns through the
            # branch condition; numpy refuses the bool coercion.
            findings.append(
                PlanFinding(
                    "control-flow",
                    certain=profile.complete,
                    subject=subject,
                    detail=site or "a branch condition depends on a sampled value",
                    needs_multiple_particles=True,
                )
            )
        else:
            # Source-side branching shapes the *population*: particles
            # can disagree on which addresses exist.
            findings.append(
                PlanFinding(
                    "address-structure",
                    certain=False,
                    subject=subject,
                    detail=site or "a branch condition depends on a sampled value",
                )
            )
    if subject == "target" and profile.opaque_tainted_lines:
        lines = ", ".join(map(str, sorted(set(profile.opaque_tainted_lines))))
        # The batched target run feeds these calls whole columns; scalar
        # analysis cannot tell whether they vectorize.
        findings.append(
            PlanFinding(
                "execution",
                certain=False,
                subject=subject,
                detail=(
                    f"opaque call(s) at line(s) {lines} receive "
                    "sample-dependent arguments; the batched run may not "
                    "vectorize them"
                ),
            )
        )
    if subject == "source" and profile.return_batchable is False:
        # ``from_weighted`` stacks the *source* traces' return values;
        # a per-particle container cannot be stacked.  (The target's
        # return value is produced already batched by the columnar run.)
        findings.append(
            PlanFinding(
                "return-value",
                certain=False,
                subject=subject,
                detail="the model returns a per-particle container",
            )
        )
    for table in (profile.addresses, profile.observations):
        for address, info in table.items():
            if len(info.dist_classes) > 1:
                findings.append(
                    PlanFinding(
                        "dist-merge",
                        certain=False,
                        subject=subject,
                        detail=(
                            f"address {address!r} samples from several "
                            f"distribution classes ({', '.join(info.dist_classes)})"
                        ),
                    )
                )
            if not info.verified_batch:
                # The batch layer runs through this class's (possibly
                # overridden) log_prob_batch/sample_batch and template
                # machinery; none of it is verified for third-party
                # subclasses, so every batch-layer spill stays possible.
                classes = ", ".join(info.dist_classes)
                for code in ("batch-shape", "template", "dist-merge", "value-kind"):
                    findings.append(
                        PlanFinding(
                            code,
                            certain=False,
                            subject=subject,
                            detail=(
                                f"address {address!r} uses third-party "
                                f"distribution class(es) {classes} with an "
                                "unverified batched contract"
                            ),
                        )
                    )
            if not info.scalar_params:
                findings.append(
                    PlanFinding(
                        "dist-merge",
                        certain=False,
                        subject=subject,
                        detail=(
                            f"address {address!r} has a varying non-scalar "
                            "distribution parameter; per-particle instances "
                            "may not merge into one template"
                        ),
                    )
                )
            if not info.always and not info.observed and subject == "source":
                findings.append(
                    PlanFinding(
                        "address-structure",
                        certain=False,
                        subject=subject,
                        detail=(
                            f"address {address!r} only occurs on some paths; "
                            "particles may disagree on the address set"
                        ),
                    )
                )
            for support in info.supports:
                members: Tuple[Any, ...] = ()
                try:
                    if support.is_finite() and len(support) <= 8:
                        members = tuple(support.enumerate())
                except Exception:
                    members = ()
                if any(not _is_numeric(m) for m in members):
                    findings.append(
                        PlanFinding(
                            "value-kind",
                            certain=False,
                            subject=subject,
                            detail=(
                                f"address {address!r} takes non-numeric values "
                                f"({support!r})"
                            ),
                        )
                    )
    return findings


def plan_columnar_step(
    translator: Any,
    *,
    config: Any = None,
    mcmc_kernel: Any = None,
) -> ColumnarPlan:
    """Predict the spill behaviour of one columnar SMC step.

    Mirrors the runtime checks of
    :func:`repro.core.columnar.columnar_infer_step` statically: the
    translator-shape rules of ``_check_translator`` become certain
    findings, and the two models' static profiles contribute the
    model-level reasons (value-dependent control flow, branch-dependent
    address sets, heterogeneous distributions, non-numeric supports).
    """
    from ...core.corr_translator import CorrespondenceTranslator
    from ...core.model import Model

    plan = ColumnarPlan()

    if type(translator) is not CorrespondenceTranslator:
        plan.findings.append(
            PlanFinding(
                "translator",
                certain=True,
                detail=(
                    f"columnar path supports plain CorrespondenceTranslator, "
                    f"got {type(translator).__name__}"
                ),
            )
        )
        return plan
    if translator.forward_proposals or translator.backward_proposals:
        plan.findings.append(
            PlanFinding(
                "proposals", certain=True, detail="translator has custom proposals"
            )
        )
    if mcmc_kernel is not None:
        plan.findings.append(
            PlanFinding(
                "mcmc", certain=True, detail="MCMC rejuvenation uses the object path"
            )
        )
    if config is not None:
        policy = getattr(config, "fault_policy", None)
        if policy is not None and getattr(policy, "contains_faults", False):
            plan.findings.append(
                PlanFinding(
                    "fault-policy",
                    certain=True,
                    detail=(
                        f"fault policy {policy.mode!r} needs per-particle isolation"
                    ),
                )
            )

    source = getattr(translator, "source", None)
    target = getattr(translator, "target", None)
    if isinstance(source, Model):
        plan.source_profile = analyze_model(source)
        plan.findings.extend(_profile_findings(plan.source_profile, "source"))
    if isinstance(target, Model):
        plan.target_profile = analyze_model(target)
        plan.findings.extend(_profile_findings(plan.target_profile, "target"))
    return plan
