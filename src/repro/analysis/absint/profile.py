"""The output of the static model profiler.

A :class:`StaticProfile` is the abstract interpreter's answer to the
questions the rest of the system used to answer by *running* the model:

* which addresses the program samples at (split into latent choices and
  observations, mirroring the external-constraint treatment of
  observations in the runtime profiles of
  :mod:`repro.analysis.correspondence`);
* which distribution class and which supports sit at each address;
* how addresses group into loop-indexed families
  (``("hidden", i)``-style, the paper's Section 5.4 loop-index scheme);
* a statement-level dependency graph: for each address, the sampled
  addresses whose values feed the distribution's parameters
  (``param_deps``) and the sampled addresses that control whether the
  statement executes at all (``control_deps``);
* whether any control flow depends on a sampled value
  (``value_dependent_control_flow``), which is what the columnar
  pre-flight (:mod:`repro.analysis.absint.plan`) keys off.

``complete`` is the soundness switch: only a complete profile may be
used in place of a sampled/enumerated one.  A profile is *incomplete*
whenever the interpreter hit a construct it cannot close (a
value-dependent loop bound, a dynamic address, an unsupported statement
form, an unbounded widening); ``failure`` records the first such reason
so lint output and the derivation report can say why sampling ran.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Hashable, List, Optional, Tuple

from ...core.address import Address
from ..correspondence import AddressProfile

__all__ = ["AddressInfo", "ControlSite", "StaticProfile"]

_EMPTY: FrozenSet[Address] = frozenset()


def _intern_address(address: Address) -> Address:
    """Intern string components of an address.

    Runtime addresses are built from compiled string constants, which
    CPython interns; addresses reconstructed from parsed AST constants
    are equal but not identical.  Interning makes a statically derived
    address space *pickle byte-identical* to the runtime one (pickle
    memoizes by object identity, so shared heads serialize as
    back-references either way).
    """
    try:
        return tuple(
            sys.intern(part) if type(part) is str else part for part in address
        )
    except TypeError:
        return address


@dataclass
class AddressInfo:
    """Everything the analyzer learned about one address."""

    address: Address
    #: Distribution class names sampled at the address (usually one;
    #: branch-dependent distribution *classes* would produce several).
    dist_classes: Tuple[str, ...] = ()
    #: Distinct supports, in first-derived order — the same order a
    #: runtime :class:`~repro.analysis.correspondence.AddressProfile`
    #: records them in, so downstream support-compatibility checks see
    #: identical lists.
    supports: List[Any] = field(default_factory=list)
    #: True when the statement executes on every path through the
    #: program (it sits under no non-constant branch).
    always: bool = True
    #: True when the address is an observation (an ``observe`` statement
    #: or a ``sample`` at a conditioned address) rather than a latent.
    observed: bool = False
    #: Sampled addresses whose values flow into the distribution's
    #: parameters.
    param_deps: FrozenSet[Address] = _EMPTY
    #: Sampled addresses whose values decide whether this statement runs.
    control_deps: FrozenSet[Address] = _EMPTY
    #: False when some varying distribution parameter is not a numeric
    #: scalar (a transition row selected by a sampled state, an opaque
    #: value) — per-particle instances may then resist merging into one
    #: columnar template.
    scalar_params: bool = True
    #: False when the distribution class is a third-party subclass whose
    #: batched contract (``log_prob_batch``/``sample_batch`` shapes,
    #: template rebuild, value dtypes) this package has not verified —
    #: the columnar plan keeps the batch-layer spill codes possible.
    verified_batch: bool = True

    def merge_event(
        self,
        dist_class: str,
        supports: Tuple[Any, ...],
        always: bool,
        param_deps: FrozenSet[Address],
        control_deps: FrozenSet[Address],
        scalar_params: bool = True,
        verified_batch: bool = True,
    ) -> None:
        """Fold another sample/observe event at the same address in."""
        if dist_class not in self.dist_classes:
            self.dist_classes = self.dist_classes + (dist_class,)
        for support in supports:
            if support not in self.supports:
                self.supports.append(support)
        self.always = self.always or always
        self.param_deps = self.param_deps | param_deps
        self.control_deps = self.control_deps | control_deps
        self.scalar_params = self.scalar_params and scalar_params
        self.verified_batch = self.verified_batch and verified_batch


@dataclass(frozen=True)
class ControlSite:
    """One place where control flow depends on a sampled value."""

    kind: str  # "if" | "ifexp" | "while" | "for" | "boolop"
    line: int
    deps: FrozenSet[Address]

    def describe(self) -> str:
        deps = ", ".join(sorted(repr(d) for d in self.deps)) or "<unknown>"
        return f"{self.kind} at line {self.line} depends on sampled {deps}"


@dataclass
class StaticProfile:
    """Statically derived address space of one model."""

    name: str
    #: True when the analyzer closed the whole program: every address,
    #: distribution class, and support is known, and no unsupported
    #: construct was skipped.  Only complete profiles may stand in for
    #: sampled ones.
    complete: bool = False
    #: First reason the analyzer gave up (empty when complete).
    failure: str = ""
    #: Latent addresses, in program order.
    addresses: Dict[Address, AddressInfo] = field(default_factory=dict)
    #: Observed addresses (``observe`` statements and conditioned
    #: ``sample`` statements), in program order.
    observations: Dict[Address, AddressInfo] = field(default_factory=dict)
    #: Whether any branch/loop condition is sample-dependent.
    value_dependent_control_flow: bool = False
    #: The offending sites, in discovery order.
    control_sites: List[ControlSite] = field(default_factory=list)
    #: Whether the model's return value can be stacked into a column
    #: (the ``_batch_values`` convention of :mod:`repro.core.columnar`):
    #: ``True`` for scalars/shared constants/tuples thereof, ``False``
    #: for per-particle containers, ``None`` when not determined.
    return_batchable: Optional[bool] = None
    #: Line numbers of opaque calls receiving sample-dependent
    #: arguments.  The scalar semantics close fine (the result is just
    #: ``Unknown``), but a *batched* run feeds such calls whole columns
    #: — ``math.exp(column)``, ``float(column)`` — which may raise, so
    #: the columnar plan must keep an ``execution`` spill possible.
    opaque_tainted_lines: List[int] = field(default_factory=list)

    # -- events (called by the interpreters) --------------------------------

    def record(
        self,
        address: Address,
        dist_class: str,
        supports: Tuple[Any, ...],
        *,
        observed: bool,
        always: bool,
        param_deps: FrozenSet[Address] = _EMPTY,
        control_deps: FrozenSet[Address] = _EMPTY,
        scalar_params: bool = True,
        verified_batch: bool = True,
    ) -> None:
        address = _intern_address(address)
        table = self.observations if observed else self.addresses
        info = table.get(address)
        if info is None:
            table[address] = AddressInfo(
                address=address,
                dist_classes=(dist_class,),
                supports=[s for s in supports],
                always=always,
                observed=observed,
                param_deps=param_deps,
                control_deps=control_deps,
                scalar_params=scalar_params,
                verified_batch=verified_batch,
            )
        else:
            info.merge_event(
                dist_class,
                supports,
                always,
                param_deps,
                control_deps,
                scalar_params,
                verified_batch,
            )

    def record_control(self, kind: str, line: int, deps: FrozenSet[Address]) -> None:
        self.value_dependent_control_flow = True
        site = ControlSite(kind=kind, line=line, deps=deps)
        if site not in self.control_sites:
            self.control_sites.append(site)

    def fail(self, reason: str) -> None:
        """Mark the profile unusable (first reason wins)."""
        self.complete = False
        if not self.failure:
            self.failure = reason

    # -- views ---------------------------------------------------------------

    def families(self) -> Dict[Tuple[Hashable, int], List[Address]]:
        """Latent addresses grouped by (head, index arity) — the same
        family key the derivation aligner uses."""
        families: Dict[Tuple[Hashable, int], List[Address]] = {}
        for address in self.addresses:
            head = address[0] if address else None
            key = (head, max(len(address) - 1, 0))
            families.setdefault(key, []).append(address)
        return families

    def dependencies(self) -> Dict[Address, FrozenSet[Address]]:
        """Statement-level dependency graph: address -> the sampled
        addresses its distribution parameters or guarding branches read."""
        graph: Dict[Address, FrozenSet[Address]] = {}
        for table in (self.addresses, self.observations):
            for address, info in table.items():
                graph[address] = info.param_deps | info.control_deps
        return graph

    def to_address_profile(self) -> AddressProfile:
        """Project onto the runtime profile shape ``derive``/lint consume.

        Only valid for complete profiles — the ``complete=True`` flag
        promises "an absent address provably never occurs", which an
        incomplete static profile cannot honor.
        """
        if not self.complete:
            raise ValueError(
                f"static profile of {self.name!r} is incomplete ({self.failure}); "
                "it cannot stand in for a runtime profile"
            )
        profile = AddressProfile(name=self.name, complete=True)
        for address, info in self.addresses.items():
            profile.supports[address] = list(info.supports)
        return profile

    def to_json(self) -> Dict[str, Any]:
        """JSON-serializable summary (CLI ``--static-profile`` output and
        the CI profile artifacts)."""

        def info_json(info: AddressInfo) -> Dict[str, Any]:
            return {
                "address": repr(info.address),
                "dist_classes": list(info.dist_classes),
                "supports": [repr(s) for s in info.supports],
                "always": info.always,
                "observed": info.observed,
                "param_deps": sorted(repr(d) for d in info.param_deps),
                "control_deps": sorted(repr(d) for d in info.control_deps),
                "scalar_params": info.scalar_params,
                "verified_batch": info.verified_batch,
            }

        return {
            "name": self.name,
            "complete": self.complete,
            "failure": self.failure,
            "addresses": [info_json(i) for i in self.addresses.values()],
            "observations": [info_json(i) for i in self.observations.values()],
            "families": {
                repr(key): [repr(a) for a in members]
                for key, members in sorted(self.families().items(), key=repr)
            },
            "value_dependent_control_flow": self.value_dependent_control_flow,
            "control_sites": [site.describe() for site in self.control_sites],
            "return_batchable": self.return_batchable,
            "opaque_tainted_lines": list(self.opaque_tainted_lines),
        }
