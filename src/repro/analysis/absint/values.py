"""The abstract-value lattice of the static model profiler.

The profiler's job is narrow: decide, without running the model, which
addresses a program samples at, which distribution class (and support)
sits at each address, and whether any control flow depends on a sampled
value.  The lattice is therefore small and *finite-first*:

* :class:`Const` — a value known exactly (the model's ``args`` and
  anything computed from constants);
* :class:`OneOf` — a bounded, explicitly enumerated set of possible
  constants.  Branch joins and subscripting constants with
  finite-support sampled indices produce these; the set is widened to
  :class:`Unknown` past :data:`MAX_ONE_OF`;
* :class:`Sampled` — the value of a random choice, carrying the
  choice's possible supports so downstream subscripts can enumerate it;
* :class:`Unknown` — anything else, tracking only *taint* (whether the
  value transitively depends on a random choice) and the set of
  sampled addresses it depends on.

Taint is the load-bearing bit: a tainted branch condition is the
``value-dependent-control-flow`` verdict, which both demotes the model
from the columnar runtime and (for ``while`` bounds) stops the address
space from being statically closed.  The ``deps`` sets ride along so
the emitted :class:`~repro.analysis.absint.profile.StaticProfile` can
report a statement-level dependency graph (which sampled addresses feed
each distribution's parameters).

Every class is immutable; the interpreter treats plain Python lists
built inside the analyzed function as mutable containers *of* abstract
values, which is how ``states.append(...)``-style model code stays
precise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, FrozenSet, Iterable, Optional, Tuple

__all__ = [
    "AbstractValue",
    "Const",
    "OneOf",
    "Sampled",
    "Unknown",
    "UNKNOWN",
    "MAX_ONE_OF",
    "is_tainted",
    "is_numeric_scalar",
    "deps_of",
    "join",
    "make_one_of",
    "possible_values",
    "const_value",
]

#: Widening threshold: a :class:`OneOf` may enumerate at most this many
#: alternatives before it collapses into :class:`Unknown`.  Keeps the
#: product sets of nested sampled subscripts (second-order HMM
#: transition rows, ...) bounded.
MAX_ONE_OF = 64

_EMPTY: FrozenSet[Any] = frozenset()


class AbstractValue:
    """Base marker for abstract values (plain Python values are *not*
    abstract values; the interpreter wraps them in :class:`Const`)."""

    __slots__ = ()


@dataclass(frozen=True)
class Const(AbstractValue):
    """A value known exactly at analysis time."""

    value: Any

    def __repr__(self) -> str:
        return f"Const({self.value!r})"


@dataclass(frozen=True, eq=False)
class OneOf(AbstractValue):
    """One of a bounded set of known values.

    ``tainted`` records whether the *selection* among the alternatives
    depends on a random choice (it almost always does — the usual
    producers are branch joins on sampled conditions and subscripts by
    sampled indices); ``deps`` names the sampled addresses involved.
    Identity equality only: members may be numpy arrays, whose ``==`` is
    elementwise and would poison a structural ``__eq__``.
    """

    values: Tuple[Any, ...]
    tainted: bool = True
    deps: FrozenSet[Any] = _EMPTY

    def __repr__(self) -> str:
        flag = "tainted" if self.tainted else "pure"
        return f"OneOf({len(self.values)} values, {flag})"


@dataclass(frozen=True)
class Sampled(AbstractValue):
    """The value of one random choice.

    ``supports`` is the tuple of possible
    :class:`~repro.distributions.base.Support` descriptions of the
    distribution sampled at the address (usually one element;
    branch-dependent parameters can produce several).
    """

    address: Any
    supports: Tuple[Any, ...] = ()

    def __repr__(self) -> str:
        return f"Sampled({self.address!r})"


@dataclass(frozen=True)
class Unknown(AbstractValue):
    """Top: nothing is known beyond taint and its origin set.

    ``numeric`` preserves one shape fact through widening: the value,
    though unknown, is certainly a numeric *scalar* (arithmetic over
    scalars, oversized joins of scalar sets).  The columnar pre-flight
    keys off it — varying scalar distribution parameters merge into an
    array-parameterized template, varying non-scalars do not.
    """

    tainted: bool = False
    deps: FrozenSet[Any] = _EMPTY
    numeric: bool = False

    def __repr__(self) -> str:
        return "Unknown(tainted)" if self.tainted else "Unknown"


#: Shared pure-top instance (allocation thrift in the interpreter loop).
UNKNOWN = Unknown()


def is_tainted(value: AbstractValue) -> bool:
    """True when ``value`` (transitively) depends on a random choice."""
    if isinstance(value, Sampled):
        return True
    if isinstance(value, (OneOf, Unknown)):
        return value.tainted
    return False


def _scalar_types() -> tuple:
    import numpy as np

    return (bool, int, float, np.bool_, np.integer, np.floating)


def is_numeric_scalar(value: AbstractValue) -> bool:
    """True when ``value`` is certainly a numeric scalar at run time."""
    if isinstance(value, Const):
        return isinstance(value.value, _scalar_types())
    if isinstance(value, OneOf):
        return all(isinstance(m, _scalar_types()) for m in value.values)
    if isinstance(value, Sampled):
        # Every Distribution this analyzer closes draws numeric scalars.
        return True
    if isinstance(value, Unknown):
        return value.numeric
    return False


def deps_of(value: AbstractValue) -> FrozenSet[Any]:
    """The sampled addresses ``value`` (transitively) depends on."""
    if isinstance(value, Sampled):
        return frozenset((value.address,))
    if isinstance(value, (OneOf, Unknown)):
        return value.deps
    return _EMPTY


def _append_unseen(out: list, value: Any) -> None:
    """Append ``value`` unless an equal member exists; incomparable
    members (numpy arrays, ...) are kept as duplicates — dedup is a
    compactness optimization, never a soundness requirement."""
    for existing in out:
        if existing is value:
            return
        try:
            equal = bool(existing == value)
        except Exception:
            continue
        if equal:
            return
    out.append(value)


def _bounded_set(values: Iterable[Any]) -> Optional[Tuple[Any, ...]]:
    """Deduplicate preserving order; None past :data:`MAX_ONE_OF`."""
    out: list = []
    for value in values:
        _append_unseen(out, value)
        if len(out) > MAX_ONE_OF:
            return None
    return tuple(out)


def make_one_of(
    values: Iterable[Any], tainted: bool, deps: FrozenSet[Any] = _EMPTY
) -> AbstractValue:
    """A :class:`OneOf` over ``values``, collapsing singletons and
    widening oversized sets."""
    values = list(values)
    bounded = _bounded_set(values)
    if bounded is None:
        numeric = all(isinstance(m, _scalar_types()) for m in values)
        return Unknown(tainted, deps, numeric)
    if len(bounded) == 1 and not tainted:
        return Const(bounded[0])
    return OneOf(bounded, tainted=tainted, deps=deps)


def possible_values(value: AbstractValue) -> Optional[Tuple[Any, ...]]:
    """The finite set of concrete values ``value`` may take, or None.

    :class:`Sampled` values enumerate through their supports when every
    support is finite and small (``Support.is_finite`` plus a size cap —
    Geometric/Poisson report finite-but-astronomical integer ranges),
    which is what lets a sampled HMM state index a constant transition
    matrix precisely.
    """
    if isinstance(value, Const):
        return (value.value,)
    if isinstance(value, OneOf):
        return value.values
    if isinstance(value, Sampled):
        members: list = []
        for support in value.supports:
            try:
                if not support.is_finite() or len(support) > MAX_ONE_OF:
                    return None
                for member in support.enumerate():
                    _append_unseen(members, member)
            except Exception:
                return None
            if len(members) > MAX_ONE_OF:
                return None
        return tuple(members)
    return None


def const_value(value: AbstractValue) -> Tuple[bool, Any]:
    """``(True, v)`` when ``value`` is exactly the constant ``v``."""
    if isinstance(value, Const):
        return True, value.value
    return False, None


def join(
    a: AbstractValue,
    b: AbstractValue,
    tainted: bool = False,
    extra_deps: FrozenSet[Any] = _EMPTY,
) -> AbstractValue:
    """Least upper bound of two abstract values (used at branch joins).

    ``tainted``/``extra_deps`` fold in the branch condition: a join
    caused by a branch on a sampled condition makes the merged value
    data-dependent on that choice even when both alternatives are
    constants.
    """
    taint = tainted or is_tainted(a) or is_tainted(b)
    deps = deps_of(a) | deps_of(b) | extra_deps
    if isinstance(a, Sampled) and isinstance(b, Sampled) and a == b and not tainted:
        return a
    if a is b and not tainted and not isinstance(a, OneOf):
        return a
    left = possible_values(a) if isinstance(a, (Const, OneOf)) else None
    right = possible_values(b) if isinstance(b, (Const, OneOf)) else None
    if left is not None and right is not None:
        return make_one_of(left + right, tainted=taint, deps=deps)
    return Unknown(taint, deps, is_numeric_scalar(a) and is_numeric_scalar(b))
