"""Configuration and pipeline lint (pass 3).

An :class:`~repro.core.config.InferenceConfig` validates its own field
values eagerly, but some defects only exist in *combination* — with each
other or with the translator the config will run against:

* a ``process`` executor paired with a translator holding a lambda-based
  correspondence fails at pool-submission time, deep in the worker
  machinery;
* a checkpoint cadence without a checkpoint directory silently
  checkpoints nothing;
* a ``regenerate`` fault policy without any from-scratch sampler fails
  on the *first* particle fault, possibly hours in.

This pass catches those combinations statically, before any particle
work starts.  It is pure inspection: no model is executed and nothing is
actually pickled except via :func:`repro.parallel.pickling.find_unpicklable`,
which serializes to an in-memory buffer.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Any, List, Optional

from ..core.config import FaultPolicy, InferenceConfig
from .diagnostics import Diagnostic

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..service.config import ServiceConfig

__all__ = ["lint_config", "lint_service_config"]

PASS_NAME = "config"
SERVICE_PASS_NAME = "service-config"


def _is_process_executor(executor: Any) -> bool:
    if executor == "process":
        return True
    return type(executor).__name__ == "ProcessExecutor"


def lint_config(
    config: InferenceConfig, translator: Optional[Any] = None
) -> List[Diagnostic]:
    """Lint one config, optionally against the translator it will drive.

    Returns findings only — construction-time invariants (unknown
    schemes, negative worker counts, ...) are already enforced by
    ``InferenceConfig.__post_init__`` and cannot reach this function.
    """
    diagnostics: List[Diagnostic] = []

    def finding(severity: str, message: str, code: str) -> None:
        diagnostics.append(
            Diagnostic(severity, message, code=code, pass_name=PASS_NAME)
        )

    policy = FaultPolicy.coerce(config.fault_policy)

    # -- executor / picklability -------------------------------------------
    if _is_process_executor(config.executor):
        from ..parallel.pickling import find_unpicklable

        for component, value in (
            ("translator", translator),
            ("fault_policy.regenerate_fn", policy.regenerate_fn),
        ):
            if value is None:
                continue
            culprit = find_unpicklable(value)
            if culprit is not None:
                finding(
                    "error",
                    f"executor 'process' requires picklable inputs, but "
                    f"{culprit.describe(root=component)} cannot be pickled; "
                    "replace it with a module-level function or class",
                    "config-unpicklable",
                )
    if config.workers is not None and config.executor is None:
        finding(
            "warning",
            f"workers={config.workers} has no effect because executor is "
            "None (the legacy inline loop); set executor='thread' or "
            "'process' to parallelize",
            "config-workers-ignored",
        )

    # -- checkpointing ------------------------------------------------------
    if config.checkpoint_every != 1 and config.checkpoint_dir is None:
        finding(
            "warning",
            f"checkpoint_every={config.checkpoint_every} has no effect "
            "because checkpoint_dir is None; no checkpoints will be "
            "written",
            "config-checkpoint-cadence",
        )

    # -- resampling ---------------------------------------------------------
    if config.resample == "never" and config.ess_threshold != 0.5:
        finding(
            "warning",
            f"ess_threshold={config.ess_threshold} has no effect because "
            "resample is 'never'; set resample='adaptive' for "
            "ESS-triggered resampling",
            "config-ess-ignored",
        )

    # -- fault policy -------------------------------------------------------
    if policy.mode == "regenerate":
        has_fallback = policy.regenerate_fn is not None or (
            translator is not None and hasattr(translator, "regenerate")
        )
        if not has_fallback:
            finding(
                "error",
                "fault_policy 'regenerate' needs a from-scratch sampler, "
                "but regenerate_fn is None and the translator has no "
                "regenerate method; the first particle fault will fail "
                "the run",
                "config-no-regenerate",
            )
    if policy.mode == "drop" and config.resample == "never":
        finding(
            "warning",
            "fault_policy 'drop' gives failed particles -inf weight, but "
            "resample='never' keeps the dead particles in the collection "
            "for every subsequent step; consider resample='adaptive'",
            "config-drop-accumulates",
        )

    # -- columnar runtime ---------------------------------------------------
    if config.collection == "columnar":
        if translator is not None and getattr(translator, "cache", None) is not None:
            finding(
                "warning",
                "collection='columnar' re-scores reused choices with one "
                "batched log_prob_batch call per address, so the "
                "translator's log-prob cache is redundant on every "
                "columnar step (it only costs hashing on spilled steps); "
                "drop log_prob_cache=True or use collection='object'",
                "config-columnar-cache",
            )
        if _is_process_executor(config.executor):
            finding(
                "warning",
                "collection='columnar' executes each step as one "
                "vectorized pass, so executor='process' only adds "
                "pickling/IPC overhead unless steps routinely spill to "
                "the object path with particle counts large enough to "
                "amortize worker startup; prefer executor=None (or "
                "'thread' for spill-heavy workloads)",
                "config-columnar-process-executor",
            )

    # -- ablations ----------------------------------------------------------
    if not config.use_weights:
        finding(
            "info",
            "use_weights=False discards translator weight increments (the "
            "paper's 'no weights' ablation); the collection converges to "
            "the wrong posterior",
            "config-no-weights",
        )
    return diagnostics


def lint_service_config(config: "ServiceConfig") -> List[Diagnostic]:
    """Lint a :class:`~repro.service.config.ServiceConfig` for field
    *combinations* that admit traffic the server cannot actually serve.

    ``ServiceConfig.__post_init__`` already rejects nonsense values
    (negative deadlines, zero shards); this pass flags the legal-but-
    self-defeating ones an operator typically discovers under load.
    """
    diagnostics: List[Diagnostic] = []

    def finding(severity: str, message: str, code: str) -> None:
        diagnostics.append(
            Diagnostic(severity, message, code=code, pass_name=SERVICE_PASS_NAME)
        )

    # -- deadlines ----------------------------------------------------------
    if (
        config.expected_step_latency_s is not None
        and config.default_deadline_s < config.expected_step_latency_s
    ):
        finding(
            "error",
            f"default_deadline_s={config.default_deadline_s} is below the "
            f"observed median step latency "
            f"({config.expected_step_latency_s}s): the typical request "
            "times out by construction; raise the deadline or shrink the "
            "workload (fewer particles, smaller edits)",
            "service-deadline-too-short",
        )

    # -- quotas -------------------------------------------------------------
    if config.max_sessions_per_tenant == 0:
        finding(
            "warning",
            "max_sessions_per_tenant=0 rejects every create with "
            "quota_exceeded: no tenant can ever open a session",
            "service-zero-quota",
        )
    if config.max_inflight_per_tenant == 0:
        finding(
            "warning",
            "max_inflight_per_tenant=0 rejects every mutating request with "
            "quota_exceeded: sessions can be created but never used",
            "service-zero-quota",
        )

    # -- backpressure -------------------------------------------------------
    if config.queue_depth == 0:
        finding(
            "warning",
            "queue_depth=0 makes the per-shard queue unbounded: overload "
            "buffers requests without limit instead of rejecting with "
            "retry-after, and the shedding rung never engages; set a "
            "finite depth",
            "service-unbounded-queue",
        )
    elif config.default_priority >= config.shed_protect_priority:
        finding(
            "warning",
            f"default_priority={config.default_priority} >= "
            f"shed_protect_priority={config.shed_protect_priority}: every "
            "unlisted tenant is shed-protected, so the shedding rung of "
            "the degradation ladder never sheds anyone",
            "service-shed-noop",
        )

    # -- durability ---------------------------------------------------------
    if config.store_dir is None:
        finding(
            "info",
            "store_dir=None runs the service fully in-memory: no crash "
            "recovery, and posterior reads cannot degrade to a snapshot "
            "when a worker wedges",
            "service-no-durability",
        )
    elif config.checkpoint_keep < 2:
        finding(
            "warning",
            f"checkpoint_keep={config.checkpoint_keep} retains a single "
            "commit snapshot per session: a crash mid-write can tear the "
            "only copy and lose the session; keep at least 2",
            "service-checkpoint-keep",
        )

    # -- scale-out ----------------------------------------------------------
    cpus = os.cpu_count() or 1
    if config.shard_processes > cpus:
        finding(
            "warning",
            f"shard_processes={config.shard_processes} exceeds the "
            f"{cpus} CPU(s) on this host: shard worker processes will "
            "time-slice one another and the scaling series goes *down*, "
            "not up; cap shard_processes at the core count",
            "service-shards-exceed-cpus",
        )
    if config.replicate and config.store_dir is None:
        finding(
            "error",
            "replicate=True without store_dir: replica refresh replays "
            "commit snapshots from the durable store, so with no "
            "checkpoint directory there is nothing to replicate *from* "
            "and a shard-process kill loses every session it owned; set "
            "store_dir (failover recovers from fsynced checkpoints)",
            "service-replication-without-checkpoint-dir",
        )
    if config.collection == "columnar":
        finding(
            "info",
            "collection='columnar' backs served sessions with columnar "
            "particle collections; programs in the structured language "
            "spill to the object path before any randomness is consumed, "
            "so results are byte-identical to collection='object' — but "
            "only models the columnar runtime fully supports see the "
            "vectorized speedup",
            "service-columnar-unsupported-model",
        )
    return diagnostics
