"""Static validation of trace correspondences (pass 1).

A correspondence is only useful when it is an injective map between
addresses that actually occur in both programs and whose distributions
have compatible supports — the translator reuses a value *only* when the
supports are exactly equal (Section 5.1), so a pair like ``flip ↔
gauss`` silently degenerates to resampling everything.  This pass checks
those properties before any inference runs:

* **bijection consistency** — ``backward(forward(a)) == a`` for every
  observed address; violations break the backward kernel (Eq. 7);
* **injectivity** — two target addresses must not map to the same source
  address (intensional maps can violate this even though
  ``Correspondence.from_dict`` rejects non-injective dicts);
* **existence** — mapped addresses must occur in the respective
  programs; a pair relating addresses that occur in *neither* program is
  certainly a typo;
* **support compatibility** — an address pair whose observed supports
  are never equal can never reuse a value (disjoint support *types*,
  e.g. ``BinarySupport`` vs ``RealLine``, are reported as errors; equal
  types with different parameters as warnings);
* **coverage** — unmapped target addresses and dead source addresses
  are reported as ``info`` (often deliberate, e.g. the burglary
  refinement leaves ``earthquake`` unmapped by design);
* **picklability** — an intensional map built from a lambda or closure
  works in-process but cannot ship to the ``process`` executor; reported
  as a warning here and escalated by the config lint when a process
  backend is actually configured.

Address profiles come from exhaustive trace enumeration when the model
is finite and discrete (:func:`repro.core.enumerate.enumerate_traces`),
and from seeded forward sampling otherwise; lang programs can
additionally be profiled statically via
:func:`repro.lang.analysis.random_expressions`
(:func:`validate_label_map`).
"""

from __future__ import annotations

import io
import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..core.address import Address
from ..core.enumerate import enumerate_traces
from ..core.model import Model
from .diagnostics import Diagnostic

__all__ = [
    "AddressProfile",
    "profile_model",
    "validate_correspondence",
    "validate_label_map",
    "validate_translator",
]

PASS_NAME = "correspondence"

#: Default number of forward simulations when enumeration is impossible.
DEFAULT_SAMPLES = 24

#: Give up on exhaustive enumeration beyond this many traces and fall
#: back to sampling (keeps pre-flight validation bounded).
MAX_ENUMERATED_TRACES = 512


@dataclass
class AddressProfile:
    """Observed address -> distribution supports for one model.

    ``complete`` is True when the profile came from exhaustive
    enumeration: an address absent from a complete profile provably
    never occurs in the program, while absence from a sampled profile is
    only evidence.
    """

    name: str
    #: Address -> distinct supports observed at that address.
    supports: Dict[Address, List[Any]] = field(default_factory=dict)
    complete: bool = False
    #: Trace executions that raised (sampling mode only).
    failures: int = 0
    #: How the profile was produced: "static" (abstract interpretation),
    #: "enumerate" (exhaustive trace enumeration), or "sample" (seeded
    #: forward simulation).  Empty on hand-built profiles.
    method: str = ""

    def record(self, address: Address, dist: Any) -> None:
        supports = self.supports.setdefault(address, [])
        try:
            support = dist.support()
        except Exception:  # pragma: no cover - defensive
            return
        if support not in supports:
            supports.append(support)

    def __contains__(self, address: Address) -> bool:
        return address in self.supports


def profile_model(
    model: Model,
    rng: Optional[np.random.Generator] = None,
    num_samples: int = DEFAULT_SAMPLES,
    method: str = "auto",
) -> AddressProfile:
    """Collect the address space of ``model``.

    ``method`` selects the strategy:

    * ``"auto"`` (default) — static abstract interpretation first
      (:func:`repro.analysis.absint.analyze_model`); when the analyzer
      closes the model the profile is deterministic and consumes **no**
      randomness.  Models the analyzer cannot close (value-dependent
      loop bounds, dynamic addresses, ...) fall back to the runtime
      strategies below.
    * ``"static"`` — abstract interpretation only; raises
      :class:`ValueError` when the model resists analysis.
    * ``"runtime"`` — exhaustive enumeration when the model is finite
      and discrete, else ``num_samples`` forward simulations seeded
      from ``rng`` (a fixed seed when omitted, so validation is
      deterministic).  This is the pre-static behaviour.
    * ``"sample"`` — forward simulation only (benchmark baseline).
    """
    if method not in ("auto", "static", "runtime", "sample"):
        raise ValueError(
            f"unknown profiling method {method!r}; choose from "
            "'auto', 'static', 'runtime', 'sample'"
        )
    if method in ("auto", "static"):
        from .absint import analyze_model

        static = analyze_model(model)
        if static.complete:
            profile = static.to_address_profile()
            profile.method = "static"
            return profile
        if method == "static":
            raise ValueError(
                f"static analysis of {profile_name(model)!r} is incomplete: "
                f"{static.failure}"
            )
    profile = AddressProfile(name=profile_name(model))
    if method == "sample":
        return _profile_by_sampling(profile, model, rng, num_samples)
    try:
        count = 0
        enumerated: List[Any] = []
        for trace in enumerate_traces(model):
            count += 1
            if count > MAX_ENUMERATED_TRACES:
                raise ValueError("enumeration budget exceeded")
            enumerated.append(trace)
        for trace in enumerated:
            for choice in trace.choices():
                profile.record(choice.address, choice.dist)
        profile.complete = True
        profile.method = "enumerate"
        return profile
    except ValueError:
        # Continuous/unbounded model (or budget blown): sample instead.
        pass
    return _profile_by_sampling(profile, model, rng, num_samples)


def profile_name(model: Model) -> str:
    return getattr(model, "name", "model")


def _profile_by_sampling(
    profile: AddressProfile,
    model: Model,
    rng: Optional[np.random.Generator],
    num_samples: int,
) -> AddressProfile:
    rng = rng if rng is not None else np.random.default_rng(0)
    profile.method = "sample"
    for _ in range(max(1, num_samples)):
        try:
            trace = model.simulate(rng)
        except Exception:
            profile.failures += 1
            continue
        for choice in trace.choices():
            profile.record(choice.address, choice.dist)
    return profile


def _supports_compatible(
    q_supports: List[Any], p_supports: List[Any]
) -> Tuple[bool, bool]:
    """(ever equal, types overlap) for two observed-support lists."""
    ever_equal = any(q == p for q in q_supports for p in p_supports)
    types_overlap = bool(
        {type(q) for q in q_supports} & {type(p) for p in p_supports}
    )
    return ever_equal, types_overlap


def _check_picklable(correspondence: Any) -> Optional[Diagnostic]:
    try:
        pickle.dump(correspondence, io.BytesIO())
        return None
    except Exception as error:
        return Diagnostic(
            "warning",
            f"correspondence {correspondence!r} is not picklable ({error}); "
            "the 'process' executor cannot ship it to workers — use "
            "module-level functions instead of lambdas/closures",
            code="corr-not-picklable",
            pass_name=PASS_NAME,
        )


def validate_correspondence(
    source: Model,
    target: Model,
    correspondence: Any,
    *,
    rng: Optional[np.random.Generator] = None,
    num_samples: int = DEFAULT_SAMPLES,
) -> List[Diagnostic]:
    """Validate ``correspondence`` against the two models' address spaces.

    ``source`` is the old program ``P`` (the forward map's codomain),
    ``target`` the new program ``Q`` (its domain), matching
    :class:`~repro.core.corr_translator.CorrespondenceTranslator`.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    p_profile = profile_model(source, rng, num_samples)
    q_profile = profile_model(target, rng, num_samples)
    diagnostics: List[Diagnostic] = []

    def finding(severity: str, message: str, code: str, address: Any = None) -> None:
        diagnostics.append(
            Diagnostic(
                severity,
                message,
                code=code,
                pass_name=PASS_NAME,
                address=None if address is None else repr(address),
            )
        )

    if not p_profile.supports and not q_profile.supports:
        finding(
            "warning",
            "could not profile either model (every execution failed); "
            "correspondence left unvalidated",
            "corr-unprofiled",
        )
        return diagnostics

    # -- forward map over the observed target address space -----------------
    image: Dict[Address, Address] = {}
    for q_address in sorted(q_profile.supports, key=repr):
        p_address = correspondence.forward(q_address)
        if p_address is None:
            finding(
                "info",
                f"target address {q_address!r} is unmapped; its value is "
                "sampled fresh on every translation",
                "corr-unmapped-target",
                q_address,
            )
            continue
        roundtrip = correspondence.backward(p_address)
        if roundtrip != q_address:
            finding(
                "error",
                f"correspondence is not a consistent bijection: "
                f"forward({q_address!r}) = {p_address!r} but "
                f"backward({p_address!r}) = {roundtrip!r}",
                "corr-not-bijective",
                q_address,
            )
        if p_address in image and image[p_address] != q_address:
            finding(
                "error",
                f"correspondence is not injective: {p_address!r} is the image "
                f"of both {image[p_address]!r} and {q_address!r}",
                "corr-not-injective",
                p_address,
            )
        image.setdefault(p_address, q_address)
        if p_address not in p_profile:
            severity = "error" if p_profile.complete else "warning"
            qualifier = "never occurs" if p_profile.complete else "was never observed"
            finding(
                severity,
                f"forward({q_address!r}) = {p_address!r}, but that address "
                f"{qualifier} in source program "
                f"{p_profile.name!r}",
                "corr-missing-source",
                p_address,
            )
            continue
        ever_equal, types_overlap = _supports_compatible(
            q_profile.supports[q_address], p_profile.supports[p_address]
        )
        if not ever_equal:
            if not types_overlap:
                finding(
                    "error",
                    f"support mismatch: {q_address!r} "
                    f"({q_profile.supports[q_address]}) corresponds to "
                    f"{p_address!r} ({p_profile.supports[p_address]}); the "
                    "supports can never be equal, so no value is ever reused",
                    "corr-support-mismatch",
                    q_address,
                )
            else:
                finding(
                    "warning",
                    f"supports at {q_address!r} and {p_address!r} were never "
                    f"observed equal ({q_profile.supports[q_address]} vs "
                    f"{p_profile.supports[p_address]}); values are resampled "
                    "whenever they differ",
                    "corr-support-params",
                    q_address,
                )

    # -- explicit pairs the profiles did not cover --------------------------
    known = correspondence.known_pairs()
    for q_address, p_address in known or []:
        q_missing = q_address not in q_profile
        p_missing = p_address not in p_profile
        if q_missing and p_missing and q_profile.complete and p_profile.complete:
            finding(
                "error",
                f"correspondence relates {q_address!r} to {p_address!r}, but "
                "neither address occurs in either program",
                "corr-unknown-pair",
                q_address,
            )
        elif q_missing and q_profile.complete:
            finding(
                "info",
                f"correspondence maps {q_address!r}, which never occurs in "
                f"target program {q_profile.name!r} (dead pair)",
                "corr-dead-pair",
                q_address,
            )

    # -- backward coverage of the source address space ----------------------
    for p_address in sorted(p_profile.supports, key=repr):
        q_address = correspondence.backward(p_address)
        if q_address is None:
            finding(
                "info",
                f"source address {p_address!r} is outside the correspondence; "
                "its value is discarded by translation",
                "corr-dead-source",
                p_address,
            )
        elif q_address not in q_profile and q_profile.complete:
            finding(
                "warning",
                f"backward({p_address!r}) = {q_address!r}, but that address "
                f"never occurs in target program {q_profile.name!r}",
                "corr-missing-target",
                q_address,
            )

    pickling = _check_picklable(correspondence)
    if pickling is not None:
        diagnostics.append(pickling)
    return diagnostics


def validate_label_map(
    old_program: Any, new_program: Any, label_map: Dict[str, str]
) -> List[Diagnostic]:
    """Statically validate a new-label -> old-label map for lang programs.

    The static analogue of :func:`validate_correspondence`: label
    existence and injectivity are checked against the programs' random
    expressions (:func:`repro.lang.analysis.random_expressions`), and
    support compatibility against the random-expression *kinds* (a
    ``flip`` label mapped to a ``gauss`` label can never reuse a value).
    """
    from ..lang.analysis import random_expressions

    diagnostics: List[Diagnostic] = []
    old_by_label = {node.label: node for node in random_expressions(old_program)}
    new_by_label = {node.label: node for node in random_expressions(new_program)}
    image: Dict[str, str] = {}
    for new_label, old_label in sorted(label_map.items()):
        new_node = new_by_label.get(new_label)
        old_node = old_by_label.get(old_label)
        if new_node is None and old_node is None:
            diagnostics.append(
                Diagnostic(
                    "error",
                    f"label map relates {new_label!r} to {old_label!r}, but "
                    "neither label occurs in either program",
                    code="corr-unknown-pair",
                    pass_name=PASS_NAME,
                    address=new_label,
                )
            )
            continue
        if new_node is None:
            diagnostics.append(
                Diagnostic(
                    "warning",
                    f"label {new_label!r} does not occur in the new program",
                    code="corr-dead-pair",
                    pass_name=PASS_NAME,
                    address=new_label,
                )
            )
        if old_node is None:
            diagnostics.append(
                Diagnostic(
                    "error",
                    f"label map sends {new_label!r} to {old_label!r}, which "
                    "does not occur in the old program",
                    code="corr-missing-source",
                    pass_name=PASS_NAME,
                    address=old_label,
                )
            )
        if old_label in image:
            diagnostics.append(
                Diagnostic(
                    "error",
                    f"label map is not injective: {old_label!r} is the image "
                    f"of both {image[old_label]!r} and {new_label!r}",
                    code="corr-not-injective",
                    pass_name=PASS_NAME,
                    address=old_label,
                )
            )
        image.setdefault(old_label, new_label)
        if new_node is not None and old_node is not None:
            if type(new_node) is not type(old_node):
                diagnostics.append(
                    Diagnostic(
                        "error",
                        f"support mismatch: {new_label!r} is a "
                        f"{type(new_node).__name__} but {old_label!r} is a "
                        f"{type(old_node).__name__}; corresponding values can "
                        "never be reused",
                        code="corr-support-mismatch",
                        pass_name=PASS_NAME,
                        address=new_label,
                    )
                )
    for new_label in sorted(set(new_by_label) - set(label_map)):
        diagnostics.append(
            Diagnostic(
                "info",
                f"new-program label {new_label!r} is unmapped; its choices "
                "are sampled fresh on every translation",
                code="corr-unmapped-target",
                pass_name=PASS_NAME,
                address=new_label,
            )
        )
    return diagnostics


def validate_translator(
    translator: Any,
    *,
    rng: Optional[np.random.Generator] = None,
    num_samples: int = DEFAULT_SAMPLES,
) -> List[Diagnostic]:
    """Validate whatever correspondence a translator carries.

    Dispatches on shape: a
    :class:`~repro.core.corr_translator.CorrespondenceTranslator` (has
    ``source``/``target``/``correspondence``) gets the full model-backed
    validation; a :class:`~repro.graph.translate.GraphTranslator` (has
    ``source_program``/``target_program``) gets the static edit check;
    anything else produces no findings.
    """
    correspondence = getattr(translator, "correspondence", None)
    source = getattr(translator, "source", None)
    target = getattr(translator, "target", None)
    if (
        correspondence is not None
        and isinstance(source, Model)
        and isinstance(target, Model)
    ):
        return validate_correspondence(
            source, target, correspondence, rng=rng, num_samples=num_samples
        )
    from ..lang.ast import Stmt

    if isinstance(source, Stmt) and isinstance(target, Stmt):
        # GraphTranslator: the programs themselves are the subject; run
        # the static half of the edit-soundness pass (the runtime
        # cross-check needs model executions and stays out of pre-flight).
        from .edits import check_edit

        return check_edit(source, target, runtime_check=False)
    return []
