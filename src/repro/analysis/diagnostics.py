"""Shared diagnostic model for the static-analysis framework.

Every analysis pass in :mod:`repro.analysis` reports findings as
:class:`Diagnostic` values — the same type :func:`repro.lang.check.check_program`
has always produced, extended with optional structured fields:

* ``code`` — a stable, kebab-case rule identifier (``corr-not-injective``,
  ``edit-stale-skip``, ...) that tools can match on without parsing the
  message;
* ``pass_name`` — which pass produced the finding;
* ``target`` — what was analyzed (a program name, a correspondence, a
  config);
* ``address`` — the specific address/label/field the finding anchors to.

Construction stays positionally compatible with the historical two-field
form — ``Diagnostic("error", "message")`` — and ``str()`` still begins
with ``"{severity}: {message}"``, so the pre-framework callers and tests
keep working unchanged.

Severities form a total order (:data:`SEVERITIES`, ``info < warning <
error``): ``error`` findings are guaranteed failures (the run cannot be
correct), ``warning`` findings are probable mistakes or performance
hazards, ``info`` findings are observations (e.g. an address the
correspondence leaves unmapped, which is often deliberate).

This module depends only on the standard library, so any subsystem —
including :mod:`repro.lang`, which the concrete passes themselves import
— can use the diagnostic types without import cycles.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "SEVERITIES",
    "Diagnostic",
    "Pass",
    "AnalysisResult",
    "severity_rank",
    "max_severity",
]

#: Recognized severities, least to most severe.
SEVERITIES: Tuple[str, ...] = ("info", "warning", "error")

_RANK = {name: rank for rank, name in enumerate(SEVERITIES)}


def severity_rank(severity: str) -> int:
    """Total order over severities (``info`` = 0 < ``warning`` < ``error``)."""
    try:
        return _RANK[severity]
    except KeyError:
        raise ValueError(
            f"unknown severity {severity!r}; choose from {list(SEVERITIES)}"
        ) from None


def max_severity(diagnostics: Iterable["Diagnostic"]) -> Optional[str]:
    """The most severe severity present, or None for an empty iterable."""
    best: Optional[str] = None
    for diagnostic in diagnostics:
        if best is None or severity_rank(diagnostic.severity) > severity_rank(best):
            best = diagnostic.severity
    return best


@dataclass(frozen=True)
class Diagnostic:
    """One finding: ``severity`` is ``"error"``, ``"warning"``, or ``"info"``.

    The first two fields are the historical surface
    (``Diagnostic("error", "...")``); the rest are optional structured
    metadata added by the analysis framework.
    """

    severity: str
    message: str
    code: Optional[str] = None
    pass_name: Optional[str] = None
    target: Optional[str] = None
    address: Optional[str] = None

    def __str__(self) -> str:
        # The historical rendering ("severity: message") comes first so
        # text matching on prefixes keeps working; the rule code, when
        # present, is appended where no pre-framework caller looks.
        base = f"{self.severity}: {self.message}"
        return f"{base} [{self.code}]" if self.code else base

    def with_context(
        self,
        pass_name: Optional[str] = None,
        target: Optional[str] = None,
    ) -> "Diagnostic":
        """A copy with ``pass_name``/``target`` filled in where unset."""
        if (pass_name is None or self.pass_name is not None) and (
            target is None or self.target is not None
        ):
            return self
        return Diagnostic(
            severity=self.severity,
            message=self.message,
            code=self.code,
            pass_name=self.pass_name if self.pass_name is not None else pass_name,
            target=self.target if self.target is not None else target,
            address=self.address,
        )

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready dict (None-valued fields omitted)."""
        return {key: value for key, value in asdict(self).items() if value is not None}


class Pass(ABC):
    """One static-analysis pass: a named producer of diagnostics.

    Concrete passes wrap the module-level check functions of
    :mod:`repro.analysis` so they can be composed, listed, and reported
    uniformly (the CLI and the pre-flight hook work in terms of
    passes).  ``run`` receives the subject to analyze and returns the
    findings; the framework stamps each finding with the pass name.
    """

    #: Stable pass identifier (``correspondence``, ``edits``, ...).
    name: str = "abstract"
    #: One-line human description, shown by ``repro lint`` documentation.
    description: str = ""

    @abstractmethod
    def run(self, subject: Any) -> List[Diagnostic]:
        """Analyze ``subject``; return findings (possibly empty)."""

    def __call__(self, subject: Any) -> List[Diagnostic]:
        return [d.with_context(pass_name=self.name) for d in self.run(subject)]

    def __repr__(self) -> str:
        return f"<Pass {self.name}>"


@dataclass
class AnalysisResult:
    """Aggregated findings from one or more passes over one or more targets."""

    diagnostics: List[Diagnostic] = field(default_factory=list)

    def extend(
        self,
        diagnostics: Iterable[Diagnostic],
        pass_name: Optional[str] = None,
        target: Optional[str] = None,
    ) -> None:
        self.diagnostics.extend(
            d.with_context(pass_name=pass_name, target=target) for d in diagnostics
        )

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    @property
    def has_errors(self) -> bool:
        return any(d.severity == "error" for d in self.diagnostics)

    def counts(self) -> Dict[str, int]:
        counts = {name: 0 for name in SEVERITIES}
        for diagnostic in self.diagnostics:
            counts[diagnostic.severity] = counts.get(diagnostic.severity, 0) + 1
        return counts

    def sorted(self) -> List[Diagnostic]:
        """Findings ordered most-severe first, stable within a severity."""
        return sorted(
            self.diagnostics, key=lambda d: -severity_rank(d.severity)
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready report (the ``repro lint --format json`` payload)."""
        return {
            "version": 1,
            "summary": self.counts(),
            "diagnostics": [d.to_dict() for d in self.sorted()],
        }


def _stamped(
    diagnostics: Sequence[Diagnostic], pass_name: str
) -> List[Diagnostic]:
    """Internal helper: stamp a pass name onto bare diagnostics."""
    return [d.with_context(pass_name=pass_name) for d in diagnostics]
