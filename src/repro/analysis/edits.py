"""Static edit-soundness analysis for lang-program edits (pass 2).

Section 6's change-propagation engine promises to re-execute exactly the
statements an edit can reach.  This pass derives that reachable set
*statically* — per-statement read/write sets plus a forward taint pass
over the top-level statement list — and cross-checks it against the
engine's runtime behaviour:

* ``must_visit`` — statements that are new or textually changed by the
  edit (not matched by the LCS alignment of :mod:`repro.graph.diff`).
  The engine can never legally skip these: a skipped ``must_visit``
  statement means a stale record survived into the new trace
  (**error**, ``edit-stale-skip``).
* ``may_visit`` — the transitive closure of the edit under
  read-after-write dependencies: a statement is in ``may_visit`` when it
  is edited, or reads a variable some earlier ``may_visit`` statement
  (or a deleted statement) writes.  Runtime visits outside this set are
  sound — re-sampling is always correct (Lemma 2) — but mean the engine
  lost reuse it was entitled to, typically because positional alignment
  broke on an insertion (**info**, ``edit-overpropagation``).
* Statements inside ``may_visit`` that the engine *skipped* are the
  value-cutoff working as intended (a rewritten variable kept its old
  value), exactly the behaviour Figure 7 celebrates — no finding.

The runtime half executes the old program once, propagates the new one
against it, and recovers the per-statement visit vector from record
identity (:func:`repro.graph.engine.visited_top_level`).  Tests can
inject a fabricated visit vector through the ``visited`` parameter to
prove the detector fires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Set

import numpy as np

from ..lang.analysis import (
    assigned_variables,
    free_variables,
    random_expressions,
    walk,
)
from ..lang.ast import Observe, Stmt
from .diagnostics import Diagnostic

__all__ = [
    "StatementEffects",
    "EditAnalysis",
    "statement_effects",
    "invalidation_sets",
    "check_edit",
]

PASS_NAME = "edits"


@dataclass(frozen=True)
class StatementEffects:
    """Static read/write summary of one top-level statement."""

    index: int
    stmt: Stmt
    #: Variables whose incoming value the statement may read.
    reads: FrozenSet[str]
    #: Variables the statement may write.
    writes: FrozenSet[str]
    has_random: bool
    has_observe: bool

    def describe(self) -> str:
        reads = ", ".join(sorted(self.reads)) or "-"
        writes = ", ".join(sorted(self.writes)) or "-"
        return f"stmt {self.index}: reads {{{reads}}} writes {{{writes}}}"


def _iter_statements(stmt: Stmt):
    from ..graph.diff import flatten_seq

    return flatten_seq(stmt)


def statement_effects(program: Stmt) -> List[StatementEffects]:
    """Read/write sets for each top-level statement of ``program``."""
    effects: List[StatementEffects] = []
    for index, stmt in enumerate(_iter_statements(program)):
        effects.append(
            StatementEffects(
                index=index,
                stmt=stmt,
                reads=frozenset(free_variables(stmt)),
                writes=frozenset(assigned_variables(stmt)),
                has_random=bool(random_expressions(stmt)),
                has_observe=any(isinstance(n, Observe) for n in walk(stmt)),
            )
        )
    return effects


@dataclass
class EditAnalysis:
    """The statically derived structure of one program edit."""

    old_statements: List[Stmt]
    new_statements: List[Stmt]
    effects: List[StatementEffects]
    #: new-statement index -> matched old-statement index (LCS pairs).
    matched: Dict[int, int]
    #: Old statements deleted (or rewritten) by the edit.
    removed: Set[int]
    #: New statements that are themselves the edit; skipping any of
    #: these at runtime is unsound.
    must_visit: Set[int] = field(default_factory=set)
    #: Statements the edit can invalidate transitively; the engine
    #: should never need to look outside this set.
    may_visit: Set[int] = field(default_factory=set)
    #: Variables tainted by the edit after the final statement.
    dirty_variables: Set[str] = field(default_factory=set)


def invalidation_sets(old_program: Stmt, new_program: Stmt) -> EditAnalysis:
    """Statically derive the statement sets an edit can invalidate.

    Alignment reuses the LCS-over-equality-modulo-labels machinery that
    :func:`repro.graph.diff.align_labels` uses to derive the syntactic
    correspondence, so the static expectation and the runtime
    correspondence come from the same notion of "unchanged statement".
    """
    from ..graph.diff import lcs_pairs

    old_statements = _iter_statements(old_program)
    new_statements = _iter_statements(new_program)
    pairs = lcs_pairs(old_statements, new_statements)
    matched = {new_index: old_index for old_index, new_index in pairs}
    removed = set(range(len(old_statements))) - {i for i, _j in pairs}
    analysis = EditAnalysis(
        old_statements=old_statements,
        new_statements=new_statements,
        effects=statement_effects(new_program),
        matched=matched,
        removed=removed,
    )
    analysis.must_visit = set(range(len(new_statements))) - set(matched)

    # Deleted statements taint the variables they wrote: a reader of
    # such a variable downstream may now see a different value.
    dirty: Set[str] = set()
    for old_index in removed:
        dirty |= assigned_variables(old_statements[old_index])
    for index, effect in enumerate(analysis.effects):
        if index in analysis.must_visit or (effect.reads & dirty):
            analysis.may_visit.add(index)
            dirty |= effect.writes
    analysis.dirty_variables = dirty
    return analysis


def check_edit(
    old_program: Stmt,
    new_program: Stmt,
    *,
    env: Optional[Dict[str, Any]] = None,
    rng: Optional[np.random.Generator] = None,
    visited: Optional[Sequence[bool]] = None,
    runtime_check: bool = True,
    derivation: Optional[Any] = None,
) -> List[Diagnostic]:
    """Cross-check static invalidation sets against runtime propagation.

    Runs the old program once, propagates the edited program against the
    resulting trace, and compares the engine's per-statement visit
    vector with the statically derived ``must_visit``/``may_visit``
    sets.  ``visited`` overrides the runtime vector (used by the seeded
    stale-trace tests); ``runtime_check=False`` stops after the static
    half (used by the inference pre-flight, which must not execute
    models).  ``derivation`` optionally names the
    :class:`repro.derive.Derivation` whose map the edit was checked
    under (``repro lint --derive``): stale-skip and overpropagation
    findings then cite the derivation report, since a derived rename can
    shift which statements align.
    """
    analysis = invalidation_sets(old_program, new_program)
    diagnostics: List[Diagnostic] = []
    derivation_note = (
        f" [under derived correspondence: {derivation.report.summary()}]"
        if derivation is not None
        else ""
    )

    def finding(severity: str, message: str, code: str, index: int) -> None:
        if code in ("edit-stale-skip", "edit-overpropagation"):
            message += derivation_note
        diagnostics.append(
            Diagnostic(
                severity,
                message,
                code=code,
                pass_name=PASS_NAME,
                address=f"statement {index}",
            )
        )

    # Static sanity: a pure deletion/rewrite that taints the return
    # value without any new statement re-observing it is worth knowing
    # about, but is not on its own a defect — leave it to the runtime
    # comparison below.
    if not runtime_check and visited is None:
        return diagnostics

    if visited is None:
        from ..graph.engine import propagate, run_initial, visited_top_level

        rng = rng if rng is not None else np.random.default_rng(0)
        try:
            old_trace = run_initial(old_program, rng, env)
            result = propagate(new_program, old_trace, rng, env)
        except Exception as error:
            diagnostics.append(
                Diagnostic(
                    "warning",
                    f"could not execute the edit for the runtime cross-check "
                    f"({type(error).__name__}: {error}); only static analysis "
                    "was performed",
                    code="edit-runtime-failed",
                    pass_name=PASS_NAME,
                )
            )
            return diagnostics
        visited = visited_top_level(new_program, old_trace, result.trace)

    if len(visited) != len(analysis.new_statements):
        diagnostics.append(
            Diagnostic(
                "error",
                f"runtime visit vector has {len(visited)} entries but the "
                f"edited program has {len(analysis.new_statements)} top-level "
                "statements",
                code="edit-visit-shape",
                pass_name=PASS_NAME,
            )
        )
        return diagnostics

    for index, was_visited in enumerate(visited):
        stmt = analysis.new_statements[index]
        if not was_visited and index in analysis.must_visit:
            finding(
                "error",
                f"statement {index} ({type(stmt).__name__}) is new or changed "
                "by the edit but was not re-executed by propagation; its "
                "record is stale and downstream reads see pre-edit values",
                "edit-stale-skip",
                index,
            )
        elif was_visited and index not in analysis.may_visit:
            finding(
                "info",
                f"propagation re-executed statement {index} "
                f"({type(stmt).__name__}), which the edit cannot invalidate "
                "(no read-after-write path from any changed statement); reuse "
                "was lost, typically to positional misalignment",
                "edit-overpropagation",
                index,
            )
    return diagnostics
