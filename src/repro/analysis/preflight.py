"""The opt-in inference pre-flight (``InferenceConfig(validate=...)``).

:func:`repro.core.smc.infer` and ``infer_sequence`` call
:func:`preflight_inference` exactly once per call — never per particle
or per step — when the config's ``validate`` mode is not ``"off"``.  The
pre-flight runs the config lint against the translator(s) and validates
whatever correspondence each translator carries, with a deliberately
small sampling budget: the point is to catch a doomed run in
milliseconds, not to be exhaustive.

``apply_validation_mode`` turns the findings into behaviour:
``"warn"`` reports through :mod:`warnings` (one message listing every
finding); ``"error"`` additionally raises
:class:`repro.errors.ValidationError` when any finding has error
severity.
"""

from __future__ import annotations

import warnings
from typing import Any, List, Optional, Sequence

import numpy as np

from ..errors import ValidationError
from .diagnostics import Diagnostic, severity_rank

__all__ = ["preflight_inference", "apply_validation_mode"]

#: Sampling budget for translator validation during pre-flight: small,
#: because this runs inside ``infer`` where latency matters.
PREFLIGHT_SAMPLES = 8


def preflight_inference(
    translators: Sequence[Any],
    config: Any,
    *,
    rng: Optional[np.random.Generator] = None,
) -> List[Diagnostic]:
    """Validate a config and its translators before inference starts.

    Deduplicates findings across translators (a sequence usually reuses
    one translator shape many times, and repeating identical findings
    per step would drown the signal).
    """
    from .config_lint import lint_config
    from .correspondence import validate_translator

    rng = rng if rng is not None else np.random.default_rng(0)
    diagnostics: List[Diagnostic] = []
    seen = set()

    def add(batch: List[Diagnostic]) -> None:
        for diagnostic in batch:
            key = (diagnostic.code, diagnostic.message)
            if key not in seen:
                seen.add(key)
                diagnostics.append(diagnostic)

    first = translators[0] if translators else None
    add(lint_config(config, first))
    for translator in translators:
        add(validate_translator(translator, rng=rng, num_samples=PREFLIGHT_SAMPLES))
    if getattr(config, "collection", None) == "columnar":
        # The run asked for the columnar fast path: surface the static
        # pre-flight's predicted spill reasons (info severity — spilling
        # to the object path is routing, not failure) so a user who
        # expected columnar speed learns *before* the run why each step
        # will take the object path.
        from .static_profile import columnar_plan_lint

        for translator in translators:
            try:
                add(columnar_plan_lint(translator))
            except Exception:  # pragma: no cover - analysis must not
                pass  # block inference
    return diagnostics


def apply_validation_mode(mode: str, diagnostics: List[Diagnostic]) -> None:
    """Act on pre-flight findings per the config's ``validate`` mode."""
    if mode == "off" or not diagnostics:
        return
    ordered = sorted(
        diagnostics, key=lambda d: severity_rank(d.severity), reverse=True
    )
    errors = [d for d in ordered if d.severity == "error"]
    if mode == "error" and errors:
        raise ValidationError(
            f"inference pre-flight found {len(errors)} error(s)", errors
        )
    warnings.warn(
        "inference pre-flight findings: "
        + "; ".join(str(d) for d in ordered),
        stacklevel=3,
    )
