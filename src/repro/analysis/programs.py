"""Extended program checker for structured-language programs (pass 4).

Folds the historical :func:`repro.lang.check.check_program` and
:func:`repro.lang.types.check_kinds` into the analysis framework and
adds three rules that need more context than either provides:

* **unused variables** (``unused-variable``, info) — a variable is
  assigned but its value is never read anywhere in the program.  Figure
  5's programs deliberately carry such dead assignments, so this is
  informational, not a defect.
* **observes on statically-known outcomes** (``observe-vacuous``
  warning / ``observe-impossible`` error) — when a distribution's
  parameters and the observed value all fold to constants, the
  conditioning is either a no-op (``observe(flip(1) == 1)``) or rules
  out every trace (``observe(flip(1) == 0)``, ``observe(flip(p) == 2)``,
  an out-of-range ``uniform`` observation).  The impossible cases give
  the run ``-inf`` log weight on *every* execution.
* **parameter ranges through constant propagation** (``param-range``,
  error) — a straight-line pass tracks variables with
  statically-constant values and substitutes them into distribution
  parameters before folding, so ``p = 3; x = flip(p / 2)`` is caught
  even though ``check_program``'s purely syntactic fold cannot see
  through the variable.  Bindings are invalidated conservatively at
  branches (kept only when both branches agree) and loops (anything the
  body assigns is dropped).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from ..lang.analysis import assigned_variables, walk
from ..lang.ast import (
    ArrayExpr,
    Assign,
    Binary,
    Call,
    Const,
    Expr,
    FlipExpr,
    For,
    FuncDef,
    GaussExpr,
    If,
    Index,
    IndexAssign,
    Observe,
    RandomExpr,
    Return,
    Seq,
    Skip,
    Stmt,
    Ternary,
    Unary,
    UniformExpr,
    Var,
    While,
)
from ..lang.check import check_program
from ..lang.optimize import fold_expr
from ..lang.types import check_kinds
from .diagnostics import Diagnostic

__all__ = ["extended_check_program"]

PASS_NAME = "programs"

#: Variable -> statically-known constant value.
_ConstEnv = Dict[str, float]


def _substitute(expr: Expr, env: _ConstEnv) -> Expr:
    """Replace known-constant variables with their values, recursively."""
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, Var):
        if expr.name in env:
            return Const(env[expr.name])
        return expr
    if isinstance(expr, Unary):
        return Unary(expr.op, _substitute(expr.operand, env))
    if isinstance(expr, Binary):
        return Binary(expr.op, _substitute(expr.left, env), _substitute(expr.right, env))
    if isinstance(expr, Ternary):
        return Ternary(
            _substitute(expr.cond, env),
            _substitute(expr.then, env),
            _substitute(expr.otherwise, env),
        )
    if isinstance(expr, Index):
        return Index(_substitute(expr.array, env), _substitute(expr.index, env))
    if isinstance(expr, ArrayExpr):
        return ArrayExpr(_substitute(expr.size, env), _substitute(expr.fill, env))
    if isinstance(expr, FlipExpr):
        return FlipExpr(expr.label, _substitute(expr.prob, env))
    if isinstance(expr, UniformExpr):
        return UniformExpr(
            expr.label, _substitute(expr.low, env), _substitute(expr.high, env)
        )
    if isinstance(expr, GaussExpr):
        return GaussExpr(
            expr.label, _substitute(expr.mean, env), _substitute(expr.std, env)
        )
    if isinstance(expr, Call):
        return Call(expr.name, tuple(_substitute(a, env) for a in expr.args))
    return expr


def _const_value(expr: Expr, env: _ConstEnv) -> Optional[float]:
    """The statically-known value of ``expr`` under ``env``, or None."""
    folded = fold_expr(_substitute(expr, env))
    if isinstance(folded, Const):
        return folded.value
    return None


def _is_integer(value: float) -> bool:
    try:
        return float(value).is_integer()
    except (TypeError, ValueError):
        return False


class _ConstPropChecker:
    """Straight-line constant propagation with conservative merging."""

    def __init__(self) -> None:
        self.diagnostics: List[Diagnostic] = []

    def finding(self, severity: str, message: str, code: str, label: Optional[str] = None) -> None:
        self.diagnostics.append(
            Diagnostic(severity, message, code=code, pass_name=PASS_NAME, address=label)
        )

    # -- distribution parameters -------------------------------------------

    def check_random(self, expr: RandomExpr, env: _ConstEnv) -> None:
        """Range-check parameters that become constant *only* under env.

        Parameters that are syntactically constant are already checked
        by ``check_program``; re-checking them here would duplicate the
        finding, so a rule only fires when the raw fold is opaque but
        the substituted fold is a constant.
        """

        def propagated(param: Expr) -> Optional[float]:
            if isinstance(fold_expr(param), Const):
                return None
            return _const_value(param, env)

        if isinstance(expr, FlipExpr):
            prob = propagated(expr.prob)
            if prob is not None and not 0 <= prob <= 1:
                self.finding(
                    "error",
                    f"flip probability evaluates to {prob}, outside [0, 1] "
                    "(after constant propagation)",
                    "param-range",
                    expr.label,
                )
        elif isinstance(expr, UniformExpr):
            low = _const_value(expr.low, env)
            high = _const_value(expr.high, env)
            raw_const = isinstance(fold_expr(expr.low), Const) and isinstance(
                fold_expr(expr.high), Const
            )
            if low is not None and high is not None and high < low and not raw_const:
                self.finding(
                    "error",
                    f"uniform({low}, {high}) has an empty range "
                    "(after constant propagation)",
                    "param-range",
                    expr.label,
                )
        elif isinstance(expr, GaussExpr):
            std = propagated(expr.std)
            if std is not None and std <= 0:
                self.finding(
                    "error",
                    f"gauss std evaluates to {std}, which is not positive "
                    "(after constant propagation)",
                    "param-range",
                    expr.label,
                )

    def check_observe(self, stmt: Observe, env: _ConstEnv) -> None:
        """Flag observes whose outcome is statically decided."""
        value = _const_value(stmt.value, env)
        if value is None:
            return
        random = stmt.random
        label = random.label
        if isinstance(random, FlipExpr):
            if value not in (0, 1):
                self.finding(
                    "error",
                    f"observe on flip {label!r} conditions on value {value}, "
                    "which is outside the {0, 1} support; every trace gets "
                    "-inf log weight",
                    "observe-impossible",
                    label,
                )
                return
            prob = _const_value(random.prob, env)
            if prob in (0, 1):
                if value == prob:
                    self.finding(
                        "warning",
                        f"observe on flip {label!r} with probability {prob} "
                        f"always yields {value}; the conditioning is vacuous",
                        "observe-vacuous",
                        label,
                    )
                else:
                    self.finding(
                        "error",
                        f"observe on flip {label!r} with probability {prob} "
                        f"can never yield {value}; every trace gets -inf "
                        "log weight",
                        "observe-impossible",
                        label,
                    )
        elif isinstance(random, UniformExpr):
            low = _const_value(random.low, env)
            high = _const_value(random.high, env)
            if not _is_integer(value):
                self.finding(
                    "error",
                    f"observe on uniform {label!r} conditions on non-integer "
                    f"value {value}; every trace gets -inf log weight",
                    "observe-impossible",
                    label,
                )
            elif low is not None and high is not None and not low <= value <= high:
                self.finding(
                    "error",
                    f"observe on uniform {label!r} conditions on {value}, "
                    f"outside [{low}, {high}]; every trace gets -inf log "
                    "weight",
                    "observe-impossible",
                    label,
                )
        # A Gaussian has density at every finite value: nothing to decide.

    # -- statements ---------------------------------------------------------

    def check_stmt(self, stmt: Stmt, env: _ConstEnv) -> None:
        """Check ``stmt``, updating ``env`` in place."""
        for node in walk(stmt) if isinstance(stmt, (Assign, Observe, IndexAssign, Return)) else ():
            if isinstance(node, RandomExpr):
                self.check_random(node, env)
        if isinstance(stmt, (Skip, FuncDef, Return)):
            # Function bodies run in their own scope; call-site constant
            # propagation is out of scope for this pass.
            return
        if isinstance(stmt, Assign):
            value = _const_value(stmt.expr, env)
            if value is not None and not any(
                isinstance(n, RandomExpr) for n in walk(stmt.expr)
            ):
                env[stmt.name] = value
            else:
                env.pop(stmt.name, None)
            return
        if isinstance(stmt, IndexAssign):
            env.pop(stmt.name, None)
            return
        if isinstance(stmt, Seq):
            self.check_stmt(stmt.first, env)
            self.check_stmt(stmt.second, env)
            return
        if isinstance(stmt, Observe):
            self.check_random(stmt.random, env)
            self.check_observe(stmt, env)
            return
        if isinstance(stmt, If):
            then_env = dict(env)
            else_env = dict(env)
            self.check_stmt(stmt.then, then_env)
            self.check_stmt(stmt.otherwise, else_env)
            env.clear()
            env.update(
                {
                    name: value
                    for name, value in then_env.items()
                    if else_env.get(name) == value
                }
            )
            return
        if isinstance(stmt, (For, While)):
            # Anything the body can assign is unknown across iterations;
            # analyze the body once under that weaker environment.
            body_env = dict(env)
            for name in assigned_variables(stmt):
                body_env.pop(name, None)
            self.check_stmt(stmt.body, body_env)
            for name in assigned_variables(stmt):
                env.pop(name, None)
            return


def _unused_variables(program: Stmt, parameters: Set[str]) -> List[str]:
    """Assigned names whose value is never read anywhere."""
    assigned: List[str] = []
    seen: Set[str] = set()
    read: Set[str] = set()
    loop_vars: Set[str] = set()
    for node in walk(program):
        if isinstance(node, Assign) and node.name not in seen:
            seen.add(node.name)
            assigned.append(node.name)
        elif isinstance(node, Var):
            read.add(node.name)
        elif isinstance(node, IndexAssign):
            # An index-assignment reads the array it mutates.
            read.add(node.name)
        elif isinstance(node, For):
            loop_vars.add(node.var)
    return [
        name
        for name in assigned
        if name not in read and name not in loop_vars and name not in parameters
    ]


def extended_check_program(
    program: Stmt,
    parameters: Sequence[str] = (),
    array_parameters: Sequence[str] = (),
) -> List[Diagnostic]:
    """All static program checks: legacy rules plus the extended ones.

    Runs :func:`repro.lang.check.check_program` and
    :func:`repro.lang.types.check_kinds`, then the framework-only rules
    (unused variables, statically-decided observes, constant-propagated
    parameter ranges).  Returns one combined diagnostic list, every
    entry stamped with ``pass_name="programs"``.
    """
    diagnostics: List[Diagnostic] = []
    diagnostics.extend(check_program(program, parameters))
    diagnostics.extend(
        d.with_context(pass_name=PASS_NAME)
        for d in check_kinds(program, parameters, array_parameters)
    )

    for name in _unused_variables(program, set(parameters)):
        diagnostics.append(
            Diagnostic(
                "info",
                f"variable {name!r} is assigned but its value is never read",
                code="unused-variable",
                pass_name=PASS_NAME,
            )
        )

    checker = _ConstPropChecker()
    checker.check_stmt(program, {})
    diagnostics.extend(checker.diagnostics)
    return diagnostics
