"""The static model profiler as an analysis pass (pass 5).

Surfaces the abstract interpreter (:mod:`repro.analysis.absint`) through
the same :class:`~repro.analysis.diagnostics.Diagnostic` pipeline as the
other passes, in three shapes:

* :func:`static_profile_model` — profile one model; report what the
  analyzer concluded (``static-profile-complete`` /
  ``static-profile-incomplete`` / ``static-profile-control-flow``) and,
  optionally, **gate agreement** against the runtime profiler: a
  complete static profile that disagrees with an enumerated/sampled
  profile of the same model is an ``error``
  (``static-profile-disagreement``) — the soundness check CI runs over
  every bundled target.
* :func:`columnar_plan_lint` — run the columnar pre-flight
  (:func:`repro.analysis.absint.plan_columnar_step`) on a translator and
  report each predicted spill reason under its stable
  ``columnar-ineligible-*`` code.
* :func:`bundled_static_profiles` — the JSON profile/plan dump behind
  ``repro lint --static-profile`` and the CI profile artifacts.

Severity policy: everything the pass reports about *bundled* models is
``info`` unless the static profiler is provably wrong — incompleteness
(the Figure 6 geometric loop) and columnar ineligibility (the burglary
branching) are expected properties of shipped programs, and ``repro
lint bundled --strict`` must stay green.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from ..core.model import Model
from .correspondence import DEFAULT_SAMPLES, profile_model
from .diagnostics import Diagnostic

__all__ = [
    "static_profile_model",
    "columnar_plan_lint",
    "bundled_static_profiles",
]

PASS_NAME = "static-profile"


def _diag(
    severity: str, message: str, code: str, address: Any = None
) -> Diagnostic:
    return Diagnostic(
        severity,
        message,
        code=code,
        pass_name=PASS_NAME,
        address=None if address is None else repr(address),
    )


def static_profile_model(
    model: Model,
    *,
    check_agreement: bool = True,
    rng: Optional[np.random.Generator] = None,
    num_samples: int = DEFAULT_SAMPLES,
) -> List[Diagnostic]:
    """Statically profile ``model`` and report the analyzer's verdicts.

    With ``check_agreement`` (the default), a complete static profile is
    cross-checked against the runtime profiler: the static address set
    must contain every runtime-observed address with the same support
    lists (the static set may be strictly larger only when the runtime
    profile is sampled, i.e. an under-approximation).
    """
    from .absint import analyze_model

    name = getattr(model, "name", "model")
    profile = analyze_model(model)
    diagnostics: List[Diagnostic] = []

    if profile.complete:
        diagnostics.append(
            _diag(
                "info",
                f"statically profiled {name!r}: {len(profile.addresses)} "
                f"latent address(es), {len(profile.observations)} "
                f"observation(s), {len(profile.families())} famil(ies)",
                "static-profile-complete",
            )
        )
    else:
        diagnostics.append(
            _diag(
                "info",
                f"static analysis of {name!r} is incomplete "
                f"({profile.failure}); runtime profiling applies",
                "static-profile-incomplete",
            )
        )
    if profile.value_dependent_control_flow:
        sites = "; ".join(site.describe() for site in profile.control_sites)
        diagnostics.append(
            _diag(
                "info",
                f"{name!r} has value-dependent control flow: {sites}",
                "static-profile-control-flow",
            )
        )

    if check_agreement and profile.complete:
        runtime = profile_model(model, rng, num_samples, method="runtime")
        static = profile.to_address_profile()
        for address in sorted(runtime.supports, key=repr):
            if address not in static.supports:
                diagnostics.append(
                    _diag(
                        "error",
                        f"static profile of {name!r} misses address "
                        f"{address!r} observed by the runtime profiler "
                        f"({runtime.method})",
                        "static-profile-disagreement",
                        address,
                    )
                )
            elif sorted(map(repr, static.supports[address])) != sorted(
                map(repr, runtime.supports[address])
            ):
                diagnostics.append(
                    _diag(
                        "error",
                        f"support disagreement at {address!r} in {name!r}: "
                        f"static {static.supports[address]} vs "
                        f"{runtime.method} {runtime.supports[address]}",
                        "static-profile-disagreement",
                        address,
                    )
                )
        for address in sorted(set(static.supports) - set(runtime.supports), key=repr):
            if runtime.complete:
                diagnostics.append(
                    _diag(
                        "error",
                        f"static profile of {name!r} claims address "
                        f"{address!r}, which exhaustive enumeration never "
                        "produced",
                        "static-profile-disagreement",
                        address,
                    )
                )
            else:
                diagnostics.append(
                    _diag(
                        "info",
                        f"static profile of {name!r} includes {address!r}, "
                        f"unseen in {runtime.method} profiling (sound "
                        "over-approximation)",
                        "static-profile-overapprox",
                        address,
                    )
                )
    return diagnostics


def columnar_plan_lint(translator: Any) -> List[Diagnostic]:
    """Report a translator's predicted columnar spill reasons.

    Every finding is ``info``: ineligibility is a routing fact, not a
    defect — the object path is always available.
    """
    from .absint import plan_columnar_step

    plan = plan_columnar_step(translator)
    diagnostics: List[Diagnostic] = []
    for finding in plan.findings:
        diagnostics.append(
            _diag("info", finding.describe(), finding.lint_code)
        )
    if plan.eligible:
        diagnostics.append(
            _diag(
                "info",
                "no certain spill predicted; the step runs columnar "
                "(runtime probe still applies)",
                "columnar-eligible",
            )
        )
    return diagnostics


def bundled_static_profiles() -> Dict[str, Dict[str, Any]]:
    """Static profiles and columnar plans of every bundled model pair.

    The payload behind ``repro lint bundled --static-profile PATH`` and
    the CI ``static-profile`` job's JSON artifacts.
    """
    from ..core.corr_translator import CorrespondenceTranslator
    from ..derive.gate import BUNDLED_PAIRS
    from ..experiments.burglary import (
        burglary_correspondence,
        burglary_original,
        burglary_refined,
    )
    from .absint import analyze_model, plan_columnar_step

    pairs = {name: setup() for name, setup in sorted(BUNDLED_PAIRS.items())}
    pairs["burglary"] = (
        burglary_original(),
        burglary_refined(),
        burglary_correspondence(),
    )

    payload: Dict[str, Dict[str, Any]] = {}
    for name, (source, target, reference) in sorted(pairs.items()):
        plan = plan_columnar_step(
            CorrespondenceTranslator(source, target, reference)
        )
        payload[name] = {
            "source": analyze_model(source).to_json(),
            "target": analyze_model(target).to_json(),
            "columnar_plan": plan.to_json(),
        }
    return payload
