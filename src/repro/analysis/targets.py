"""The registry of bundled analysis targets (`repro lint bundled`).

Everything the repository ships — the paper's structured-language
programs, the edit pairs they form, the embedded-model correspondences
of the experiments, and a handful of representative inference configs —
is registered here so one command (and one CI job) can sweep the whole
surface:

    repro lint bundled --strict --format json

Each target is a name plus a thunk producing diagnostics; thunks are
lazy so listing the registry costs nothing and a failure in one target
(reported as ``target-failed``) never hides the others.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .diagnostics import Diagnostic

__all__ = ["bundled_targets", "lint_bundled"]

#: name -> thunk returning that target's diagnostics.
TargetRegistry = Dict[str, Callable[[], List[Diagnostic]]]


def _lang_program(source_name: str, parameters=(), array_parameters=()):
    def run() -> List[Diagnostic]:
        from ..lang import programs as lang_programs
        from ..lang.parser import parse_program
        from .programs import extended_check_program

        program = parse_program(getattr(lang_programs, source_name))
        return extended_check_program(program, parameters, array_parameters)

    return run


def _gmm_program() -> List[Diagnostic]:
    from ..lang.parser import parse_program
    from ..lang.programs import gmm_source
    from .programs import extended_check_program

    program = parse_program(gmm_source(3))
    return extended_check_program(
        program, parameters=("sigma", "n"), array_parameters=("ys",)
    )


def _edit_pair(old_name: str, new_name: str):
    def run() -> List[Diagnostic]:
        from ..graph.diff import align_labels
        from ..lang import programs as lang_programs
        from ..lang.parser import parse_program
        from .correspondence import validate_label_map
        from .edits import check_edit

        old = parse_program(getattr(lang_programs, old_name))
        new = parse_program(getattr(lang_programs, new_name))
        diagnostics = validate_label_map(old, new, align_labels(old, new))
        diagnostics.extend(check_edit(old, new))
        return diagnostics

    return run


def _burglary_correspondence() -> List[Diagnostic]:
    from ..experiments.burglary import (
        burglary_correspondence,
        burglary_original,
        burglary_refined,
    )
    from .correspondence import validate_correspondence

    return validate_correspondence(
        burglary_original(), burglary_refined(), burglary_correspondence()
    )


def _regression_setup():
    """The fig. 8 edit pair: ``(source, target, reference_correspondence)``.

    Shared by the hand-written ``correspondence:regression`` target and
    the ``derive:regression`` gate (:mod:`repro.derive.gate`).
    """
    from ..regression.programs import (
        NoOutlierModelParams,
        OutlierModelParams,
        coefficient_correspondence,
        no_outlier_model,
        outlier_model,
    )

    xs = (0.0, 1.0, 2.0)
    ys = (0.1, 1.1, 1.9)
    return (
        no_outlier_model(NoOutlierModelParams(), xs, ys),
        outlier_model(OutlierModelParams(), xs, ys),
        coefficient_correspondence(),
    )


def _regression_correspondence() -> List[Diagnostic]:
    from .correspondence import validate_correspondence

    return validate_correspondence(*_regression_setup())


def _hmm_setup():
    """The HMM order-swap pair: ``(source, target, reference_correspondence)``.

    Shared by the hand-written ``correspondence:hmm`` target and the
    ``derive:hmm`` gate (:mod:`repro.derive.gate`).
    """
    import numpy as np

    from ..hmm.model import FirstOrderParams, SecondOrderParams
    from ..hmm.programs import (
        first_order_model,
        hidden_state_correspondence,
        second_order_model,
    )

    log_initial = np.log([0.5, 0.5])
    log_observation = np.log([[0.8, 0.2], [0.2, 0.8]])
    first = FirstOrderParams(
        log_initial=log_initial,
        log_transition=np.log([[0.7, 0.3], [0.3, 0.7]]),
        log_observation=log_observation,
    )
    second = SecondOrderParams(
        log_initial=log_initial,
        log_first_transition=np.log([[0.7, 0.3], [0.3, 0.7]]),
        log_transition=np.log(
            [
                [[0.6, 0.4], [0.4, 0.6]],
                [[0.5, 0.5], [0.3, 0.7]],
            ]
        ),
        log_observation=log_observation,
    )
    observations = (0, 1, 0)
    return (
        first_order_model(first, observations),
        second_order_model(second, observations),
        hidden_state_correspondence(),
    )


def _hmm_correspondence() -> List[Diagnostic]:
    from .correspondence import validate_correspondence

    return validate_correspondence(*_hmm_setup())


def _derive_gate(pair_name: str):
    def run() -> List[Diagnostic]:
        from ..derive.gate import BUNDLED_PAIRS, check_derivation

        source, target, reference = BUNDLED_PAIRS[pair_name]()
        return check_derivation(source, target, reference)

    return run


def _static_profile_pair(pair_name: str):
    """Static-profiler target: profile both models of a bundled pair,
    gate static-vs-runtime agreement, and lint the columnar plan."""

    def run() -> List[Diagnostic]:
        from ..core.corr_translator import CorrespondenceTranslator
        from .static_profile import columnar_plan_lint, static_profile_model

        if pair_name == "burglary":
            from ..experiments.burglary import (
                burglary_correspondence,
                burglary_original,
                burglary_refined,
            )

            source, target, reference = (
                burglary_original(),
                burglary_refined(),
                burglary_correspondence(),
            )
        else:
            from ..derive.gate import BUNDLED_PAIRS

            source, target, reference = BUNDLED_PAIRS[pair_name]()
        diagnostics = static_profile_model(source)
        diagnostics.extend(static_profile_model(target))
        diagnostics.extend(
            columnar_plan_lint(
                CorrespondenceTranslator(source, target, reference)
            )
        )
        return diagnostics

    return run


def _static_profile_lang(source_name: str):
    """Static-profiler target for one structured-language program."""

    def run() -> List[Diagnostic]:
        from ..lang import programs as lang_programs
        from ..lang.interp import lang_model
        from ..lang.parser import parse_program
        from .static_profile import static_profile_model

        program = parse_program(getattr(lang_programs, source_name))
        model = lang_model(program, name=source_name.lower())
        return static_profile_model(model)

    return run


def _config(name: str, **kwargs):
    def run() -> List[Diagnostic]:
        from ..core.config import InferenceConfig
        from .config_lint import lint_config

        return lint_config(InferenceConfig(**kwargs))

    return run


def _service_config(name: str, **kwargs):
    def run() -> List[Diagnostic]:
        from ..service.config import ServiceConfig
        from .config_lint import lint_service_config

        return lint_service_config(ServiceConfig(**kwargs))

    return run


def bundled_targets() -> TargetRegistry:
    """Every shipped program, edit pair, correspondence, and config."""
    registry: TargetRegistry = {}
    for name in (
        "BURGLARY_ORIGINAL",
        "BURGLARY_REFINED",
        "FIGURE3",
        "FIGURE5_P",
        "FIGURE5_Q",
        "FIGURE6_GEOMETRIC",
        "FIGURE7",
    ):
        registry[f"program:{name.lower()}"] = _lang_program(name)
    registry["program:gmm"] = _gmm_program
    registry["edit:burglary"] = _edit_pair("BURGLARY_ORIGINAL", "BURGLARY_REFINED")
    registry["edit:figure5"] = _edit_pair("FIGURE5_P", "FIGURE5_Q")
    registry["correspondence:burglary"] = _burglary_correspondence
    registry["correspondence:regression"] = _regression_correspondence
    registry["correspondence:hmm"] = _hmm_correspondence
    registry["derive:hmm"] = _derive_gate("hmm")
    registry["derive:regression"] = _derive_gate("regression")
    registry["derive:gmm"] = _derive_gate("gmm")
    for pair in ("burglary", "gmm", "hmm", "regression"):
        registry[f"static-profile:{pair}"] = _static_profile_pair(pair)
    for name in (
        "FIGURE3",
        "FIGURE5_P",
        "FIGURE5_Q",
        "FIGURE6_GEOMETRIC",
        "FIGURE7",
    ):
        registry[f"static-profile:{name.lower()}"] = _static_profile_lang(name)
    registry["config:default"] = _config("default")
    registry["config:adaptive-smc"] = _config(
        "adaptive-smc",
        resample="adaptive",
        ess_threshold=0.5,
        fault_policy="drop",
        executor="thread",
        workers=2,
    )
    registry["config:checkpointed"] = _config(
        "checkpointed",
        resample="always",
        checkpoint_dir="checkpoints",
        checkpoint_every=5,
    )
    registry["config:service-durable"] = _service_config(
        "service-durable",
        store_dir="service-store",
        expected_step_latency_s=0.5,
    )
    return registry


def lint_bundled() -> Dict[str, List[Diagnostic]]:
    """Run every bundled target; a crashing target becomes a finding."""
    results: Dict[str, List[Diagnostic]] = {}
    for name, thunk in sorted(bundled_targets().items()):
        try:
            diagnostics = thunk()
        except Exception as error:  # pragma: no cover - registry defect
            diagnostics = [
                Diagnostic(
                    "error",
                    f"analysis of bundled target {name!r} crashed "
                    f"({type(error).__name__}: {error})",
                    code="target-failed",
                    pass_name="targets",
                )
            ]
        results[name] = [d.with_context(target=name) for d in diagnostics]
    return results
