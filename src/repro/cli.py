"""Command-line interface for the structured probabilistic language.

Subcommands (``python -m repro.cli <cmd>`` or the ``repro`` script):

* ``parse FILE`` — parse and pretty-print a program (syntax check);
* ``run FILE`` — sample traces and print return values with log probs;
* ``enumerate FILE`` — exact posterior of the return value (finite
  discrete programs);
* ``diff OLD NEW`` — show the label correspondence the tree diff
  recovers between two programs (Section 6's heuristic);
* ``translate OLD NEW`` — incremental inference across an edit: sample
  traces of OLD, translate each to NEW with the diff correspondence,
  and print the weighted return-value distribution with diagnostics.

Environment parameters are passed as ``--env name=value`` (repeatable);
values parse as int, then float, then a comma-separated list of numbers.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, List, Optional

import numpy as np

from .core import CorrespondenceTranslator, FaultPolicy, WeightedCollection, infer
from .core.enumerate import exact_return_distribution
from .graph import align_labels, diff_correspondence
from .lang import lang_model, parse_program, pretty

__all__ = ["main", "build_parser"]


def _parse_env_value(text: str) -> Any:
    if "," in text:
        return [_parse_env_value(part) for part in text.split(",")]
    for converter in (int, float):
        try:
            return converter(text)
        except ValueError:
            continue
    return text


def _parse_env(pairs: Optional[List[str]]) -> Dict[str, Any]:
    env: Dict[str, Any] = {}
    for pair in pairs or []:
        if "=" not in pair:
            raise SystemExit(f"--env expects name=value, got {pair!r}")
        name, _eq, value = pair.partition("=")
        env[name.strip()] = _parse_env_value(value.strip())
    return env


def _load_program(path: str):
    try:
        with open(path) as handle:
            source = handle.read()
    except OSError as error:
        raise SystemExit(f"cannot read {path}: {error}")
    return parse_program(source)


def _cmd_parse(args: argparse.Namespace) -> int:
    program = _load_program(args.file)
    print(pretty(program))
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from .lang import check_kinds, check_program

    program = _load_program(args.file)
    env = _parse_env(args.env)
    array_parameters = tuple(
        name for name, value in env.items() if isinstance(value, list)
    )
    diagnostics = check_program(program, parameters=tuple(env))
    diagnostics += check_kinds(
        program, parameters=tuple(env), array_parameters=array_parameters
    )
    for diagnostic in diagnostics:
        print(diagnostic)
    if not diagnostics:
        print("ok")
    return 1 if any(d.severity == "error" for d in diagnostics) else 0


def _cmd_run(args: argparse.Namespace) -> int:
    program = _load_program(args.file)
    model = lang_model(program, env=_parse_env(args.env))
    rng = np.random.default_rng(args.seed)
    for _ in range(args.num_samples):
        trace = model.simulate(rng)
        print(f"return={trace.return_value!r}  log_prob={trace.log_prob:.4f}")
    return 0


def _cmd_enumerate(args: argparse.Namespace) -> int:
    program = _load_program(args.file)
    model = lang_model(program, env=_parse_env(args.env))
    distribution = exact_return_distribution(model)
    for value, probability in sorted(distribution.items(), key=lambda kv: str(kv[0])):
        print(f"P(return = {value!r}) = {probability:.6f}")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    old_program = _load_program(args.old)
    new_program = _load_program(args.new)
    mapping = align_labels(old_program, new_program)
    if not mapping:
        print("no corresponding random expressions found")
        return 0
    for new_label, old_label in sorted(mapping.items()):
        print(f"{new_label}  <-  {old_label}")
    return 0


def _cmd_translate(args: argparse.Namespace) -> int:
    old_program = _load_program(args.old)
    new_program = _load_program(args.new)
    env = _parse_env(args.env)
    rng = np.random.default_rng(args.seed)

    source = lang_model(old_program, env=env, name="old")
    target = lang_model(new_program, env=env, name="new")
    correspondence = diff_correspondence(old_program, new_program)
    translator = CorrespondenceTranslator(source, target, correspondence)

    traces, log_weights = [], []
    for _ in range(args.num_samples):
        # Posterior sampling of the old program by likelihood weighting.
        trace, log_weight = source.generate(rng)
        traces.append(trace)
        log_weights.append(log_weight)
    collection = WeightedCollection(traces, log_weights).resample(rng)

    try:
        policy = FaultPolicy(mode=args.fault_policy, max_retries=args.max_retries)
    except ValueError as error:
        raise SystemExit(f"repro translate: error: {error}")
    step = infer(translator, collection, rng, fault_policy=policy)
    output = step.collection
    stats = step.stats

    print(f"translated {len(output)} traces "
          f"(effective sample size {output.effective_sample_size():.1f})")
    if stats.total_faults:
        print(f"faults: failed={stats.failed} retried={stats.retried} "
              f"dropped={stats.dropped} regenerated={stats.regenerated}")
    values: Dict[Any, float] = {}
    weights = output.normalized_weights()
    for trace, weight in zip(output.items, weights):
        key = trace.return_value
        if isinstance(key, dict):
            key = tuple(sorted(key.items()))
        if isinstance(key, list):
            key = tuple(key)
        values[key] = values.get(key, 0.0) + float(weight)
    top = sorted(values.items(), key=lambda kv: -kv[1])[: args.top]
    for value, probability in top:
        print(f"P(return = {value!r}) = {probability:.4f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="incremental inference for probabilistic programs"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    parse_cmd = subparsers.add_parser("parse", help="parse and pretty-print a program")
    parse_cmd.add_argument("file")
    parse_cmd.set_defaults(handler=_cmd_parse)

    check_cmd = subparsers.add_parser("check", help="run static checks on a program")
    check_cmd.add_argument("file")
    check_cmd.add_argument("--env", action="append", metavar="NAME=VALUE",
                           help="declare a program parameter (value unused)")
    check_cmd.set_defaults(handler=_cmd_check)

    run_cmd = subparsers.add_parser("run", help="sample traces of a program")
    run_cmd.add_argument("file")
    run_cmd.add_argument("--env", action="append", metavar="NAME=VALUE")
    run_cmd.add_argument("-n", "--num-samples", type=int, default=5)
    run_cmd.add_argument("--seed", type=int, default=None)
    run_cmd.set_defaults(handler=_cmd_run)

    enum_cmd = subparsers.add_parser(
        "enumerate", help="exact return-value posterior (finite discrete programs)"
    )
    enum_cmd.add_argument("file")
    enum_cmd.add_argument("--env", action="append", metavar="NAME=VALUE")
    enum_cmd.set_defaults(handler=_cmd_enumerate)

    diff_cmd = subparsers.add_parser(
        "diff", help="label correspondence between two programs"
    )
    diff_cmd.add_argument("old")
    diff_cmd.add_argument("new")
    diff_cmd.set_defaults(handler=_cmd_diff)

    translate_cmd = subparsers.add_parser(
        "translate", help="incremental inference from OLD to NEW"
    )
    translate_cmd.add_argument("old")
    translate_cmd.add_argument("new")
    translate_cmd.add_argument("--env", action="append", metavar="NAME=VALUE")
    translate_cmd.add_argument("-n", "--num-samples", type=int, default=1000)
    translate_cmd.add_argument("--seed", type=int, default=None)
    translate_cmd.add_argument("--top", type=int, default=10,
                               help="show the top-K return values")
    translate_cmd.add_argument("--fault-policy", choices=FaultPolicy.MODES,
                               default="fail_fast",
                               help="what a failed particle translation does: "
                                    "crash (fail_fast), lose the particle (drop), "
                                    "or retry and resample it from the prior "
                                    "(regenerate)")
    translate_cmd.add_argument("--max-retries", type=int, default=2,
                               help="translation retries per particle before "
                                    "'regenerate' falls back to the prior")
    translate_cmd.set_defaults(handler=_cmd_translate)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
