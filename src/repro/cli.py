"""Command-line interface for the structured probabilistic language.

Subcommands (``python -m repro.cli <cmd>`` or the ``repro`` script):

* ``parse FILE`` — parse and pretty-print a program (syntax check);
* ``run FILE`` — sample traces and print return values with log probs;
* ``enumerate FILE`` — exact posterior of the return value (finite
  discrete programs);
* ``lint TARGET...`` — the full static-analysis suite
  (:mod:`repro.analysis`): one file runs the extended program checks,
  two files additionally validate the derived correspondence and the
  edit's propagation soundness, and the literal ``bundled`` sweeps every
  shipped program, edit pair, correspondence, and config
  (``--strict``/``--format json``/``--out`` for CI);
* ``diff OLD NEW`` — show the label correspondence the tree diff
  recovers between two programs (Section 6's heuristic);
* ``derive OLD NEW`` — derive the address correspondence by profiling
  and structurally aligning the two programs' address spaces
  (:mod:`repro.derive`) and print the evidence report
  (``--format json``/``--out`` for CI artifacts); ``sequence`` and
  ``resume`` accept ``--correspondence derive`` to run a whole edit
  chain on derived maps, and ``lint OLD NEW --derive`` validates the
  derived map in place of the tree-diff label map;
* ``translate OLD NEW`` — incremental inference across an edit: sample
  traces of OLD, translate each to NEW with the diff correspondence,
  and print the weighted return-value distribution with diagnostics;
* ``sequence FILE FILE [FILE ...]`` — iterated incremental inference
  over a whole edit chain, with optional durable checkpoints
  (``--checkpoint-dir``/``--checkpoint-every``);
* ``resume FILE FILE [FILE ...]`` — continue a killed ``sequence`` run
  from its latest valid checkpoint; the resumed run reproduces the
  uninterrupted run's final collection byte for byte;
* ``session NAME`` — run a scripted multi-edit inference-session
  workflow (fig8 regression / fig10 GMM) through the store layer;
* ``serve`` — run the fault-tolerant multi-tenant inference service
  (:mod:`repro.service`): create/observe/edit/posterior/close over a
  framed codec protocol, with per-tenant quotas, bounded queues,
  deadlines, and crash recovery from commit checkpoints
  (``--store-dir``); SIGTERM/SIGINT shut down gracefully;
* ``loadgen`` — drive a deterministic workload against a running
  service and report p50/p99 latencies, rejection rate, and retries;
* ``experiment NAME`` — run a figure reproduction (fig8/fig9).

Observability: ``translate`` and ``experiment`` accept ``--trace-out
PATH`` (span-tree JSON), ``--metrics-out PATH`` (metrics snapshot JSON,
strict — no bare NaN/Infinity tokens), and ``translate`` additionally
``--verbose`` (a one-line summary per SMC step).

Environment parameters are passed as ``--env name=value`` (repeatable);
values parse as int, then float, then a comma-separated list of numbers.

Exit codes distinguish failure classes: ``2`` (:data:`EXIT_USAGE`) for
bad arguments — unreadable files, malformed flags, a checkpoint written
by a newer library version; ``3`` (:data:`EXIT_FAULT`) for inference
faults — a :class:`~repro.errors.ReproError` escaping the run under a
``fail_fast`` policy; ``4`` (:data:`EXIT_LINT`) for ``repro lint``
findings — error-severity diagnostics, or warnings under ``--strict``
(info findings never affect the exit code); ``5`` (:data:`EXIT_SERVICE`)
for service-layer failures — ``repro serve`` unable to bind or recover,
``repro loadgen`` rejected by quotas/overload after its retry budget, or
a :class:`~repro.errors.ServiceError` escaping either command.  ``repro
check`` keeps its documented ``1`` for "diagnostics found".
"""

from __future__ import annotations

import argparse
import json as json_module
import os
import signal
import sys
from typing import Any, Dict, List, NoReturn, Optional

import numpy as np

from .core import (
    CorrespondenceTranslator,
    FaultPolicy,
    InferenceConfig,
    WeightedCollection,
    infer,
    infer_sequence,
)
from .core.enumerate import exact_return_distribution
from .errors import ReproError, SchemaVersionError, ServiceError
from .graph import align_labels, diff_correspondence
from .lang import lang_model, parse_program, pretty
from .observability import (
    NULL_HOOKS,
    NULL_METRICS,
    NULL_TRACER,
    CompositeHooks,
    Hooks,
    MetricsRegistry,
    Tracer,
    dump_json,
)

__all__ = [
    "main",
    "build_parser",
    "EXIT_USAGE",
    "EXIT_FAULT",
    "EXIT_LINT",
    "EXIT_SERVICE",
]

#: Exit code for bad arguments / unusable inputs (argparse uses 2 too).
EXIT_USAGE = 2
#: Exit code for an inference fault (a ReproError escaping the run).
EXIT_FAULT = 3
#: Exit code for ``repro lint`` findings: error-severity diagnostics, or
#: warnings when ``--strict`` escalates them.  Distinct from
#: :data:`EXIT_USAGE` so CI can tell "bad invocation" from "real
#: findings"; info-severity diagnostics never affect the exit code.
EXIT_LINT = 4
#: Exit code for service-layer failures: ``repro serve`` cannot bind or
#: recover, or ``repro loadgen`` exhausted its retry budget against
#: quotas/overload.  Distinct from :data:`EXIT_FAULT` so CI can tell an
#: inference fault from a serving/capacity problem.
EXIT_SERVICE = 5

#: When set to an integer k, ``repro sequence`` SIGTERMs its own process
#: after k SMC steps complete — the CI kill-switch that exercises
#: checkpoint recovery against a genuinely dead process.
KILL_ENV_VAR = "REPRO_KILL_AFTER_STEP"


def _fail_usage(message: str) -> NoReturn:
    print(f"repro: error: {message}", file=sys.stderr)
    raise SystemExit(EXIT_USAGE)


class _StepTableHooks(Hooks):
    """Prints one summary line per SMC step (``--verbose``).

    Under an executor backend, translation faults happen inside workers;
    ``SMCStats.faults_by_worker`` carries the per-worker counts back to
    the coordinating process, and the table prints them in a dedicated
    column (``w0=2 w1=0 ...``) so a failing worker is visible instead of
    every fault silently aggregating — or, for process workers, getting
    lost entirely — in the total.
    """

    HEADER = (
        f"{'step':>4}  {'particles':>9}  {'ess':>8}  {'resampled':>9}  "
        f"{'translate_s':>11}  {'mcmc_s':>8}  {'faults':>6}  by-worker"
    )

    def __init__(self) -> None:
        self._step: Optional[int] = None
        self._printed_header = False

    @staticmethod
    def _format_worker_faults(stats: Any) -> str:
        by_worker = getattr(stats, "faults_by_worker", None)
        if by_worker is None:
            return "-"
        return " ".join(
            f"w{worker}={count}" for worker, count in sorted(by_worker.items())
        )

    def on_step_start(self, step_index: Optional[int], num_particles: int) -> None:
        self._step = step_index

    def on_step_end(self, stats: Any) -> None:
        if not self._printed_header:
            print(self.HEADER)
            self._printed_header = True
        step = "-" if self._step is None else str(self._step)
        print(
            f"{step:>4}  {stats.num_traces:>9}  {stats.ess_before_resample:>8.1f}  "
            f"{'yes' if stats.resampled else 'no':>9}  {stats.translate_seconds:>11.4f}  "
            f"{stats.mcmc_seconds:>8.4f}  {stats.total_faults:>6}  "
            f"{self._format_worker_faults(stats)}"
        )


def _parse_env_value(text: str) -> Any:
    if "," in text:
        return [_parse_env_value(part) for part in text.split(",")]
    for converter in (int, float):
        try:
            return converter(text)
        except ValueError:
            continue
    return text


def _parse_env(pairs: Optional[List[str]]) -> Dict[str, Any]:
    env: Dict[str, Any] = {}
    for pair in pairs or []:
        if "=" not in pair:
            _fail_usage(f"--env expects name=value, got {pair!r}")
        name, _eq, value = pair.partition("=")
        env[name.strip()] = _parse_env_value(value.strip())
    return env


def _load_program(path: str):
    try:
        with open(path) as handle:
            source = handle.read()
    except OSError as error:
        _fail_usage(f"cannot read {path}: {error}")
    return parse_program(source)


def _cmd_parse(args: argparse.Namespace) -> int:
    program = _load_program(args.file)
    print(pretty(program))
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from .lang import check_kinds, check_program

    program = _load_program(args.file)
    env = _parse_env(args.env)
    array_parameters = tuple(
        name for name, value in env.items() if isinstance(value, list)
    )
    diagnostics = check_program(program, parameters=tuple(env))
    diagnostics += check_kinds(
        program, parameters=tuple(env), array_parameters=array_parameters
    )
    for diagnostic in diagnostics:
        print(diagnostic)
    if not diagnostics:
        print("ok")
    return 1 if any(d.severity == "error" for d in diagnostics) else 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .analysis import AnalysisResult

    result = AnalysisResult()
    static_payload = None
    if list(args.targets) == ["bundled"]:
        from .analysis import lint_bundled

        for name, diagnostics in lint_bundled().items():
            result.extend(diagnostics, target=name)
        if getattr(args, "static_profile", None):
            from .analysis import bundled_static_profiles

            static_payload = bundled_static_profiles()
    elif len(args.targets) == 1:
        env = _parse_env(args.env)
        array_parameters = tuple(
            name for name, value in env.items() if isinstance(value, list)
        )
        from .analysis import extended_check_program

        program = _load_program(args.targets[0])
        result.extend(
            extended_check_program(program, tuple(env), array_parameters),
            target=args.targets[0],
        )
        if getattr(args, "static_profile", None):
            from .analysis.absint import analyze_model

            model = lang_model(program, env=env, name=args.targets[0])
            static_payload = {args.targets[0]: analyze_model(model).to_json()}
    elif len(args.targets) == 2:
        env = _parse_env(args.env)
        parameters = tuple(env)
        array_parameters = tuple(
            name for name, value in env.items() if isinstance(value, list)
        )
        from .analysis import check_edit, extended_check_program, validate_label_map

        old_program = _load_program(args.targets[0])
        new_program = _load_program(args.targets[1])
        for path, program in ((args.targets[0], old_program), (args.targets[1], new_program)):
            result.extend(
                extended_check_program(program, parameters, array_parameters),
                target=path,
            )
        edit_target = f"{args.targets[0]} -> {args.targets[1]}"
        derivation = None
        if getattr(args, "derive", False):
            from .analysis import validate_correspondence
            from .derive import derive_correspondence, derive_label_map

            source = lang_model(old_program, env=env, name=args.targets[0])
            target = lang_model(new_program, env=env, name=args.targets[1])
            derivation = derive_correspondence(
                source, target, rng=np.random.default_rng(0)
            )
            result.extend(
                validate_correspondence(
                    source,
                    target,
                    derivation.correspondence,
                    rng=np.random.default_rng(0),
                ),
                target=edit_target,
            )
            label_map = derive_label_map(derivation)
        else:
            label_map = align_labels(old_program, new_program)
        result.extend(
            validate_label_map(old_program, new_program, label_map),
            target=edit_target,
        )
        result.extend(
            check_edit(
                old_program, new_program, env=env or None, derivation=derivation
            ),
            target=edit_target,
        )
        if getattr(args, "static_profile", None):
            from .analysis.absint import analyze_model

            source = lang_model(old_program, env=env, name=args.targets[0])
            target = lang_model(new_program, env=env, name=args.targets[1])
            static_payload = {
                args.targets[0]: analyze_model(source).to_json(),
                args.targets[1]: analyze_model(target).to_json(),
            }
            if derivation is not None:
                from .analysis.absint import plan_columnar_step
                from .core.corr_translator import CorrespondenceTranslator

                plan = plan_columnar_step(
                    CorrespondenceTranslator(
                        source, target, derivation.correspondence
                    )
                )
                static_payload["columnar_plan"] = plan.to_json()
    else:
        _fail_usage(
            "lint takes one program, an OLD NEW pair, or the literal 'bundled'"
        )

    if static_payload is not None:
        with open(args.static_profile, "w") as handle:
            handle.write(
                json_module.dumps(static_payload, indent=2, sort_keys=True) + "\n"
            )
        print(f"static profiles written to {args.static_profile}")

    if args.format == "json" or args.out:
        report = json_module.dumps(result.to_dict(), indent=2, sort_keys=True)
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(report + "\n")
            print(f"lint report written to {args.out}")
        if args.format == "json":
            print(report)
    if args.format == "text":
        for diagnostic in result.sorted():
            where = f"{diagnostic.target}: " if diagnostic.target else ""
            print(f"{where}{diagnostic}")
        counts = result.counts()
        print(
            f"lint: {counts['error']} error(s), {counts['warning']} warning(s), "
            f"{counts['info']} info(s)"
        )
    failing = result.has_errors or (args.strict and result.warnings)
    return EXIT_LINT if failing else 0


def _cmd_run(args: argparse.Namespace) -> int:
    program = _load_program(args.file)
    model = lang_model(program, env=_parse_env(args.env))
    rng = np.random.default_rng(args.seed)
    for _ in range(args.num_samples):
        trace = model.simulate(rng)
        print(f"return={trace.return_value!r}  log_prob={trace.log_prob:.4f}")
    return 0


def _cmd_enumerate(args: argparse.Namespace) -> int:
    program = _load_program(args.file)
    model = lang_model(program, env=_parse_env(args.env))
    distribution = exact_return_distribution(model)
    for value, probability in sorted(distribution.items(), key=lambda kv: str(kv[0])):
        print(f"P(return = {value!r}) = {probability:.6f}")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    old_program = _load_program(args.old)
    new_program = _load_program(args.new)
    mapping = align_labels(old_program, new_program)
    if not mapping:
        print("no corresponding random expressions found")
        return 0
    for new_label, old_label in sorted(mapping.items()):
        print(f"{new_label}  <-  {old_label}")
    return 0


def _cmd_derive(args: argparse.Namespace) -> int:
    from .derive import derive_correspondence

    old_program = _load_program(args.old)
    new_program = _load_program(args.new)
    env = _parse_env(args.env)
    source = lang_model(old_program, env=env, name=args.old)
    target = lang_model(new_program, env=env, name=args.new)
    derivation = derive_correspondence(
        source, target, rng=np.random.default_rng(args.seed),
        num_samples=args.num_samples,
    )
    report = derivation.report

    if args.format == "json" or args.out:
        body = json_module.dumps(report.to_dict(), indent=2, sort_keys=True)
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(body + "\n")
            print(f"derivation report written to {args.out}")
        if args.format == "json":
            print(body)
    if args.format == "text":
        print(f"derived correspondence: {report.summary()}")
        for match in report.matches:
            print(
                f"  {tuple(match.target)!r}  <-  {tuple(match.source)!r}  "
                f"[{match.kind}, confidence {match.confidence:.2f}]"
            )
        for q_head, p_head in sorted(report.family_rules.items(), key=repr):
            print(f"  family rule: ({q_head!r}, *)  <-  ({p_head!r}, *)")
        for address in report.fresh:
            print(f"  fresh: {tuple(address)!r} (sampled anew on translation)")
        for address in report.dropped:
            print(f"  dropped: {tuple(address)!r} (old value discarded)")
        for note in report.notes:
            print(f"  note: {note}")
    return 0


def _cmd_translate(args: argparse.Namespace) -> int:
    old_program = _load_program(args.old)
    new_program = _load_program(args.new)
    env = _parse_env(args.env)
    rng = np.random.default_rng(args.seed)

    source = lang_model(old_program, env=env, name="old")
    target = lang_model(new_program, env=env, name="new")
    correspondence = diff_correspondence(old_program, new_program)
    translator = CorrespondenceTranslator(source, target, correspondence)

    traces, log_weights = [], []
    for _ in range(args.num_samples):
        # Posterior sampling of the old program by likelihood weighting.
        trace, log_weight = source.generate(rng)
        traces.append(trace)
        log_weights.append(log_weight)
    collection = WeightedCollection(traces, log_weights).resample(rng)

    try:
        policy = FaultPolicy(mode=args.fault_policy, max_retries=args.max_retries)
    except ValueError as error:
        _fail_usage(str(error))
    tracer = Tracer() if args.trace_out else NULL_TRACER
    metrics = MetricsRegistry() if args.metrics_out else NULL_METRICS
    hooks = _StepTableHooks() if args.verbose else NULL_HOOKS
    config = InferenceConfig(
        fault_policy=policy, tracer=tracer, metrics=metrics, hooks=hooks,
        executor=args.executor, workers=args.workers,
        collection=args.collection,
    )
    step = infer(translator, collection, rng, config=config)
    output = step.collection
    if not isinstance(output, WeightedCollection):
        output = output.to_weighted()
    stats = step.stats
    if args.trace_out:
        dump_json(tracer.to_dict(), args.trace_out)
        print(f"trace written to {args.trace_out}")
    if args.metrics_out:
        dump_json(metrics.to_dict(), args.metrics_out)
        print(f"metrics written to {args.metrics_out}")

    print(f"translated {len(output)} traces "
          f"(effective sample size {output.effective_sample_size():.1f})")
    if stats.total_faults:
        print(f"faults: failed={stats.failed} retried={stats.retried} "
              f"dropped={stats.dropped} regenerated={stats.regenerated}")
    values: Dict[Any, float] = {}
    weights = output.normalized_weights()
    for trace, weight in zip(output.items, weights):
        key = trace.return_value
        if isinstance(key, dict):
            key = tuple(sorted(key.items()))
        if isinstance(key, list):
            key = tuple(key)
        values[key] = values.get(key, 0.0) + float(weight)
    top = sorted(values.items(), key=lambda kv: -kv[1])[: args.top]
    for value, probability in top:
        print(f"P(return = {value!r}) = {probability:.4f}")
    return 0


class _KillAfterStep(Hooks):
    """SIGTERM our own process once ``steps`` SMC steps have completed.

    The CI persistence job uses this (via :data:`KILL_ENV_VAR`) to die
    mid-sequence with checkpoints on disk, then proves that ``repro
    resume`` reproduces the uninterrupted run byte for byte.  The kill
    fires at ``on_step_end`` — *before* the sequence loop writes that
    step's checkpoint — so recovery always replays at least one step.
    """

    def __init__(self, steps: int):
        if steps < 1:
            _fail_usage(f"{KILL_ENV_VAR} must be >= 1, got {steps}")
        self._remaining = steps

    def on_step_end(self, stats: Any) -> None:
        self._remaining -= 1
        if self._remaining == 0:
            os.kill(os.getpid(), signal.SIGTERM)


def _chain_translators(args: argparse.Namespace):
    """Parse the program chain and build its adjacent-edit translators.

    ``--correspondence diff`` (the default) recovers each map from the
    tree diff of the program texts; ``--correspondence derive`` aligns
    the models' profiled address spaces instead
    (:func:`repro.derive.derive_correspondence`) and needs no program
    diff at all.
    """
    if len(args.files) < 2:
        _fail_usage("need at least two programs to form an edit sequence")
    programs = [_load_program(path) for path in args.files]
    env = _parse_env(args.env)
    models = [
        lang_model(program, env=env, name=f"p{index}")
        for index, program in enumerate(programs)
    ]
    if getattr(args, "correspondence", "diff") == "derive":
        from .derive import derive_sequence_translators

        translators = derive_sequence_translators(models)
    else:
        translators = [
            CorrespondenceTranslator(
                models[index],
                models[index + 1],
                diff_correspondence(programs[index], programs[index + 1]),
            )
            for index in range(len(models) - 1)
        ]
    return programs, models, translators


def _sequence_config(args: argparse.Namespace, metrics, hooks) -> InferenceConfig:
    return InferenceConfig(
        resample="adaptive",
        metrics=metrics,
        hooks=hooks,
        executor=args.executor,
        workers=args.workers,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        collection=getattr(args, "collection", "object"),
    )


def _emit_sequence_outputs(args, collection, steps, metrics) -> None:
    if args.metrics_out:
        dump_json(metrics.to_dict(), args.metrics_out)
        print(f"metrics written to {args.metrics_out}")
    if args.out:
        from .store import dumps

        body = dumps(collection)
        with open(args.out, "wb") as handle:
            handle.write(body)
        print(f"final collection written to {args.out} ({len(body)} bytes)")
    print(
        f"sequence complete: {len(steps)} step(s), "
        f"{len(collection)} particles, "
        f"effective sample size {collection.effective_sample_size():.1f}"
    )


def _cmd_sequence(args: argparse.Namespace) -> int:
    _programs, models, translators = _chain_translators(args)
    rng = np.random.default_rng(args.seed)

    traces, log_weights = [], []
    for _ in range(args.num_samples):
        trace, log_weight = models[0].generate(rng)
        traces.append(trace)
        log_weights.append(log_weight)
    collection = WeightedCollection(traces, log_weights).resample(rng)

    metrics = MetricsRegistry() if args.metrics_out else NULL_METRICS
    hooks: Hooks = _StepTableHooks() if args.verbose else NULL_HOOKS
    kill_after = os.environ.get(KILL_ENV_VAR)
    if kill_after is not None:
        hooks = CompositeHooks([hooks, _KillAfterStep(int(kill_after))])
    config = _sequence_config(args, metrics, hooks)

    steps = infer_sequence(translators, collection, rng, config=config)
    _emit_sequence_outputs(args, steps[-1].collection, steps, metrics)
    return 0


def _cmd_resume(args: argparse.Namespace) -> int:
    from .store import CheckpointManager

    _programs, _models, translators = _chain_translators(args)
    manager = CheckpointManager(args.checkpoint_dir, every=args.checkpoint_every)
    try:
        checkpoint = manager.load_latest()
    except SchemaVersionError as error:
        _fail_usage(f"incompatible checkpoint: {error}")
    if checkpoint is None:
        _fail_usage(f"no usable checkpoint found in {args.checkpoint_dir}")
    if checkpoint.rng is None:
        _fail_usage(
            f"checkpoint {checkpoint.path} carries no RNG state and cannot "
            "resume deterministically"
        )
    completed = checkpoint.step + 1
    if completed > len(translators):
        _fail_usage(
            f"checkpoint {checkpoint.path} is at step {checkpoint.step}, but the "
            f"given chain only has {len(translators)} edit(s)"
        )
    print(f"resuming from {checkpoint.path} (step {checkpoint.step} complete)")

    metrics = MetricsRegistry() if args.metrics_out else NULL_METRICS
    hooks: Hooks = _StepTableHooks() if args.verbose else NULL_HOOKS
    config = _sequence_config(args, metrics, hooks)

    remaining = translators[completed:]
    if remaining:
        steps = infer_sequence(
            remaining, checkpoint.collection, checkpoint.rng,
            config=config, step_offset=completed,
        )
        collection = steps[-1].collection
    else:
        steps, collection = [], checkpoint.collection
    _emit_sequence_outputs(args, collection, steps, metrics)
    return 0


def _cmd_session(args: argparse.Namespace) -> int:
    from .experiments.session_demo import SESSION_WORKFLOWS

    runner = SESSION_WORKFLOWS[args.name]
    report = runner(
        num_particles=args.num_samples,
        seed=args.seed,
        store_dir=args.store_dir,
    )
    print(
        f"session {report['session_id']}: {report['num_edits']} edits, "
        f"{report['session_metrics']['session.particles_translated']['value']:.0f} "
        "particle translations"
    )
    if args.store_dir:
        print(f"session persisted to {args.store_dir}")
    if args.metrics_out:
        dump_json(
            {
                "session": report["session_metrics"],
                "manager": report["manager_metrics"],
                "history": report["history"],
                "summaries": report["summaries"],
            },
            args.metrics_out,
        )
        print(f"metrics written to {args.metrics_out}")
    return 0


def _parse_priorities(pairs: Optional[List[str]]) -> Dict[str, int]:
    priorities: Dict[str, int] = {}
    for pair in pairs or []:
        name, eq, value = pair.partition("=")
        if not eq or not name.strip():
            _fail_usage(f"--tenant-priority expects NAME=RANK, got {pair!r}")
        try:
            priorities[name.strip()] = int(value)
        except ValueError:
            _fail_usage(f"--tenant-priority rank must be an integer, got {value!r}")
    return priorities


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .service import InferenceService, ServiceConfig

    try:
        config = ServiceConfig(
            host=args.host,
            port=args.port,
            num_shards=args.num_shards,
            shard_processes=args.shard_processes,
            replicate=args.replicate,
            collection=args.collection,
            queue_depth=args.queue_depth,
            max_sessions_per_tenant=args.max_sessions_per_tenant,
            max_inflight_per_tenant=args.max_inflight_per_tenant,
            default_deadline_s=args.default_deadline_s,
            max_deadline_s=args.max_deadline_s,
            wedged_after_s=args.wedged_after_s,
            tenant_priorities=_parse_priorities(args.tenant_priority),
            store_dir=args.store_dir,
            checkpoint_keep=args.checkpoint_keep,
            num_particles=args.num_particles,
        )
    except (TypeError, ValueError) as error:
        _fail_usage(str(error))
    service = InferenceService(config)

    async def run() -> None:
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, stop.set)
        serve_task = asyncio.create_task(service.serve())
        started_task = asyncio.create_task(service.started.wait())
        done, _ = await asyncio.wait(
            {serve_task, started_task}, return_when=asyncio.FIRST_COMPLETED
        )
        if serve_task in done:
            # Startup failed (bind error, shard spawn/handshake failure):
            # surface the exception instead of waiting forever.
            started_task.cancel()
            serve_task.result()
            return
        print(f"serving on {service.host}:{service.port}", flush=True)
        if service.recovered_sessions:
            print(
                f"recovered {len(service.recovered_sessions)} session(s) in "
                f"{service.recovery_seconds:.3f}s: "
                f"{', '.join(service.recovered_sessions)}",
                flush=True,
            )
        if args.port_file:
            # The handshake file scripts wait on: written only after the
            # socket is accepting and recovery has finished.
            with open(args.port_file, "w") as handle:
                handle.write(f"{service.port}\n")
        await stop.wait()
        print("shutting down", flush=True)
        await service.stop()
        serve_task.cancel()
        try:
            await serve_task
        except asyncio.CancelledError:
            pass

    try:
        asyncio.run(run())
    except SchemaVersionError as error:
        # A shard process refused the router's wire schema (mismatched
        # builds): configuration problem, same exit-code rung as a
        # newer-schema checkpoint.
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from .service import LoadgenConfig, run_loadgen

    try:
        config = LoadgenConfig(
            workload=args.workload,
            num_sessions=args.sessions,
            ops_per_session=args.ops,
            posterior_every=args.posterior_every,
            concurrency=args.concurrency,
            num_particles=args.num_particles,
            deadline_s=args.deadline_s,
            tenant=args.tenant,
            seed=args.seed,
            max_attempts=args.max_attempts,
        )
    except ValueError as error:
        _fail_usage(str(error))
    summary = run_loadgen(args.host, args.port, config)
    print(
        f"{summary['workload']}: {summary['ok']}/{summary['requests']} ok, "
        f"rejection rate {summary['rejection_rate']:.1%}, "
        f"{summary['retries']} retries, "
        f"{summary['throughput_rps']:.1f} req/s"
    )
    for op, latency in summary["latency"].items():
        print(
            f"  {op:>9}: p50={latency['p50_ms']:.1f}ms "
            f"p99={latency['p99_ms']:.1f}ms n={latency['count']}"
        )
    if summary["rejected"]:
        for code, count in summary["rejected"].items():
            print(f"  rejected[{code}] = {count}")
    if args.out:
        dump_json(summary, args.out)
        print(f"summary written to {args.out}")
    if args.fail_on_rejections and summary["rejected"]:
        return EXIT_SERVICE
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from .experiments.harness import save_rows

    tracer = Tracer() if args.trace_out else None
    metrics = MetricsRegistry() if args.metrics_out else NULL_METRICS

    if args.name == "fig8":
        from .experiments.fig8 import Fig8Config, run_fig8

        config = (
            Fig8Config(
                repetitions=2,
                trace_counts=(3, 10),
                mcmc_iterations=(10, 30),
                gold_iterations=2000,
                executor=args.executor,
                workers=args.workers,
                collection=args.collection,
            )
            if args.quick
            else Fig8Config(
                executor=args.executor,
                workers=args.workers,
                collection=args.collection,
            )
        )
        result = run_fig8(config, tracer=tracer, metrics=metrics)
    else:
        from .experiments.fig9 import Fig9Config, run_fig9

        config = (
            Fig9Config(
                num_train_words=1500,
                num_test_words=4,
                trace_counts=(1, 3),
                gibbs_sweeps=(1,),
                executor=args.executor,
                workers=args.workers,
            )
            if args.quick
            else Fig9Config(executor=args.executor, workers=args.workers)
        )
        result = run_fig9(config, tracer=tracer, metrics=metrics)

    if args.out:
        save_rows(result.rows, args.out)
        print(f"rows written to {args.out}")
    if args.trace_out:
        dump_json(result.tracer.to_dict(), args.trace_out)
        print(f"trace written to {args.trace_out}")
    if args.metrics_out:
        dump_json(metrics.to_dict(), args.metrics_out)
        print(f"metrics written to {args.metrics_out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="incremental inference for probabilistic programs"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    parse_cmd = subparsers.add_parser("parse", help="parse and pretty-print a program")
    parse_cmd.add_argument("file")
    parse_cmd.set_defaults(handler=_cmd_parse)

    check_cmd = subparsers.add_parser("check", help="run static checks on a program")
    check_cmd.add_argument("file")
    check_cmd.add_argument("--env", action="append", metavar="NAME=VALUE",
                           help="declare a program parameter (value unused)")
    check_cmd.set_defaults(handler=_cmd_check)

    lint_cmd = subparsers.add_parser(
        "lint", help="run the static-analysis suite (repro.analysis)"
    )
    lint_cmd.add_argument(
        "targets", nargs="+", metavar="TARGET",
        help="one program file (program checks), two files OLD NEW "
             "(program + correspondence + edit-soundness checks), or the "
             "literal 'bundled' (every shipped program, edit pair, "
             "correspondence, and config)",
    )
    lint_cmd.add_argument("--env", action="append", metavar="NAME=VALUE",
                          help="declare a program parameter")
    lint_cmd.add_argument("--format", choices=("text", "json"), default="text",
                          help="report format (default: text)")
    lint_cmd.add_argument("--strict", action="store_true",
                          help="treat warnings as failures (exit 4); info "
                               "findings never affect the exit code")
    lint_cmd.add_argument("--out", metavar="PATH",
                          help="also write the JSON report to this file "
                               "(the CI artifact)")
    lint_cmd.add_argument("--static-profile", metavar="PATH", dest="static_profile",
                          help="also write the static model profiles (and, "
                               "for pairs, the columnar pre-flight plan) as "
                               "JSON to this file; with 'bundled', covers "
                               "every bundled model pair")
    lint_cmd.add_argument("--derive", action="store_true",
                          help="with OLD NEW: validate the automatically "
                               "derived correspondence (repro.derive) instead "
                               "of the tree-diff label map; edit findings then "
                               "cite the derivation report")
    lint_cmd.set_defaults(handler=_cmd_lint)

    run_cmd = subparsers.add_parser("run", help="sample traces of a program")
    run_cmd.add_argument("file")
    run_cmd.add_argument("--env", action="append", metavar="NAME=VALUE")
    run_cmd.add_argument("-n", "--num-samples", type=int, default=5)
    run_cmd.add_argument("--seed", type=int, default=None)
    run_cmd.set_defaults(handler=_cmd_run)

    enum_cmd = subparsers.add_parser(
        "enumerate", help="exact return-value posterior (finite discrete programs)"
    )
    enum_cmd.add_argument("file")
    enum_cmd.add_argument("--env", action="append", metavar="NAME=VALUE")
    enum_cmd.set_defaults(handler=_cmd_enumerate)

    diff_cmd = subparsers.add_parser(
        "diff", help="label correspondence between two programs"
    )
    diff_cmd.add_argument("old")
    diff_cmd.add_argument("new")
    diff_cmd.set_defaults(handler=_cmd_diff)

    derive_cmd = subparsers.add_parser(
        "derive", help="derive the address correspondence between two programs"
    )
    derive_cmd.add_argument("old")
    derive_cmd.add_argument("new")
    derive_cmd.add_argument("--env", action="append", metavar="NAME=VALUE")
    derive_cmd.add_argument("-n", "--num-samples", type=_positive_int, default=24,
                            help="profiling simulations per model when exact "
                                 "enumeration is impossible (default: 24)")
    derive_cmd.add_argument("--seed", type=int, default=0,
                            help="profiling seed (derivation is deterministic "
                                 "for a fixed seed; default: 0)")
    derive_cmd.add_argument("--format", choices=("text", "json"), default="text",
                            help="report format (default: text)")
    derive_cmd.add_argument("--out", metavar="PATH",
                            help="also write the JSON derivation report to "
                                 "this file (the CI artifact)")
    derive_cmd.set_defaults(handler=_cmd_derive)

    translate_cmd = subparsers.add_parser(
        "translate", help="incremental inference from OLD to NEW"
    )
    translate_cmd.add_argument("old")
    translate_cmd.add_argument("new")
    translate_cmd.add_argument("--env", action="append", metavar="NAME=VALUE")
    translate_cmd.add_argument("-n", "--num-samples", type=int, default=1000)
    translate_cmd.add_argument("--seed", type=int, default=None)
    translate_cmd.add_argument("--top", type=int, default=10,
                               help="show the top-K return values")
    translate_cmd.add_argument("--fault-policy", choices=FaultPolicy.MODES,
                               default="fail_fast",
                               help="what a failed particle translation does: "
                                    "crash (fail_fast), lose the particle (drop), "
                                    "or retry and resample it from the prior "
                                    "(regenerate)")
    translate_cmd.add_argument("--max-retries", type=int, default=2,
                               help="translation retries per particle before "
                                    "'regenerate' falls back to the prior")
    translate_cmd.add_argument("--trace-out", metavar="PATH",
                               help="write the span-tree trace as strict JSON")
    translate_cmd.add_argument("--metrics-out", metavar="PATH",
                               help="write the metrics snapshot as strict JSON")
    translate_cmd.add_argument("-v", "--verbose", action="store_true",
                               help="print a one-line summary per SMC step")
    _add_executor_arguments(translate_cmd)
    translate_cmd.set_defaults(handler=_cmd_translate)

    sequence_cmd = subparsers.add_parser(
        "sequence", help="iterated incremental inference over an edit chain"
    )
    sequence_cmd.add_argument("files", nargs="+", metavar="FILE",
                              help="the programs of the edit chain, in order")
    sequence_cmd.add_argument("--env", action="append", metavar="NAME=VALUE")
    sequence_cmd.add_argument("-n", "--num-samples", type=int, default=1000)
    sequence_cmd.add_argument("--seed", type=int, default=None)
    sequence_cmd.add_argument("--correspondence", choices=("diff", "derive"),
                              default="diff",
                              help="how each edit's address map is obtained: "
                                   "'diff' recovers it from the program tree "
                                   "diff, 'derive' aligns the profiled address "
                                   "spaces (repro.derive; default: diff)")
    _add_checkpoint_arguments(sequence_cmd)
    sequence_cmd.add_argument("--out", metavar="PATH",
                              help="write the final collection as a canonical "
                                   "store-codec document (byte-stable)")
    sequence_cmd.add_argument("--metrics-out", metavar="PATH",
                              help="write the metrics snapshot as strict JSON")
    sequence_cmd.add_argument("-v", "--verbose", action="store_true",
                              help="print a one-line summary per SMC step")
    _add_executor_arguments(sequence_cmd)
    sequence_cmd.set_defaults(handler=_cmd_sequence)

    resume_cmd = subparsers.add_parser(
        "resume", help="continue a killed sequence run from its latest checkpoint"
    )
    resume_cmd.add_argument("files", nargs="+", metavar="FILE",
                            help="the same program chain the sequence run used")
    resume_cmd.add_argument("--env", action="append", metavar="NAME=VALUE")
    resume_cmd.add_argument("--correspondence", choices=("diff", "derive"),
                            default="diff",
                            help="must match the interrupted run's setting so "
                                 "the resumed steps translate identically "
                                 "(default: diff)")
    _add_checkpoint_arguments(resume_cmd, required=True)
    resume_cmd.add_argument("--out", metavar="PATH",
                            help="write the final collection as a canonical "
                                 "store-codec document (byte-stable)")
    resume_cmd.add_argument("--metrics-out", metavar="PATH",
                            help="write the metrics snapshot as strict JSON")
    resume_cmd.add_argument("-v", "--verbose", action="store_true",
                            help="print a one-line summary per SMC step")
    _add_executor_arguments(resume_cmd)
    resume_cmd.set_defaults(handler=_cmd_resume)

    session_cmd = subparsers.add_parser(
        "session", help="run a scripted multi-edit inference-session workflow"
    )
    session_cmd.add_argument("name", choices=("fig8", "fig10"),
                             help="fig8: robust regression on the embedded PPL; "
                                  "fig10: GMM on the dependency-graph runtime")
    session_cmd.add_argument("-n", "--num-samples", type=int, default=200,
                             help="particles in the session's collection")
    session_cmd.add_argument("--seed", type=int, default=0)
    session_cmd.add_argument("--store-dir", metavar="DIR",
                             help="persist the session to this store directory")
    session_cmd.add_argument("--metrics-out", metavar="PATH",
                             help="write per-session metrics, edit history, and "
                                  "summaries as strict JSON")
    session_cmd.set_defaults(handler=_cmd_session)

    serve_cmd = subparsers.add_parser(
        "serve", help="run the multi-tenant incremental-inference service"
    )
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument("--port", type=int, default=0,
                           help="listen port (0 = ephemeral; see --port-file)")
    serve_cmd.add_argument("--port-file", metavar="PATH",
                           help="write the bound port here once the server is "
                                "accepting and recovery has finished (the "
                                "handshake scripts wait on)")
    serve_cmd.add_argument("--store-dir", metavar="DIR", default=None,
                           help="durability root (commit checkpoints + LRU "
                                "spill); omit for a purely in-memory server "
                                "with no crash recovery")
    serve_cmd.add_argument("--shard-processes", type=int, default=0,
                           metavar="N",
                           help="promote shards to N worker processes behind "
                                "a router (0 = single-process worker threads); "
                                "sessions are spread by rendezvous-hashed "
                                "placement and fail over on process death")
    serve_cmd.add_argument("--replicate", action="store_true",
                           help="process mode: refresh a warm in-memory "
                                "replica on the placement runner-up after "
                                "every acked mutation (requires --store-dir)")
    serve_cmd.add_argument("--collection", choices=("object", "columnar"),
                           default="object",
                           help="particle-collection mode for served "
                                "sessions; columnar steps the vectorized "
                                "runtime cannot represent spill to the "
                                "object path per step")
    serve_cmd.add_argument("--num-shards", type=_positive_int, default=2,
                           help="worker shards (sessions hash to a shard)")
    serve_cmd.add_argument("--queue-depth", type=int, default=16,
                           help="bounded per-shard queue (0 = unbounded, "
                                "which repro lint flags)")
    serve_cmd.add_argument("--max-sessions-per-tenant", type=int, default=8)
    serve_cmd.add_argument("--max-inflight-per-tenant", type=int, default=4)
    serve_cmd.add_argument("--default-deadline-s", type=float, default=30.0)
    serve_cmd.add_argument("--max-deadline-s", type=float, default=120.0)
    serve_cmd.add_argument("--wedged-after-s", type=float, default=2.0,
                           help="serve posterior reads degraded (from the "
                                "last commit snapshot) once the worker has "
                                "been busy this long")
    serve_cmd.add_argument("--tenant-priority", action="append",
                           metavar="NAME=RANK",
                           help="tenant priority for load shedding "
                                "(higher survives longer; repeatable)")
    serve_cmd.add_argument("--checkpoint-keep", type=_positive_int, default=2,
                           help="commit snapshots kept per session (>= 2 "
                                "keeps a fallback against torn writes)")
    serve_cmd.add_argument("-n", "--num-particles", type=_positive_int,
                           default=100,
                           help="default particle count for created sessions")
    serve_cmd.set_defaults(handler=_cmd_serve)

    loadgen_cmd = subparsers.add_parser(
        "loadgen", help="drive a deterministic workload against a service"
    )
    loadgen_cmd.add_argument("--host", default="127.0.0.1")
    loadgen_cmd.add_argument("--port", type=int, required=True)
    loadgen_cmd.add_argument("--workload",
                             choices=("gauss-chain", "gmm-edits",
                                      "fig8-session"),
                             default="gauss-chain")
    loadgen_cmd.add_argument("--sessions", type=_positive_int, default=4)
    loadgen_cmd.add_argument("--ops", type=_positive_int, default=5,
                             help="mutating ops per session")
    loadgen_cmd.add_argument("--posterior-every", type=int, default=2,
                             help="interleave a posterior read every N ops "
                                  "(0 disables)")
    loadgen_cmd.add_argument("--concurrency", type=_positive_int, default=2)
    loadgen_cmd.add_argument("-n", "--num-particles", type=_positive_int,
                             default=50)
    loadgen_cmd.add_argument("--deadline-s", type=float, default=None)
    loadgen_cmd.add_argument("--tenant", default="bench")
    loadgen_cmd.add_argument("--seed", type=int, default=0)
    loadgen_cmd.add_argument("--max-attempts", type=_positive_int, default=4,
                             help="retry budget per request (1 = no retries)")
    loadgen_cmd.add_argument("--out", metavar="PATH",
                             help="write the summary as strict JSON")
    loadgen_cmd.add_argument("--fail-on-rejections", action="store_true",
                             help="exit 5 if any request was rejected after "
                                  "its retry budget")
    loadgen_cmd.set_defaults(handler=_cmd_loadgen)

    experiment_cmd = subparsers.add_parser(
        "experiment", help="run a figure reproduction"
    )
    experiment_cmd.add_argument("name", choices=("fig8", "fig9"))
    experiment_cmd.add_argument("--quick", action="store_true",
                                help="reduced configuration for a fast pass")
    experiment_cmd.add_argument("--out", metavar="PATH",
                                help="write result rows as strict JSON")
    experiment_cmd.add_argument("--trace-out", metavar="PATH",
                                help="write the span-tree trace as strict JSON")
    experiment_cmd.add_argument("--metrics-out", metavar="PATH",
                                help="write the metrics snapshot as strict JSON")
    _add_executor_arguments(experiment_cmd)
    experiment_cmd.set_defaults(handler=_cmd_experiment)

    return parser


def _add_checkpoint_arguments(cmd: argparse.ArgumentParser, required: bool = False) -> None:
    cmd.add_argument("--checkpoint-dir", metavar="DIR", required=required,
                     default=None,
                     help="directory for atomic, checksummed step checkpoints")
    cmd.add_argument("--checkpoint-every", type=_positive_int, default=1,
                     metavar="K",
                     help="checkpoint cadence in steps (the final step is "
                          "always checkpointed)")


def _add_executor_arguments(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument("--executor", choices=InferenceConfig.EXECUTOR_BACKENDS,
                     default=None,
                     help="particle-execution backend for the SMC translate "
                          "phase (default: inline loop); all backends are "
                          "byte-identical for a fixed seed")
    cmd.add_argument("--workers", type=_positive_int, default=None,
                     help="worker count for --executor (default: core count)")
    cmd.add_argument("--collection", choices=InferenceConfig.COLLECTION_MODES,
                     default="object",
                     help="particle-population representation: 'object' keeps "
                          "one trace per particle; 'columnar' stores the "
                          "population address-major and vectorizes each SMC "
                          "step (bitwise identical for parameter-only edits, "
                          "spills to 'object' for unsupported steps)")


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ServiceError as error:
        print(f"repro {args.command}: service error: {error}", file=sys.stderr)
        return EXIT_SERVICE
    except ReproError as error:
        print(f"repro {args.command}: inference fault: {error}", file=sys.stderr)
        return EXIT_FAULT


if __name__ == "__main__":
    sys.exit(main())
