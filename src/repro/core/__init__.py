"""Core embedded PPL and the trace-translation framework.

This package implements the paper's primary contribution for the
lightweight embedded language:

* :mod:`repro.core.model` — probabilistic programs as traced Python
  functions (the design of Wingate et al. [44] used by the paper's Julia
  implementation);
* :mod:`repro.core.translator` / :mod:`repro.core.corr_translator` —
  trace translators (Sections 4-5);
* :mod:`repro.core.smc` — Algorithm 2 and multi-step SMC;
* :mod:`repro.core.mcmc` — rejuvenation and baseline kernels;
* :mod:`repro.core.enumerate` — exact inference for finite discrete
  models (ground truth in tests and the overview experiment).
"""

from ..errors import (
    RECOVERABLE_ERRORS,
    DegeneracyError,
    ModelExecutionError,
    NumericalError,
    ReproError,
    SupportError,
    TranslationError,
)
from .address import Address, addr
from .columnar import ColumnarCollection, ColumnarSpill
from .config import InferenceConfig, RegenerateFn
from .annealing import (
    annealed_importance_sampling,
    full_identity_correspondence,
    interpolated_schedule,
    observation_schedule,
    sequential_observations,
)
from .correspondence import Correspondence
from .corr_translator import CorrespondenceTranslator, LogProbCache, ProposalFn, ProposalMap
from .enumerate import (
    enumerate_traces,
    exact_choice_marginal,
    exact_expectation,
    exact_posterior_sampler,
    exact_return_distribution,
    log_normalizer,
)
from .importance import (
    importance_sampling,
    log_marginal_likelihood,
    rejection_sampling,
    sampling_importance_resampling,
)
from .handlers import (
    GenerateHandler,
    ImpossibleConstraintError,
    MissingChoiceError,
    ScoreHandler,
    SimulateHandler,
    TraceHandler,
    log_sum_exp,
)
from .mcmc import (
    Kernel,
    chain,
    custom_mh_site,
    cycle,
    gibbs_site,
    gibbs_sweep,
    independent_mh_site,
    regenerate,
    repeat,
    single_site_mh,
)
from .model import Model, probabilistic
from .smc import FaultPolicy, SMCStats, SMCStep, infer, infer_sequence, translate_particle
from .trace import ChoiceMap, ChoiceRecord, ObservationRecord, Trace
from .translator import TraceTranslator, TranslationResult, validate_result
from .weighted import (
    RESAMPLING_SCHEMES,
    WeightedCollection,
    effective_sample_size,
    log_sum_exp_array,
)

__all__ = [
    "RECOVERABLE_ERRORS",
    "DegeneracyError",
    "ModelExecutionError",
    "NumericalError",
    "ReproError",
    "SupportError",
    "TranslationError",
    "Address",
    "addr",
    "ColumnarCollection",
    "ColumnarSpill",
    "InferenceConfig",
    "RegenerateFn",
    "annealed_importance_sampling",
    "full_identity_correspondence",
    "interpolated_schedule",
    "observation_schedule",
    "sequential_observations",
    "Correspondence",
    "CorrespondenceTranslator",
    "LogProbCache",
    "ProposalFn",
    "ProposalMap",
    "enumerate_traces",
    "exact_choice_marginal",
    "exact_expectation",
    "exact_posterior_sampler",
    "exact_return_distribution",
    "log_normalizer",
    "importance_sampling",
    "log_marginal_likelihood",
    "rejection_sampling",
    "sampling_importance_resampling",
    "GenerateHandler",
    "ImpossibleConstraintError",
    "MissingChoiceError",
    "ScoreHandler",
    "SimulateHandler",
    "TraceHandler",
    "log_sum_exp",
    "Kernel",
    "chain",
    "custom_mh_site",
    "cycle",
    "gibbs_site",
    "gibbs_sweep",
    "independent_mh_site",
    "regenerate",
    "repeat",
    "single_site_mh",
    "Model",
    "probabilistic",
    "FaultPolicy",
    "SMCStats",
    "SMCStep",
    "infer",
    "translate_particle",
    "infer_sequence",
    "ChoiceMap",
    "ChoiceRecord",
    "ObservationRecord",
    "Trace",
    "TraceTranslator",
    "TranslationResult",
    "validate_result",
    "RESAMPLING_SCHEMES",
    "WeightedCollection",
    "effective_sample_size",
    "log_sum_exp_array",
]
