"""Addresses of random choices.

The lightweight embedded PPL follows the transformational-compilation
design of Wingate et al. [44], as in the paper's Julia implementation
(Section 7.1): every random choice is annotated with an *address* that
uniquely identifies it within a trace.  Addresses may be dynamically
computed (e.g. ``addr("y", i)`` inside a loop, mirroring ``addr_y(i)``
in Listings 1-4), and the user-supplied correspondence of Section 5 is a
mapping between addresses of the new and the old program.

An address is a tuple of hashable components.  Single-component
addresses may be written as plain strings; :func:`addr` normalizes
either form.
"""

from __future__ import annotations

from typing import Hashable, Tuple

__all__ = ["Address", "addr"]

Address = Tuple[Hashable, ...]


def addr(*components: Hashable) -> Address:
    """Build an address from components, flattening nested addresses.

    >>> addr("slope")
    ('slope',)
    >>> addr("y", 3)
    ('y', 3)
    >>> addr(addr("hidden", 2), "obs")
    ('hidden', 2, 'obs')
    """
    flattened = []
    for component in components:
        if isinstance(component, tuple):
            flattened.extend(component)
        else:
            flattened.append(component)
    if not flattened:
        raise ValueError("an address needs at least one component")
    return tuple(flattened)


def normalize_address(address) -> Address:
    """Coerce a user-facing address (string or tuple) to canonical form."""
    if isinstance(address, tuple):
        if not address:
            raise ValueError("an address needs at least one component")
        return address
    return (address,)
