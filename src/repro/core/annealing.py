"""Sequential-observation SMC as a special case of trace translation.

Related work (Section 8) notes that previous SMC-for-PPL systems handle
one specific kind of incrementality: *sequential observation of data*.
The paper's framework strictly generalizes it, and this module makes
that concrete: a sequence of programs that differ only by additional
observations (and possibly additional latent structure, as in particle
filtering for state-space models) is translated with the *full identity*
correspondence, and Algorithm 2 reduces exactly to a classic particle
filter — the weight increment for each step is the likelihood of the
newly observed data.

Entry points:

* :func:`observation_schedule` — build the program sequence
  ``P_0, P_1, ...`` from a base model, per-step arguments, and per-step
  observation batches;
* :func:`sequential_observations` — run the whole filter and return the
  per-step results (reusing :func:`repro.core.smc.infer_sequence`).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

from .config import InferenceConfig
from .correspondence import Correspondence
from .corr_translator import CorrespondenceTranslator
from .model import ChoiceMapLike, Model
from .smc import SMCStep, infer_sequence
from .weighted import WeightedCollection

__all__ = [
    "full_identity_correspondence",
    "observation_schedule",
    "sequential_observations",
    "interpolated_schedule",
    "annealed_importance_sampling",
]


def _every_address(_address: Any) -> bool:
    return True


def full_identity_correspondence() -> Correspondence:
    """Identity over *all* addresses: reuse every latent that persists.

    The predicate is a module-level function (not a lambda) so the
    correspondence — and every translator built on it — stays picklable
    for the ``process`` particle executor.
    """
    return Correspondence.identity_by_predicate(_every_address)


def observation_schedule(
    base: Model,
    batches: Sequence[ChoiceMapLike],
    args_per_step: Optional[Sequence[Tuple[Any, ...]]] = None,
) -> List[Model]:
    """Programs ``P_0..P_T`` with cumulatively more observations.

    ``P_k`` conditions on batches ``0..k``; if ``args_per_step`` is
    given, ``P_k`` additionally uses ``args_per_step[k]`` (e.g. the
    number of time steps of a state-space model, so new latents appear
    along with their observations).
    """
    if args_per_step is not None and len(args_per_step) != len(batches):
        raise ValueError("args_per_step must match the number of batches")
    models: List[Model] = []
    current = base
    for index, batch in enumerate(batches):
        if args_per_step is not None:
            current = current.with_args(*args_per_step[index])
        current = current.condition(batch)
        models.append(current)
    return models


def sequential_observations(
    models: Sequence[Model],
    num_particles: int,
    rng: np.random.Generator,
    mcmc_kernels: Optional[Sequence] = None,
    *,
    config: Optional[InferenceConfig] = None,
) -> Tuple[WeightedCollection, List[SMCStep]]:
    """Run a particle filter over an observation schedule.

    Initializes particles from ``models[0]`` (latents from the prior,
    weights equal to the first batch's likelihood), then runs one
    Algorithm-2 step per subsequent program with the full identity
    correspondence.  Returns the final weighted collection and the
    per-step diagnostics.

    ``config`` defaults to the classic particle-filter setting
    (adaptive systematic resampling at half the particle count).  The
    config's ``executor``/``workers`` fields apply here as in
    :func:`~repro.core.smc.infer`: every filtering step's translate
    phase dispatches through the selected backend (one shared pool
    across steps), and results stay byte-identical across backends for
    a fixed seed.
    """
    if config is None:
        config = InferenceConfig(resample="adaptive", resampling_scheme="systematic")
    if num_particles < 1:
        raise ValueError("need at least one particle")
    if not models:
        raise ValueError("need at least one model in the schedule")

    traces, log_weights = [], []
    for _ in range(num_particles):
        trace, log_weight = models[0].generate(rng)
        traces.append(trace)
        log_weights.append(log_weight)
    collection = WeightedCollection(traces, log_weights)
    if len(models) == 1:
        return collection, []

    correspondence = full_identity_correspondence()
    translators = [
        CorrespondenceTranslator(models[i], models[i + 1], correspondence)
        for i in range(len(models) - 1)
    ]
    steps = infer_sequence(
        translators, collection, rng, mcmc_kernels=mcmc_kernels, config=config
    )
    return steps[-1].collection, steps


def interpolated_schedule(
    make_model: Callable[[float], Model], num_steps: int
) -> List[Model]:
    """Models along a tempering path ``make_model(0) .. make_model(1)``.

    ``make_model(t)`` must return the program at inverse temperature
    ``t`` (e.g. with observation strength or a prior parameter
    interpolated); all latents should keep their addresses so the full
    identity correspondence reuses them.
    """
    if num_steps < 2:
        raise ValueError("a tempering path needs at least two steps")
    return [make_model(i / (num_steps - 1)) for i in range(num_steps)]


def annealed_importance_sampling(
    make_model: Callable[[float], Model],
    num_steps: int,
    num_particles: int,
    rng: np.random.Generator,
    mcmc_kernel_for: Optional[Callable[[Model], Any]] = None,
    *,
    config: Optional[InferenceConfig] = None,
    step_offset: int = 0,
    initial_collection: Optional[WeightedCollection] = None,
    initial_log_ratio: float = 0.0,
) -> Tuple[WeightedCollection, float]:
    """Annealed importance sampling [Neal 2001] via trace translation.

    Related work (Section 8) observes that solving a sequence of
    incrementally modified inference problems "is often used
    instrumentally in statistics as a means of solving the final
    inference problem more efficiently", citing AIS.  This function
    realizes that use: particles start at ``make_model(0)`` (typically
    the prior or a tractable surrogate) and are translated along the
    interpolation path to ``make_model(1)``, optionally rejuvenated at
    each rung with ``mcmc_kernel_for(model_k)``.

    Returns the final weighted collection and the log of the estimated
    normalizing-constant ratio ``log(Z_1 / Z_0)``.

    As with :func:`sequential_observations`, the config's ``executor``
    and ``workers`` select the particle backend for every rung's
    translate phase (pass a picklable ``make_model`` product — module-
    level model functions — when using ``"process"``).

    When the config sets ``checkpoint_dir``, every rung's collection and
    the RNG state at the rung boundary are snapshotted through
    :class:`~repro.store.CheckpointManager` (cadence
    ``checkpoint_every``; the final rung is always saved).  Each
    checkpoint's ``extra`` carries the running ``log_ratio``, so a
    killed run resumes byte-identically::

        ck = CheckpointManager(directory).load_latest()
        annealed_importance_sampling(
            make_model, num_steps, num_particles, ck.rng,
            step_offset=ck.step + 1,
            initial_collection=ck.collection,
            initial_log_ratio=ck.extra["log_ratio"],
        )

    ``step_offset`` counts completed rungs: rung ``k`` translates
    ``models[k]`` to ``models[k + 1]``.
    """
    from .smc import _resolve_config_checkpoints, infer

    if config is None:
        config = InferenceConfig(resample="adaptive", resampling_scheme="systematic")
    if step_offset < 0:
        raise ValueError(f"step_offset must be >= 0, got {step_offset}")
    models = interpolated_schedule(make_model, num_steps)
    if step_offset >= len(models):
        raise ValueError(
            f"step_offset {step_offset} leaves no rungs in a {num_steps}-step path"
        )
    if initial_collection is not None:
        collection = initial_collection
    elif step_offset != 0:
        raise ValueError("resuming with step_offset requires initial_collection")
    else:
        traces, log_weights = [], []
        for _ in range(num_particles):
            trace, log_weight = models[0].generate(rng)
            traces.append(trace)
            log_weights.append(log_weight)
        collection = WeightedCollection(traces, log_weights)

    checkpoints = _resolve_config_checkpoints(config)
    correspondence = full_identity_correspondence()
    log_ratio = float(initial_log_ratio)
    remaining = list(zip(models, models[1:]))[step_offset:]
    for local_index, (previous, current) in enumerate(remaining):
        step_index = step_offset + local_index
        translator = CorrespondenceTranslator(previous, current, correspondence)
        kernel = mcmc_kernel_for(current) if mcmc_kernel_for is not None else None
        step = infer(translator, collection, rng, mcmc_kernel=kernel, config=config)
        log_ratio += step.stats.log_mean_weight_increment
        collection = step.collection
        if checkpoints is not None:
            checkpoints.maybe_save(
                step_index,
                collection,
                rng=rng,
                extra={"log_ratio": log_ratio, "stats": step.stats},
                force=local_index == len(remaining) - 1,
            )
    return collection, log_ratio
