"""Columnar (structure-of-arrays) particle collections.

:class:`ColumnarCollection` stores an embedded-PPL particle population
address-major: one float64 array of values and one of log probabilities
per address, plus a log-weight vector — the trie-of-arrays layout of
GenJAX's vmap-based SMC (see PAPERS.md).  The columnar SMC step
(:func:`columnar_infer_step`) runs the target program **once** with a
handler whose ``sample`` returns whole columns, so reused addresses are
re-scored with one :meth:`~repro.distributions.Distribution.log_prob_batch`
call per address and resampling is one ``np.take`` per column, instead
of one Python ``log_prob`` call and one object gather per particle.

Equivalence contract
--------------------

For parameter-only edits (every address reused, nothing sampled fresh)
the columnar step is **bitwise identical** to the object path of
:func:`repro.core.smc.infer`: batched densities mirror the scalar
operation order exactly (:mod:`repro.distributions.batch`), per-particle
trace totals use the same ``math.fsum`` reduction as
:attr:`repro.core.trace.Trace.log_prob`, and the step RNG is consumed in
the same order, so weights, evidence increments, resampling indices, and
estimates all agree byte for byte.  For structure-changing edits the
fresh choices are drawn from the step RNG in a different order
(per-address rather than per-particle), so the two paths are equal in
distribution but not bitwise.

Spilling
--------

Anything the columnar runtime cannot represent raises
:class:`ColumnarSpill`, and :func:`repro.core.smc._infer_step` falls
back to the object path for that step.  Spill triggers include:
heterogeneous address sets or orders across particles, non-numeric
choice values, translators other than a plain
:class:`~repro.core.corr_translator.CorrespondenceTranslator` (forward
or backward proposals, MCMC rejuvenation kernels, containing fault
policies), support comparisons that are ambiguous for array-valued
parameters, and models whose control flow branches on a sampled value
(an array in a ``bool`` context raises, which spills).  Spill checks
that can fire on a parameter-only edit all happen before the step
consumes any randomness, so a spilled step replays on the object path
byte-identically.

Batched return values follow the vmap convention: any ndarray in the
model's return value whose leading dimension equals the particle count
is treated as per-particle and gathered/unbatched along that axis.
"""

from __future__ import annotations

import copy as _copy
import dataclasses
import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..distributions import Distribution
from .address import Address, normalize_address
from .trace import ChoiceMap, ChoiceRecord, ObservationRecord, Trace
from .weighted import (
    RESAMPLING_SCHEMES,
    WeightedCollection,
    _log_normalized_weights,
    _normalized_weights,
    effective_sample_size,
    log_sum_exp_array,
)

__all__ = ["ColumnarCollection", "ColumnarSpill", "columnar_infer_step"]

NEG_INF = float("-inf")

#: Value-column kinds: the Python type the object path would carry.
_KINDS = ("float", "int", "bool")


class ColumnarSpill(Exception):
    """The columnar runtime cannot represent this step; use the object path.

    Deliberately **not** a :class:`~repro.errors.ReproError`: spilling is
    an internal representation decision, never a model fault, so fault
    policies must not observe (or count) it.

    ``code`` is a stable machine-readable reason (a key of
    :data:`repro.analysis.absint.plan.SPILL_CODES`) so tests, metrics,
    and the static pre-flight can match raise sites without parsing the
    human-readable ``detail``.
    """

    def __init__(self, code: str, detail: Optional[str] = None):
        if detail is None:
            # Single-argument (legacy) form: the argument is the detail.
            code, detail = "unspecified", code
        self.code = code
        self.detail = detail
        super().__init__(f"[{code}] {detail}")


# ---------------------------------------------------------------------------
# Value kinds
# ---------------------------------------------------------------------------


def _kind_of_values(values: Sequence[Any]) -> str:
    """The shared scalar kind of a value list, or spill."""
    if all(isinstance(v, (bool, np.bool_)) for v in values):
        return "bool"
    if all(isinstance(v, (int, np.integer)) and not isinstance(v, (bool, np.bool_)) for v in values):
        return "int"
    if all(isinstance(v, (float, np.floating)) for v in values):
        return "float"
    raise ColumnarSpill(
        "value-kind", f"non-numeric or mixed-kind value column: {values[:3]!r}..."
    )


def _kind_of_dtype(dtype: np.dtype) -> str:
    if dtype.kind == "b":
        return "bool"
    if dtype.kind in "iu":
        return "int"
    if dtype.kind == "f":
        return "float"
    raise ColumnarSpill("value-kind", f"unsupported sample dtype {dtype!r}")


def _restore_kind(value: float, kind: str) -> Any:
    if kind == "int":
        return int(value)
    if kind == "bool":
        return bool(value)
    return float(value)


def _column_view(column: np.ndarray, kind: str) -> np.ndarray:
    """The column as the dtype the model function should compute with."""
    if kind == "int":
        return column.astype(np.int64)
    if kind == "bool":
        return column.astype(bool)
    return column


# ---------------------------------------------------------------------------
# Distribution templates
# ---------------------------------------------------------------------------


def _has_array_params(dist: Distribution) -> bool:
    state = getattr(dist, "__dict__", None)
    if not state:
        return False
    return any(isinstance(v, np.ndarray) for v in state.values())


def _template_rebuild(dist: Distribution, transform) -> Distribution:
    """Rebuild an array-parameterized template with ``transform`` applied
    to every ndarray init field (gather / row-select)."""
    if not dataclasses.is_dataclass(dist):
        raise ColumnarSpill(
            "template",
            f"{type(dist).__name__} has array parameters but is not a "
            "dataclass; cannot gather its template",
        )
    kwargs = {}
    for f in dataclasses.fields(dist):
        if not f.init:
            continue
        value = getattr(dist, f.name)
        kwargs[f.name] = transform(value) if isinstance(value, np.ndarray) else value
    try:
        return type(dist)(**kwargs)
    except Exception as error:
        raise ColumnarSpill(
            "template", f"cannot rebuild {type(dist).__name__} template: {error!r}"
        ) from error


def _gather_dist(dist: Distribution, indices: np.ndarray) -> Distribution:
    if not _has_array_params(dist):
        return dist
    return _template_rebuild(dist, lambda arr: arr[indices])


def _unbatch_dist(dist: Distribution, index: int) -> Distribution:
    if not _has_array_params(dist):
        return dist
    return _template_rebuild(dist, lambda arr: float(arr[index]))


def _check_gatherable(dist: Distribution) -> None:
    """Fail (spill) *now*, before any RNG use, if a later resample could
    not gather this template."""
    if _has_array_params(dist):
        _gather_dist(dist, np.zeros(1, dtype=np.intp))


def _merge_dists(dists: Sequence[Distribution]) -> Distribution:
    """One template for a per-particle distribution list.

    All-equal lists collapse to the shared instance; lists varying only
    in numeric dataclass fields merge into one array-parameterized
    template.  Anything else spills.
    """
    first = dists[0]
    try:
        if all(d == first for d in dists):
            return first
    except Exception as error:
        raise ColumnarSpill(
            "dist-merge", f"ambiguous distribution equality: {error!r}"
        ) from error
    if not dataclasses.is_dataclass(first) or any(type(d) is not type(first) for d in dists):
        raise ColumnarSpill(
            "dist-merge",
            f"cannot merge heterogeneous distributions at one address: "
            f"{type(first).__name__}",
        )
    kwargs: Dict[str, Any] = {}
    for f in dataclasses.fields(first):
        if not f.init:
            continue
        values = [getattr(d, f.name) for d in dists]
        head = values[0]
        try:
            uniform = all(v == head for v in values)
        except Exception as error:
            raise ColumnarSpill(
                "dist-merge", f"ambiguous field equality: {error!r}"
            ) from error
        if uniform:
            kwargs[f.name] = head
        elif all(isinstance(v, (int, float, np.integer, np.floating)) for v in values):
            kwargs[f.name] = np.asarray(values, dtype=np.float64)
        else:
            raise ColumnarSpill(
                "dist-merge",
                f"non-numeric varying field {f.name!r} on {type(first).__name__}",
            )
    try:
        return type(first)(**kwargs)
    except Exception as error:
        raise ColumnarSpill(
            "dist-merge",
            f"cannot build merged {type(first).__name__} template: {error!r}",
        ) from error


# ---------------------------------------------------------------------------
# Batched return values (vmap convention)
# ---------------------------------------------------------------------------


def _gather_batched(value: Any, indices: np.ndarray, num: int) -> Any:
    if isinstance(value, np.ndarray) and value.ndim >= 1 and value.shape[0] == num:
        return value[indices]
    if isinstance(value, tuple):
        return tuple(_gather_batched(v, indices, num) for v in value)
    if isinstance(value, list):
        return [_gather_batched(v, indices, num) for v in value]
    if isinstance(value, dict):
        return {k: _gather_batched(v, indices, num) for k, v in value.items()}
    return value


def _unbatch_value(value: Any, index: int, num: int) -> Any:
    if isinstance(value, np.ndarray) and value.ndim >= 1 and value.shape[0] == num:
        entry = value[index]
        return entry.item() if np.ndim(entry) == 0 else entry
    if isinstance(value, tuple):
        return tuple(_unbatch_value(v, index, num) for v in value)
    if isinstance(value, list):
        return [_unbatch_value(v, index, num) for v in value]
    if isinstance(value, dict):
        return {k: _unbatch_value(v, index, num) for k, v in value.items()}
    return value


def _batch_values(values: Sequence[Any], num: int) -> Any:
    """Stack per-particle return values back into the vmap convention."""
    head = values[0]
    try:
        if all(v is head or v == head for v in values):
            return head
    except Exception:
        pass
    if all(isinstance(v, (bool, int, float, np.bool_, np.integer, np.floating)) for v in values):
        return np.asarray(values)
    if isinstance(head, tuple) and all(
        isinstance(v, tuple) and len(v) == len(head) for v in values
    ):
        return tuple(
            _batch_values([v[i] for v in values], num) for i in range(len(head))
        )
    raise ColumnarSpill(
        "return-value", f"cannot batch return values of type {type(head).__name__}"
    )


# ---------------------------------------------------------------------------
# Per-address column bundle
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class _Column:
    """One address across all particles."""

    values: np.ndarray  # float64 (N,)
    log_probs: np.ndarray  # float64 (N,)
    dist: Distribution  # shared or array-parameterized template
    kind: str  # "float" | "int" | "bool"

    def take(self, indices: np.ndarray) -> "_Column":
        return _Column(
            np.take(self.values, indices),
            np.take(self.log_probs, indices),
            _gather_dist(self.dist, indices),
            self.kind,
        )


@dataclasses.dataclass
class _ObsColumn:
    """One observation address across all particles.

    The observed value is shared (it is data); the log probability may
    still vary per particle when the distribution's parameters depend on
    latent columns.
    """

    value: Any
    log_probs: np.ndarray  # float64 (N,)
    dist: Distribution
    varying_value: Optional[np.ndarray] = None  # per-particle values, if any

    def take(self, indices: np.ndarray) -> "_ObsColumn":
        varying = None if self.varying_value is None else np.take(self.varying_value, indices)
        return _ObsColumn(
            self.value,
            np.take(self.log_probs, indices),
            _gather_dist(self.dist, indices),
            varying,
        )

    def value_for(self, index: int) -> Any:
        if self.varying_value is not None:
            return float(self.varying_value[index])
        return self.value


class _ParticleView:
    """Read-only view of one particle, for ``estimate`` callables.

    Supports the subset of the :class:`~repro.core.trace.Trace` read API
    that estimators use: ``view[address]``, ``address in view``, and
    ``view.return_value``.
    """

    __slots__ = ("_collection", "_index")

    def __init__(self, collection: "ColumnarCollection", index: int):
        self._collection = collection
        self._index = index

    def __contains__(self, address) -> bool:
        return normalize_address(address) in self._collection._choices

    def __getitem__(self, address) -> Any:
        column = self._collection._choices[normalize_address(address)]
        return _restore_kind(column.values[self._index], column.kind)

    @property
    def return_value(self) -> Any:
        return _unbatch_value(
            self._collection.return_value, self._index, len(self._collection)
        )


# ---------------------------------------------------------------------------
# The collection
# ---------------------------------------------------------------------------


class ColumnarCollection:
    """Address-major particle population with a log-weight vector.

    Mirrors the :class:`~repro.core.weighted.WeightedCollection`
    diagnostics/estimation API (``estimate``, ``effective_sample_size``,
    ``log_normalized_weights``, ...) so experiment code can hold either
    representation; :meth:`to_weighted`/:meth:`from_weighted` convert
    between them (``from_weighted`` spills on anything non-homogeneous).
    """

    def __init__(
        self,
        num_particles: int,
        log_weights: np.ndarray,
        choice_order: Tuple[Address, ...],
        choices: Dict[Address, _Column],
        obs_order: Tuple[Address, ...],
        observations: Dict[Address, _ObsColumn],
        return_value: Any = None,
        metadata: Optional[List[Optional[Dict[str, Any]]]] = None,
        source_items: Optional[List[Trace]] = None,
    ):
        if num_particles < 1:
            raise ValueError("a columnar collection needs at least one particle")
        self.num_particles = num_particles
        self.log_weights = np.asarray(log_weights, dtype=np.float64)
        if self.log_weights.shape != (num_particles,):
            raise ValueError(
                f"log_weights shape {self.log_weights.shape} != ({num_particles},)"
            )
        self._choice_order = tuple(choice_order)
        self._choices = choices
        self._obs_order = tuple(obs_order)
        self._observations = observations
        self.return_value = return_value
        self.metadata = metadata
        #: Original object traces, kept when the collection was converted
        #: from a WeightedCollection and not yet transformed — makes
        #: to_weighted lossless (same objects back).
        self._source_items = source_items
        self._totals: Optional[np.ndarray] = None

    # -- basic protocol -----------------------------------------------------

    def __len__(self) -> int:
        return self.num_particles

    def __repr__(self) -> str:
        return (
            f"ColumnarCollection(size={self.num_particles}, "
            f"addresses={len(self._choice_order)}, "
            f"observations={len(self._obs_order)})"
        )

    # -- columns ------------------------------------------------------------

    def addresses(self) -> List[Address]:
        return list(self._choice_order)

    def observation_addresses(self) -> List[Address]:
        return list(self._obs_order)

    def value_column(self, address) -> np.ndarray:
        return self._choices[normalize_address(address)].values

    def log_prob_column(self, address) -> np.ndarray:
        return self._choices[normalize_address(address)].log_probs

    def dist_template(self, address) -> Distribution:
        return self._choices[normalize_address(address)].dist

    def value_kind(self, address) -> str:
        return self._choices[normalize_address(address)].kind

    def particle(self, index: int) -> _ParticleView:
        return _ParticleView(self, index)

    @property
    def total_log_probs(self) -> np.ndarray:
        """Per-particle ``log P̃r[t]``: ``fsum`` of choice columns plus
        ``fsum`` of observation columns — the exact reduction
        :attr:`repro.core.trace.Trace.log_prob` performs, so each entry
        is bitwise identical to the object trace's total."""
        if self._totals is None:
            self._totals = _fsum_totals(
                self.num_particles,
                [self._choices[a].log_probs for a in self._choice_order],
                [self._observations[a].log_probs for a in self._obs_order],
            )
        return self._totals

    # -- diagnostics (WeightedCollection parity) ----------------------------

    def normalized_weights(self) -> np.ndarray:
        return _normalized_weights(self.log_weights)

    def log_normalized_weights(self) -> np.ndarray:
        return _log_normalized_weights(self.log_weights)

    def effective_sample_size(self) -> float:
        return effective_sample_size(self.log_weights)

    def log_mean_weight(self) -> float:
        return log_sum_exp_array(self.log_weights) - math.log(len(self))

    # -- estimation ---------------------------------------------------------

    def estimate(self, phi) -> float:
        """Equation 5 over particle views (same kernel as the object path)."""
        weights = self.normalized_weights()
        support = np.flatnonzero(weights > 0.0)
        values = np.fromiter(
            (float(phi(_ParticleView(self, int(i)))) for i in support),
            dtype=float,
            count=len(support),
        )
        return float(weights[support] @ values)

    def estimate_probability(self, event) -> float:
        return self.estimate(lambda item: 1.0 if event(item) else 0.0)

    # -- resampling ---------------------------------------------------------

    def resample(
        self,
        rng: np.random.Generator,
        size: Optional[int] = None,
        scheme: str = "multinomial",
    ) -> "ColumnarCollection":
        """One ``np.take`` per column; indices match the object path's
        :meth:`~repro.core.weighted.WeightedCollection.resample` draw for
        the same weights and RNG state."""
        if scheme not in RESAMPLING_SCHEMES:
            raise ValueError(
                f"unknown resampling scheme {scheme!r}; "
                f"choose from {sorted(RESAMPLING_SCHEMES)}"
            )
        size = size if size is not None else len(self)
        weights = self.normalized_weights()
        indices = np.asarray(RESAMPLING_SCHEMES[scheme](weights, size, rng))
        metadata = None
        if self.metadata is not None:
            metadata = [_copy.deepcopy(self.metadata[int(i)]) for i in indices]
        return ColumnarCollection(
            size,
            np.zeros(size, dtype=np.float64),
            self._choice_order,
            {a: col.take(indices) for a, col in self._choices.items()},
            self._obs_order,
            {a: col.take(indices) for a, col in self._observations.items()},
            return_value=_gather_batched(self.return_value, indices, len(self)),
            metadata=metadata,
        )

    # -- conversions ---------------------------------------------------------

    @classmethod
    def from_weighted(cls, collection: WeightedCollection) -> "ColumnarCollection":
        """Columnarize a homogeneous collection of object traces.

        Raises :class:`ColumnarSpill` when the population cannot be laid
        out address-major: differing address sets/orders, non-numeric
        values, observation values that differ across particles, or
        distributions that cannot be merged into one template.
        """
        items = collection.items
        first = items[0]
        if not isinstance(first, Trace):
            raise ColumnarSpill("items", f"items are {type(first).__name__}, not Trace")
        order = first.addresses()
        obs_order = first.observation_addresses()
        for trace in items[1:]:
            if not isinstance(trace, Trace):
                raise ColumnarSpill("items", "mixed item types in collection")
            if trace.addresses() != order or trace.observation_addresses() != obs_order:
                raise ColumnarSpill(
                    "address-structure",
                    "heterogeneous address structure across particles",
                )

        num = len(items)
        choices: Dict[Address, _Column] = {}
        for address in order:
            records = [t.get_record(address) for t in items]
            values = [r.value for r in records]
            kind = _kind_of_values(values)
            column = _Column(
                np.asarray([float(v) for v in values], dtype=np.float64),
                np.asarray([r.log_prob for r in records], dtype=np.float64),
                _merge_dists([r.dist for r in records]),
                kind,
            )
            _check_gatherable(column.dist)
            choices[address] = column

        observations: Dict[Address, _ObsColumn] = {}
        for address in obs_order:
            records = [t.get_observation(address) for t in items]
            head = records[0].value
            try:
                shared = all(r.value is head or r.value == head for r in records)
            except Exception as error:
                raise ColumnarSpill(
                    "observation", f"ambiguous observation equality: {error!r}"
                ) from error
            varying = None
            if not shared:
                _kind_of_values([r.value for r in records])  # numeric or spill
                varying = np.asarray([float(r.value) for r in records], dtype=np.float64)
            column = _ObsColumn(
                head,
                np.asarray([r.log_prob for r in records], dtype=np.float64),
                _merge_dists([r.dist for r in records]),
                varying,
            )
            _check_gatherable(column.dist)
            observations[address] = column

        return cls(
            num,
            np.asarray(collection.log_weights, dtype=np.float64),
            tuple(order),
            choices,
            tuple(obs_order),
            observations,
            return_value=_batch_values([t.return_value for t in items], num),
            metadata=None if collection.metadata is None else list(collection.metadata),
            source_items=list(items),
        )

    def to_weighted(self) -> WeightedCollection:
        """Back to object traces.

        Lossless (same trace objects) when the collection still holds the
        traces it was converted from; otherwise each particle's trace is
        synthesized from the columns — records carry the same addresses,
        per-particle distributions, values, and (bitwise) log probs the
        object path would have produced.
        """
        if self._source_items is not None:
            return WeightedCollection(
                list(self._source_items),
                self.log_weights.tolist(),
                metadata=None if self.metadata is None else list(self.metadata),
            )
        num = self.num_particles
        value_rows = {
            a: self._choices[a].values.tolist() for a in self._choice_order
        }
        lp_rows = {a: self._choices[a].log_probs.tolist() for a in self._choice_order}
        obs_lp_rows = {
            a: self._observations[a].log_probs.tolist() for a in self._obs_order
        }
        traces: List[Trace] = []
        for i in range(num):
            trace = Trace()
            for address in self._choice_order:
                column = self._choices[address]
                trace.add_choice(
                    ChoiceRecord(
                        address,
                        _unbatch_dist(column.dist, i),
                        _restore_kind(value_rows[address][i], column.kind),
                        lp_rows[address][i],
                    )
                )
            for address in self._obs_order:
                column = self._observations[address]
                trace.add_observation(
                    ObservationRecord(
                        address,
                        _unbatch_dist(column.dist, i),
                        column.value_for(i),
                        obs_lp_rows[address][i],
                    )
                )
            trace.return_value = _unbatch_value(self.return_value, i, num)
            traces.append(trace)
        return WeightedCollection(
            traces,
            self.log_weights.tolist(),
            metadata=None if self.metadata is None else list(self.metadata),
        )


def _fsum_totals(
    num: int,
    choice_columns: List[np.ndarray],
    obs_columns: List[np.ndarray],
) -> np.ndarray:
    """Per-particle ``fsum(choices) + fsum(observations)``.

    ``math.fsum`` is correctly rounded (order-independent), so summing a
    particle's row here equals the object trace's two-``fsum`` total bit
    for bit.
    """
    if choice_columns:
        choice_rows = np.stack(choice_columns, axis=1).tolist()
        choice_tot = [math.fsum(row) for row in choice_rows]
    else:
        choice_tot = [0.0] * num
    if obs_columns:
        obs_rows = np.stack(obs_columns, axis=1).tolist()
        obs_tot = [math.fsum(row) for row in obs_rows]
    else:
        obs_tot = [0.0] * num
    return np.asarray(
        [c + o for c, o in zip(choice_tot, obs_tot)], dtype=np.float64
    )


# ---------------------------------------------------------------------------
# The columnar forward handler
# ---------------------------------------------------------------------------


class _ColumnarForwardHandler:
    """Runs ``Q`` once over the whole population (Equation 6, batched).

    Duck-types the :class:`~repro.core.handlers.TraceHandler` interface
    (``sample``/``observe``/``trace``): corresponding choices with equal
    supports return the stored source **column**; everything else is
    sampled with one ``sample_batch`` per address.  Downstream
    distribution constructors receive whole columns as parameters, which
    is what makes one execution score all particles.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        observations: ChoiceMap,
        correspondence,
        source: ColumnarCollection,
        num: int,
    ):
        self._rng = rng
        self._observations = observations
        self._correspondence = correspondence
        self._source = source
        self._num = num
        self.trace = Trace()  # return-value slot only; records live in columns
        self.choice_order: List[Address] = []
        self.choices: Dict[Address, _Column] = {}
        self.obs_order: List[Address] = []
        self.observations: Dict[Address, _ObsColumn] = {}
        #: float 0.0 until the first fresh sample, then a (N,) array —
        #: accumulated with ``+`` in Q's execution order, mirroring the
        #: scalar handler's ``forward_log_prob`` accumulator.
        self.forward_log_prob: Any = 0.0
        #: q_address -> p_address for every address actually reused.
        self.reused: Dict[Address, Address] = {}
        self.sampled_fresh = 0

    # -- scoring helpers ----------------------------------------------------

    def _score_column(self, dist: Distribution, values: np.ndarray) -> np.ndarray:
        log_probs = dist.log_prob_batch(values)
        log_probs = np.asarray(log_probs, dtype=np.float64)
        if log_probs.shape != (self._num,):
            raise ColumnarSpill(
                "batch-shape",
                f"log_prob_batch returned shape {log_probs.shape}, "
                f"expected ({self._num},)",
            )
        return log_probs

    def _score_shared(self, dist: Distribution, value: Any) -> np.ndarray:
        """Score one shared (scalar) value under a possibly-batched dist."""
        if _has_array_params(dist):
            return self._score_column(
                dist, np.full(self._num, float(value), dtype=np.float64)
            )
        return np.full(self._num, dist.log_prob(value), dtype=np.float64)

    # -- TraceHandler interface ---------------------------------------------

    def sample(self, dist: Distribution, address) -> Any:
        address = normalize_address(address)
        if address in self.choices or address in self.observations:
            raise ValueError(f"duplicate random choice at address {address!r}")
        if address in self._observations:
            return self._observe_value(dist, self._observations[address], address)

        source_address = self._correspondence.forward(address)
        if (
            source_address is not None
            and source_address in self._source._choices
        ):
            old = self._source._choices[source_address]
            # Template-level support comparison; an ambiguous comparison
            # (array-dependent supports) raises and spills the step.
            if dist.support() == old.dist.support():
                self.reused[address] = source_address
                column = _Column(
                    old.values, self._score_column(dist, old.values), dist, old.kind
                )
                _check_gatherable(dist)
                self.choice_order.append(address)
                self.choices[address] = column
                return _column_view(old.values, old.kind)

        # Fresh: one batched draw for the whole population.  (Proposals
        # were ruled out before the step started.)
        values = np.asarray(dist.sample_batch(self._rng, self._num))
        if values.shape != (self._num,):
            raise ColumnarSpill(
                "batch-shape",
                f"sample_batch returned shape {values.shape}, "
                f"expected ({self._num},)",
            )
        kind = _kind_of_dtype(values.dtype)
        float_values = values.astype(np.float64)
        log_probs = self._score_column(dist, float_values)
        _check_gatherable(dist)
        self.choice_order.append(address)
        self.choices[address] = _Column(float_values, log_probs, dist, kind)
        self.forward_log_prob = self.forward_log_prob + log_probs
        self.sampled_fresh += 1
        return _column_view(float_values, kind)

    def _observe_value(self, dist: Distribution, value: Any, address: Address) -> Any:
        if isinstance(value, np.ndarray):
            if value.shape != (self._num,):
                raise ColumnarSpill(
                    "observation",
                    f"array-valued observation at {address!r} is not per-particle",
                )
            varying = value.astype(np.float64)
            log_probs = self._score_column(dist, varying)
            column = _ObsColumn(float(varying[0]), log_probs, dist, varying)
        else:
            column = _ObsColumn(value, self._score_shared(dist, value), dist)
        _check_gatherable(dist)
        self.obs_order.append(address)
        self.observations[address] = column
        return value

    def observe(self, dist: Distribution, value: Any, address) -> None:
        address = normalize_address(address)
        if address in self.observations:
            raise ValueError(f"duplicate observation at address {address!r}")
        self._observe_value(dist, value, address)


# ---------------------------------------------------------------------------
# The columnar SMC step
# ---------------------------------------------------------------------------


def _static_plan(translator):
    """The translator's cached :class:`~repro.analysis.absint.plan.ColumnarPlan`.

    Computed once per translator (model-level facts only — kernel and
    fault-policy ineligibility is cheaper to check directly), so a
    sequence of steps over the same edit consults the abstract
    interpreter exactly once instead of probing every step.  ``False``
    caches "planning unavailable" (analysis import failed or the
    translator refuses attributes).
    """
    cached = getattr(translator, "_columnar_plan", None)
    if cached is not None:
        return cached or None
    try:
        from ..analysis.absint import plan_columnar_step

        plan = plan_columnar_step(translator)
    except Exception:  # pragma: no cover - defensive: planning is optional
        plan = False
    try:
        translator._columnar_plan = plan
    except Exception:  # pragma: no cover - slotted/frozen translator
        pass
    return plan or None


def _check_translator(translator, mcmc_kernel, policy) -> None:
    """Spill on anything outside the columnar runtime's contract.

    All of these checks run before any randomness is consumed.
    """
    from .corr_translator import CorrespondenceTranslator

    if type(translator) is not CorrespondenceTranslator:
        raise ColumnarSpill(
            "translator",
            f"columnar path supports plain CorrespondenceTranslator, "
            f"got {type(translator).__name__}",
        )
    if translator.forward_proposals or translator.backward_proposals:
        raise ColumnarSpill("proposals", "translator has custom proposals")
    if mcmc_kernel is not None:
        raise ColumnarSpill("mcmc", "MCMC rejuvenation uses the object path")
    if policy.contains_faults:
        raise ColumnarSpill(
            "fault-policy", f"fault policy {policy.mode!r} needs per-particle isolation"
        )


def _combine_columns(
    target: np.ndarray,
    backward: np.ndarray,
    source: np.ndarray,
    forward: np.ndarray,
) -> np.ndarray:
    """Vectorized image of ``corr_translator._combine`` (Equation 2)."""
    from ..errors import NumericalError

    numerator = target + backward
    denominator = source + forward
    if np.isnan(numerator).any():
        raise NumericalError(
            f"trace translation produced NaN weight numerators at indices "
            f"{np.flatnonzero(np.isnan(numerator)).tolist()}"
        )
    dead = numerator == NEG_INF
    bad = (denominator == NEG_INF) | np.isnan(denominator)
    if (bad & ~dead).any():
        raise NumericalError(
            "input trace has zero probability under the source program; "
            "it cannot have come from the source posterior"
        )
    safe_denominator = np.where(dead, 0.0, denominator)
    return np.where(dead, NEG_INF, numerator - safe_denominator)


def columnar_infer_step(
    translator,
    traces,
    rng: np.random.Generator,
    mcmc_kernel,
    config,
    step_index: Optional[int] = None,
    executor: Any = None,
):
    """One Algorithm-2 step on columns; raises :class:`ColumnarSpill`
    when the step cannot be represented columnar (the caller falls back
    to the object path)."""
    from ..observability import NULL_HOOKS
    from .smc import SMCStats, SMCStep, _degeneracy_guard

    policy = config.fault_policy
    _check_translator(translator, mcmc_kernel, policy)

    # Static pre-flight: a certain finding (value-dependent control flow
    # in the target, ...) routes to the object path immediately — before
    # columnarizing the population or consuming any randomness — instead
    # of probing by running the batched model until it fails.
    plan = _static_plan(translator)
    if plan is not None:
        try:
            num_hint: Optional[int] = len(traces)
        except TypeError:
            num_hint = None
        blocking = plan.blocking(num_particles=num_hint)
        if blocking is not None:
            raise ColumnarSpill(
                blocking.code, f"{blocking.detail} (static pre-flight)"
            )

    if isinstance(traces, ColumnarCollection):
        source = traces
    elif isinstance(traces, WeightedCollection):
        source = ColumnarCollection.from_weighted(traces)
    else:
        raise ColumnarSpill(
            "collection-type", f"unsupported collection type {type(traces).__name__}"
        )

    num = len(source)
    tracer, metrics, hooks = config.tracer, config.metrics, config.hooks
    if tracer.enabled or metrics.enabled:
        bind = getattr(translator, "bind_observability", None)
        if bind is not None:
            bind(tracer, metrics)

    hooks.on_step_start(step_index, num)
    with tracer.span("smc.step") as step_span:
        with tracer.span("smc.translate") as translate_span:
            handler = _ColumnarForwardHandler(
                rng,
                translator.target.observations,
                translator.correspondence,
                source,
                num,
            )
            try:
                translator.target.run(handler)
            except ColumnarSpill:
                raise
            except Exception as error:
                # Array-in-bool-context, shape mismatches, real model
                # faults — the object path re-runs the step and reports
                # (or contains) the true error per particle.  Numpy's
                # truth-value guard identifies the control-flow case
                # (a branch condition received a whole column).
                code = (
                    "control-flow"
                    if isinstance(error, ValueError)
                    and "truth value" in str(error)
                    else "execution"
                )
                raise ColumnarSpill(
                    code, f"batched execution failed: {error!r}"
                ) from error

            if executor is not None:
                # The object path spawns per-particle streams whenever an
                # executor is configured; consume the same single draw so
                # the step RNG leaves this phase in the identical state.
                from ..parallel import spawn_particle_rngs

                spawn_particle_rngs(rng, num)

            if hooks is not NULL_HOOKS:
                for index in range(num):
                    hooks.on_particle(index, "ok")
            if tracer.enabled:
                translate_span.count("particles", num)
                translate_span.count("choices.reused", len(handler.reused))
                translate_span.count("choices.fresh", handler.sampled_fresh)

        translated = ColumnarCollection(
            num,
            np.zeros(num, dtype=np.float64),  # placeholder; set below
            tuple(handler.choice_order),
            handler.choices,
            tuple(handler.obs_order),
            handler.observations,
            return_value=handler.trace.return_value,
            metadata=None if source.metadata is None else list(source.metadata),
        )

        # -- Equation 2, term by term across the population --------------
        target_col = translated.total_log_probs
        source_col = source.total_log_probs
        reused_sources = set(handler.reused.values())
        backward_col = np.zeros(num, dtype=np.float64)
        for address in source._choice_order:
            if address not in reused_sources:
                # Plain `+` in P's execution order: the scalar backward
                # scorer's accumulator, vectorized.
                backward_col = backward_col + source._choices[address].log_probs
        forward_col = (
            handler.forward_log_prob
            if isinstance(handler.forward_log_prob, np.ndarray)
            else np.zeros(num, dtype=np.float64)
        )
        value_array = _combine_columns(target_col, backward_col, source_col, forward_col)

        old_log_weights = source.log_weights
        new_log_weights = (
            old_log_weights + value_array if config.use_weights else old_log_weights.copy()
        )
        translated.log_weights = np.asarray(new_log_weights, dtype=np.float64)
        translated._totals = target_col

        input_log_norm = _log_normalized_weights(old_log_weights)
        log_mean_increment = float(log_sum_exp_array(input_log_norm + value_array))

        _degeneracy_guard(translated.log_weights, "after translation")
        ess_before = translated.effective_sample_size()
        should_resample = config.resample == "always" or (
            config.resample == "adaptive"
            and ess_before < config.ess_threshold * num
        )
        hooks.on_resample(ess_before, should_resample)
        collection = translated
        if should_resample:
            with tracer.span("smc.resample"):
                collection = collection.resample(rng, scheme=config.resampling_scheme)

        with tracer.span("smc.mcmc") as mcmc_span:
            pass  # rejuvenation kernels spill before this point

        if tracer.enabled:
            step_span.count("particles", num)
            step_span.count("faults", 0)

    if metrics.enabled:
        metrics.counter("smc.steps").inc()
        metrics.counter("smc.columnar.steps").inc()
        metrics.counter("smc.particles_translated").inc(num)
        if should_resample:
            metrics.counter("smc.resamples").inc()
        metrics.histogram("smc.ess_before_resample").observe(ess_before)
        metrics.histogram("smc.translate_seconds").observe(translate_span.duration)

    stats = SMCStats(
        num_traces=len(collection),
        ess_before_resample=ess_before,
        ess_after=collection.effective_sample_size(),
        resampled=should_resample,
        log_mean_weight_increment=log_mean_increment,
        translate_seconds=translate_span.duration,
        mcmc_seconds=mcmc_span.duration,
        collection_mode="columnar",
    )
    hooks.on_step_end(stats)
    return SMCStep(collection, stats)
