"""The unified inference configuration (:class:`InferenceConfig`).

Before this module, every entry point grew its own ad-hoc keyword
sprawl — ``infer(translator, traces, rng, mcmc_kernel, resample,
ess_threshold, resampling_scheme, use_weights, fault_policy)`` — and the
experiment runners timed themselves with scattered ``perf_counter``
calls.  :class:`InferenceConfig` is the single keyword-only surface for
everything that shapes an inference run:

* **statistical knobs** — resampling policy/threshold/scheme, the
  weight-ablation switch, the RNG seed;
* **robustness** — the per-particle :class:`FaultPolicy` (PR 1);
* **observability** — the span tracer, metrics registry, and profiling
  hooks of :mod:`repro.observability`, all defaulting to null
  implementations with no hot-path cost;
* **execution** — the particle executor backend (``executor`` /
  ``workers``, :mod:`repro.parallel`) that parallelizes the translate
  phase of Algorithm 2 across threads or processes.

The config validates eagerly on construction, so a typo'd scheme fails
in microseconds instead of minutes into a translation run, and it is
immutable (frozen) so one config can be shared across steps, sequences,
and threads; use :meth:`InferenceConfig.replace` for variations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Optional, Tuple, Union

import numpy as np

from ..observability import NULL_HOOKS, NULL_METRICS, NULL_TRACER, Hooks, MetricsRegistry, Tracer
from .weighted import RESAMPLING_SCHEMES

__all__ = ["FaultPolicy", "InferenceConfig", "RegenerateFn"]

#: A from-scratch sampler for the target posterior: ``fn(rng) ->
#: (trace, log_weight)`` with the trace properly weighted by
#: ``log_weight`` (e.g. likelihood weighting from the prior).
RegenerateFn = Callable[[np.random.Generator], Tuple[Any, float]]


@dataclass
class FaultPolicy:
    """What :func:`repro.core.smc.infer` does when translating one particle fails.

    Parameters
    ----------
    mode:
        ``"fail_fast"`` re-raises the first recoverable error (exactly
        the pre-policy behaviour); ``"drop"`` gives the failed particle
        ``-inf`` weight; ``"regenerate"`` retries and then falls back to
        importance sampling the particle from the prior.
    max_retries:
        Extra translation attempts per particle before ``regenerate``
        falls back to prior regeneration (ignored by the other modes —
        ``drop`` never retries, ``fail_fast`` never catches).
    regenerate_fn:
        Override for the from-scratch sampler used by ``regenerate``;
        defaults to the translator's own ``regenerate`` method.
    """

    MODES = ("fail_fast", "drop", "regenerate")

    mode: str = "fail_fast"
    max_retries: int = 2
    regenerate_fn: Optional[RegenerateFn] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.mode not in self.MODES:
            raise ValueError(
                f"unknown fault-policy mode {self.mode!r}; "
                f"choose from {list(self.MODES)}"
            )
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")

    @classmethod
    def coerce(cls, value: Union[str, "FaultPolicy", None]) -> "FaultPolicy":
        """Accept a policy object, a mode name, or None (= fail_fast)."""
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls(mode=value)
        raise TypeError(f"fault_policy must be a FaultPolicy or mode name, got {value!r}")

    @property
    def contains_faults(self) -> bool:
        return self.mode != "fail_fast"


def _validate_parameters(resample: str, ess_threshold: float, resampling_scheme: str) -> None:
    """Up-front validation with actionable messages.

    Catching a bad ``ess_threshold`` or scheme here — rather than deep
    inside ``resample`` after minutes of translation — is the difference
    between an instant traceback and a wasted run.
    """
    if resample not in ("never", "always", "adaptive"):
        raise ValueError(
            f"unknown resample policy {resample!r}; "
            "choose 'never', 'always', or 'adaptive'"
        )
    threshold = float(ess_threshold)
    if math.isnan(threshold) or not 0.0 < threshold <= 1.0:
        raise ValueError(
            f"ess_threshold must be in (0, 1], got {ess_threshold!r}; it is the "
            "fraction of the particle count below which adaptive resampling triggers"
        )
    if resampling_scheme not in RESAMPLING_SCHEMES:
        raise ValueError(
            f"unknown resampling scheme {resampling_scheme!r}; "
            f"choose from {sorted(RESAMPLING_SCHEMES)}"
        )


@dataclass(frozen=True)
class InferenceConfig:
    """Keyword-only configuration for ``infer``/``infer_sequence``.

    Parameters
    ----------
    resample:
        ``"never"``, ``"always"``, or ``"adaptive"`` (resample when the
        normalized ESS falls below ``ess_threshold``).  ``infer`` keeps
        its historical default of ``"never"``; ``infer_sequence``
        defaults to ``"adaptive"`` when no config is given.
    ess_threshold:
        Fraction of the particle count, in ``(0, 1]``, below which
        adaptive resampling triggers.
    resampling_scheme:
        One of :data:`repro.core.weighted.RESAMPLING_SCHEMES`.
    use_weights:
        When False, translator weight increments are discarded — the
        paper's "Incremental (no weights)" ablation, which converges to
        the *wrong* posterior and is included for Figures 8-9.
    fault_policy:
        A :class:`FaultPolicy` or mode name; see
        :mod:`repro.core.smc`'s module docstring.
    seed:
        Convenience RNG seed: when the ``rng`` argument of ``infer`` is
        omitted, the generator is built from this seed.  An explicit
        ``rng`` always wins.
    executor:
        Particle-execution backend for the translate phase: ``None``
        (the default) keeps the legacy inline loop fed by the shared
        step RNG; ``"serial"``, ``"thread"``, or ``"process"`` dispatch
        through :mod:`repro.parallel` with per-particle RNG streams
        spawned via :class:`numpy.random.SeedSequence` (all three
        produce byte-identical collections for a fixed seed); a
        :class:`~repro.parallel.ParticleExecutor` instance is used
        as-is (and owns its pool lifecycle).
    workers:
        Worker count for a string-selected executor backend (defaults
        to the machine's core count).  Ignored when ``executor`` is
        ``None`` or an instance.
    tracer / metrics / hooks:
        The observability sinks (:mod:`repro.observability`).  All
        default to the null implementations, which are contractually
        free on hot paths and leave the RNG stream untouched.
    checkpoint_dir:
        When set, :func:`~repro.core.smc.infer_sequence` (and the
        annealing drivers) snapshot the run into this directory through
        :class:`repro.store.CheckpointManager` — atomically, with a
        checksum, capturing the collection *and* the RNG generator state
        so a resumed run continues byte-identically.  ``None`` (the
        default) keeps checkpointing completely out of the hot path.
    checkpoint_every:
        Snapshot cadence in steps (``1`` = after every step).  The final
        step of a sequence is always checkpointed regardless of cadence.
    validate:
        Opt-in static pre-flight (:mod:`repro.analysis`): ``"off"`` (the
        default) skips it entirely; ``"warn"`` runs the config lint and
        translator validation once per ``infer``/``infer_sequence`` call
        and reports findings via :mod:`warnings`; ``"error"`` raises
        :class:`repro.errors.ValidationError` on error-severity findings
        before any particle work starts.  Never evaluated per particle
        or per step — the hot path is untouched.
    collection:
        Particle-population representation (keyword-only).  ``"object"``
        (the default) keeps one :class:`~repro.core.trace.Trace` object
        per particle; ``"columnar"`` stores the population address-major
        (:class:`repro.core.columnar.ColumnarCollection`) and runs each
        SMC step vectorized — one batched density evaluation per
        address instead of one Python call per particle.  Steps the
        columnar runtime cannot represent (custom proposals, MCMC
        rejuvenation, fault containment, structurally heterogeneous
        populations) transparently spill to the object path for that
        step; parameter-only edits are bitwise identical between the two
        modes.
    """

    #: Executor backend names accepted as strings (mirrors
    #: :data:`repro.parallel.EXECUTOR_BACKENDS`; kept literal here so the
    #: config module never imports the parallel package).
    EXECUTOR_BACKENDS = ("serial", "thread", "process")

    resample: str = "never"
    ess_threshold: float = 0.5
    resampling_scheme: str = "multinomial"
    use_weights: bool = True
    fault_policy: Union[str, FaultPolicy, None] = "fail_fast"
    seed: Optional[int] = None
    executor: Union[str, Any, None] = field(default=None, compare=False)
    workers: Optional[int] = None
    tracer: Tracer = field(default=NULL_TRACER, repr=False, compare=False)
    metrics: MetricsRegistry = field(default=NULL_METRICS, repr=False, compare=False)
    hooks: Hooks = field(default=NULL_HOOKS, repr=False, compare=False)
    checkpoint_dir: Optional[str] = None
    checkpoint_every: int = 1
    validate: str = "off"
    collection: str = field(default="object", kw_only=True)

    #: Accepted values for :attr:`validate`.
    VALIDATE_MODES = ("off", "warn", "error")

    #: Accepted values for :attr:`collection`.
    COLLECTION_MODES = ("object", "columnar")

    def __post_init__(self) -> None:
        _validate_parameters(self.resample, self.ess_threshold, self.resampling_scheme)
        # Normalize eagerly: downstream code always sees a FaultPolicy,
        # and a bad mode string fails here rather than mid-run.
        object.__setattr__(self, "fault_policy", FaultPolicy.coerce(self.fault_policy))
        if isinstance(self.executor, str):
            if self.executor not in self.EXECUTOR_BACKENDS:
                raise ValueError(
                    f"unknown executor backend {self.executor!r}; "
                    f"choose from {list(self.EXECUTOR_BACKENDS)} (or pass a "
                    "ParticleExecutor instance)"
                )
        elif self.executor is not None and not hasattr(self.executor, "map_translate"):
            raise TypeError(
                "executor must be None, a backend name, or an object with a "
                f"map_translate method, got {self.executor!r}"
            )
        if self.workers is not None:
            workers = int(self.workers)
            if workers < 1:
                raise ValueError(f"workers must be >= 1, got {self.workers!r}")
            object.__setattr__(self, "workers", workers)
        if self.checkpoint_dir is not None and not isinstance(self.checkpoint_dir, str):
            raise TypeError(
                f"checkpoint_dir must be a directory path string or None, "
                f"got {self.checkpoint_dir!r}"
            )
        every = int(self.checkpoint_every)
        if every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every!r}"
            )
        object.__setattr__(self, "checkpoint_every", every)
        if self.validate not in self.VALIDATE_MODES:
            raise ValueError(
                f"unknown validate mode {self.validate!r}; "
                f"choose from {list(self.VALIDATE_MODES)}"
            )
        if self.collection not in self.COLLECTION_MODES:
            raise ValueError(
                f"unknown collection mode {self.collection!r}; "
                f"choose from {list(self.COLLECTION_MODES)}"
            )

    def replace(self, **changes: Any) -> "InferenceConfig":
        """A copy with the given fields replaced (re-validated)."""
        return replace(self, **changes)

    def rng(self) -> np.random.Generator:
        """A generator from ``seed`` (fresh entropy when seed is None)."""
        return np.random.default_rng(self.seed)

    @property
    def observability_enabled(self) -> bool:
        """True when any non-null sink is attached."""
        return self.tracer.enabled or self.metrics.enabled or self.hooks is not NULL_HOOKS
