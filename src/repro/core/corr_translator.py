"""Correspondence-based trace translator (Section 5).

The forward kernel (Equation 6) executes the new program ``Q``; whenever
``Q`` makes a random choice ``i`` with a corresponding choice ``f(i)``
present in the old trace ``t`` *and* with an identical support, the old
value is reused; otherwise the choice is sampled from its distribution.
The backward kernel is the symmetric translator from ``Q`` to ``P``
(Equation 7), which makes the weight estimate (Equation 2) reduce to the
paper's Equation 8: factors for corresponding choices and observations
only.

Both of the paper's dynamic-fallback cases are handled: a corresponding
choice that is absent from the old trace (branching) and a corresponding
choice whose support differs between the traces are simply sampled
fresh, and the weight estimate accounts for it automatically because we
evaluate Equation 2 term by term rather than the cancelled form.

Non-corresponding choices are sampled from their prior by default, as in
the paper.  The paper's conclusion points at "exploiting analytically
tractable conditional distributions for non-corresponding choices" as
future work; this implementation supports it: ``forward_proposals`` maps
addresses of ``Q`` to proposal factories used by the forward kernel
instead of the prior (``backward_proposals`` likewise for the backward
kernel), and the Equation-2 weight remains valid for any proposal whose
support covers the prior's.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Mapping, Optional

import numpy as np

from ..distributions import Distribution
from ..errors import ModelExecutionError, NumericalError, ReproError
from .address import Address, normalize_address
from .correspondence import Correspondence
from .handlers import MissingChoiceError, TraceHandler
from .model import Model
from .trace import ChoiceMap, ChoiceRecord, Trace
from .translator import TraceTranslator, TranslationResult

__all__ = ["CorrespondenceTranslator", "LogProbCache", "ProposalFn", "ProposalMap"]

NEG_INF = float("-inf")


class LogProbCache:
    """Reuse-aware memo table for ``dist.log_prob(value)`` evaluations.

    Keys are ``(address, dist, value)`` — the distribution is a frozen
    value object, so the key pins down the exact density parameters —
    and the stored float is whatever ``log_prob`` returned, so a cache
    hit is bitwise identical to recomputation.  The dominant hit source
    during translation is re-scoring: the backward kernel replays the
    source program over choices and observations whose ``(address,
    dist, value)`` triples already appear verbatim in the source trace,
    so :meth:`seed_trace` pre-populates the table from the trace's
    records before any kernel runs.

    ``reuse_hits`` counts the even cheaper path: corresponding forward
    choices whose distribution is unchanged copy ``log_prob`` straight
    off the old record, never touching the table.

    Entries whose key is unhashable (e.g. an array-valued observation)
    are scored directly and counted as misses.  When the table exceeds
    ``max_entries`` it is cleared wholesale — entries are deterministic
    pure values, so eviction can never change a result, only a hit rate.
    """

    __slots__ = ("_entries", "max_entries", "hits", "misses", "reuse_hits")

    def __init__(self, max_entries: int = 65536):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries!r}")
        self._entries: Dict[Any, float] = {}
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.reuse_hits = 0

    def score(self, address: Address, dist: Distribution, value: Any) -> float:
        """Memoized ``dist.log_prob(value)``."""
        key = (address, dist, value)
        try:
            cached = self._entries.get(key)
        except TypeError:  # unhashable value: score directly
            self.misses += 1
            return dist.log_prob(value)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        log_prob = dist.log_prob(value)
        if len(self._entries) >= self.max_entries:
            self._entries.clear()
        self._entries[key] = log_prob
        return log_prob

    def seed_trace(self, trace: Trace) -> None:
        """Pre-populate from a trace's choice and observation records.

        Seeding is what turns the backward kernel's replay of the source
        program into cache hits: every record already carries the
        ``log_prob`` of exactly the ``(address, dist, value)`` triple the
        replay will ask for.  Seeded entries are not counted as hits or
        misses; only lookups are.
        """
        entries = self._entries
        if len(entries) >= self.max_entries:
            entries.clear()
        for record in (*trace.choices(), *trace.observations()):
            if not record.dist.cacheable_log_prob:
                continue
            try:
                entries[(record.address, record.dist, record.value)] = record.log_prob
            except TypeError:
                continue

    def clear(self) -> None:
        self._entries.clear()

    @property
    def total_hits(self) -> int:
        return self.hits + self.reuse_hits

    def hit_rate(self) -> float:
        """Hits (table + record reuse) over all scoring decisions."""
        total = self.total_hits + self.misses
        return self.total_hits / total if total else 0.0

    def cache_info(self) -> Dict[str, Any]:
        return {
            "hits": self.hits,
            "reuse_hits": self.reuse_hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate(),
            "entries": len(self._entries),
            "max_entries": self.max_entries,
        }

    def __repr__(self) -> str:
        return (
            f"LogProbCache(hits={self.hits}, reuse_hits={self.reuse_hits}, "
            f"misses={self.misses}, entries={len(self._entries)})"
        )

#: A proposal factory: given the partially built trace and the choice's
#: prior distribution, return the distribution to sample/score from.
ProposalFn = Callable[[Trace, Distribution], Distribution]
ProposalMap = Mapping[Any, ProposalFn]


def _normalize_proposals(proposals: Optional[ProposalMap]) -> Dict[Address, ProposalFn]:
    if not proposals:
        return {}
    return {normalize_address(address): fn for address, fn in proposals.items()}


class _ForwardTranslationHandler(TraceHandler):
    """Executes ``Q``, reusing corresponding choices from the old trace.

    Accumulates ``log k_{P->Q}(u; t)``: the log probability of every
    choice that had to be sampled fresh (Equation 6 — reused choices
    contribute Kronecker-delta factors of one).
    """

    def __init__(
        self,
        rng: np.random.Generator,
        observations: ChoiceMap,
        correspondence: Correspondence,
        source_trace: Trace,
        proposals: Optional[Dict[Address, ProposalFn]] = None,
    ):
        super().__init__()
        self._rng = rng
        self._observations = observations
        self._correspondence = correspondence
        self._source_trace = source_trace
        self._proposals = proposals or {}
        self.forward_log_prob = 0.0
        #: q_address -> p_address for every choice actually reused.
        self.reused: Dict[Address, Address] = {}
        #: Latent choices sampled fresh (non-corresponding, absent from
        #: the old trace, or support mismatch).
        self.sampled_fresh = 0

    def sample(self, dist: Distribution, address) -> Any:
        address = normalize_address(address)
        if address in self._observations:
            return self._record_observed_choice(dist, address, self._observations[address])

        source_address = self._correspondence.forward(address)
        if source_address is not None and source_address in self._source_trace:
            old_record = self._source_trace.get_record(source_address)
            if dist.support() == old_record.dist.support():
                self.reused[address] = source_address
                cache = self.log_prob_cache
                if (
                    cache is not None
                    and dist.cacheable_log_prob
                    and dist == old_record.dist
                ):
                    # Reuse-aware fast path: the old record already scored
                    # exactly this (dist, value) pair, so copy its log_prob
                    # instead of re-evaluating the density.
                    cache.reuse_hits += 1
                    self.trace.add_choice(
                        ChoiceRecord(address, dist, old_record.value, old_record.log_prob)
                    )
                    return old_record.value
                return self._record_choice(dist, address, old_record.value)

        proposal_fn = self._proposals.get(address)
        proposal = proposal_fn(self.trace, dist) if proposal_fn is not None else dist
        value = proposal.sample(self._rng)
        self._record_choice(dist, address, value)
        self.forward_log_prob += proposal.log_prob(value)
        self.sampled_fresh += 1
        return value


class _BackwardKernelScorer(TraceHandler):
    """Replays ``P`` from the old trace, scoring the backward kernel.

    ``l_{Q->P}(t; u) = k_{Q->P}(t; u)`` (Equation 7) is the probability
    that the symmetric translator, applied to the translated trace ``u``,
    reproduces the old trace ``t``: choices the reverse translator would
    reuse must match ``t`` exactly (else the kernel probability is zero),
    and all other choices contribute their prior probability of taking
    the value in ``t``.
    """

    def __init__(
        self,
        choices: ChoiceMap,
        observations: ChoiceMap,
        correspondence: Correspondence,
        target_trace: Trace,
        proposals: Optional[Dict[Address, ProposalFn]] = None,
    ):
        super().__init__()
        self._choices = choices
        self._observations = observations
        self._correspondence = correspondence
        self._target_trace = target_trace
        self._proposals = proposals or {}
        self.backward_log_prob = 0.0

    def sample(self, dist: Distribution, address) -> Any:
        address = normalize_address(address)
        if address in self._observations:
            return self._record_observed_choice(dist, address, self._observations[address])
        if address not in self._choices:
            raise MissingChoiceError(address)
        value = self._choices[address]

        target_address = self._correspondence.backward(address)
        would_reuse = False
        if target_address is not None and target_address in self._target_trace:
            new_record = self._target_trace.get_record(target_address)
            if dist.support() == new_record.dist.support():
                would_reuse = True
                if new_record.value != value:
                    # The reverse translator deterministically copies the
                    # new value, so it can never produce this old trace.
                    self.backward_log_prob = NEG_INF
        if not would_reuse:
            proposal_fn = self._proposals.get(address)
            proposal = proposal_fn(self.trace, dist) if proposal_fn is not None else dist
            self.backward_log_prob += proposal.log_prob(value)
        return self._record_choice(dist, address, value)


class CorrespondenceTranslator(TraceTranslator[Trace]):
    """Trace translator driven by an address correspondence (Section 5).

    Parameters
    ----------
    source:
        The old program ``P`` (a conditioned :class:`Model`).
    target:
        The new program ``Q``.
    correspondence:
        Bijection from target addresses to source addresses
        (``f : F_Q -> F_P``).
    forward_proposals:
        Optional proposal factories for non-corresponding choices of
        ``Q``: the forward kernel samples these addresses from
        ``proposal(partial_trace, prior_dist)`` instead of the prior
        (the future-work extension of Section 9).  Unbiasedness is
        preserved for any proposal whose support covers the prior's.
    backward_proposals:
        The analogous proposals for the backward kernel's regeneration
        of choices of ``P``.
    log_prob_cache:
        When True, density evaluations are memoized through a
        :class:`LogProbCache` shared by both kernels and seeded from the
        source trace's records, so re-scoring unchanged choices and
        observations costs a dict lookup instead of a density
        evaluation.  Cached values are bitwise identical to
        recomputation, so results never change; distributions flagged
        ``cacheable_log_prob = False`` bypass the cache entirely.
        **Off by default**: benchmarking showed the cache *slows down*
        the cheap densities this repo ships (fig8 at 100 particles:
        0.52s/step with the cache on at a 90% hit rate vs 0.42s off —
        the tuple-key hashing costs more than re-evaluating a Gaussian
        density; see ``docs/performance.md``).  Opt in for genuinely
        expensive ``log_prob`` implementations.
    cache_max_entries:
        Table size bound; on overflow the table is cleared (never a
        correctness event, see :class:`LogProbCache`).
    """

    def __init__(
        self,
        source: Model,
        target: Model,
        correspondence: Correspondence,
        forward_proposals: Optional[ProposalMap] = None,
        backward_proposals: Optional[ProposalMap] = None,
        log_prob_cache: bool = False,
        cache_max_entries: int = 65536,
    ):
        self._source = source
        self._target = target
        self.correspondence = correspondence
        self.forward_proposals = _normalize_proposals(forward_proposals)
        self.backward_proposals = _normalize_proposals(backward_proposals)
        self._cache = LogProbCache(cache_max_entries) if log_prob_cache else None
        #: The :class:`~repro.derive.report.DerivationReport` behind this
        #: translator's correspondence, when it was derived rather than
        #: hand-written (see :meth:`from_derived`); None otherwise.
        self.derivation_report = None
        # Hoisted registry lookups (one per particle otherwise); rebound
        # alongside the sinks in bind_observability.
        self._reused_counter = None
        self._fresh_counter = None
        self._cache_hit_counter = None
        self._cache_miss_counter = None

    @classmethod
    def from_derived(
        cls,
        source: Model,
        target: Model,
        *,
        rng=None,
        num_samples: Optional[int] = None,
        observations=None,
        **kwargs: Any,
    ) -> "CorrespondenceTranslator":
        """A translator whose correspondence is derived, not hand-written.

        Runs :func:`repro.derive.derive_correspondence` over the two
        models and builds the translator on the derived map; the
        evidence is kept on the result as ``derivation_report``.
        ``rng``/``num_samples``/``observations`` configure the
        derivation (profiling is deterministic when ``rng`` is omitted);
        remaining keyword arguments (``forward_proposals``,
        ``log_prob_cache``, ...) pass through to the constructor.
        Imported lazily so constructing hand-written translators never
        touches the derive subsystem.
        """
        from ..derive import derive_correspondence

        derive_kwargs: Dict[str, Any] = {"rng": rng, "observations": observations}
        if num_samples is not None:
            derive_kwargs["num_samples"] = num_samples
        derivation = derive_correspondence(source, target, **derive_kwargs)
        translator = cls(source, target, derivation.correspondence, **kwargs)
        translator.derivation_report = derivation.report
        return translator

    def bind_observability(self, tracer, metrics) -> None:
        super().bind_observability(tracer, metrics)
        if metrics.enabled:
            self._reused_counter = metrics.counter("translate.choices_reused")
            self._fresh_counter = metrics.counter("translate.choices_fresh")
            self._cache_hit_counter = metrics.counter("translate.cache.hits")
            self._cache_miss_counter = metrics.counter("translate.cache.misses")
        else:
            self._reused_counter = None
            self._fresh_counter = None
            self._cache_hit_counter = None
            self._cache_miss_counter = None

    @property
    def cache(self) -> Optional[LogProbCache]:
        """The live log-prob cache, or None when caching is disabled."""
        return self._cache

    def cache_info(self) -> Optional[Dict[str, Any]]:
        """Hit/miss statistics of the log-prob cache (None if disabled)."""
        return self._cache.cache_info() if self._cache is not None else None

    @property
    def source(self) -> Model:
        return self._source

    @property
    def target(self) -> Model:
        return self._target

    def validate(self, rng=None, num_samples: Optional[int] = None) -> list:
        """Statically validate this translator's correspondence.

        Convenience front-end for
        :func:`repro.analysis.validate_correspondence`: profiles both
        models and checks the correspondence for bijectivity,
        injectivity, address existence, support compatibility, and
        picklability.  Returns the :class:`repro.analysis.Diagnostic`
        list (empty = clean).  Imported lazily so constructing and using
        translators never touches the analysis subsystem.
        """
        from ..analysis.correspondence import DEFAULT_SAMPLES, validate_correspondence

        return validate_correspondence(
            self._source,
            self._target,
            self.correspondence,
            rng=rng,
            num_samples=DEFAULT_SAMPLES if num_samples is None else num_samples,
        )

    def translate(self, rng: np.random.Generator, trace: Trace) -> TranslationResult:
        """Algorithm 1 for this translator.

        Runs ``Q`` once (forward kernel) and ``P`` once (backward kernel
        scoring); the weight estimate is Equation 2 assembled from its
        four log terms, which equals Equation 8 after cancellation.
        """
        tracer = self.tracer
        trace_on = tracer.enabled
        cache = self._cache
        if cache is not None:
            hits_before = cache.total_hits
            misses_before = cache.misses
            # Seed from the input trace: the backward kernel will re-score
            # exactly these (address, dist, value) records.
            cache.seed_trace(trace)
        forward = _ForwardTranslationHandler(
            rng,
            self._target.observations,
            self.correspondence,
            trace,
            self.forward_proposals,
        )
        forward.log_prob_cache = cache
        if trace_on:
            with tracer.span("translate.forward"):
                target_trace = _run_kernel_program(self._target, forward, "forward kernel")
        else:
            target_trace = _run_kernel_program(self._target, forward, "forward kernel")

        backward = _BackwardKernelScorer(
            trace.to_choice_map(),
            self._source.observations,
            self.correspondence,
            target_trace,
            self.backward_proposals,
        )
        backward.log_prob_cache = cache
        if trace_on:
            with tracer.span("translate.backward"):
                replayed_source = _run_kernel_program(
                    self._source, backward, "backward kernel"
                )
        else:
            replayed_source = _run_kernel_program(self._source, backward, "backward kernel")

        if trace_on:
            # Lands on the innermost open span (translate.particle under SMC).
            open_span = tracer.current()
            if open_span is not None:
                open_span.count("choices.reused", len(forward.reused))
                open_span.count("choices.fresh", forward.sampled_fresh)
                if cache is not None:
                    open_span.count("cache.hits", cache.total_hits - hits_before)
                    open_span.count("cache.misses", cache.misses - misses_before)
        if self._reused_counter is not None:
            self._reused_counter.inc(len(forward.reused))
            self._fresh_counter.inc(forward.sampled_fresh)
        if cache is not None and self._cache_hit_counter is not None:
            self._cache_hit_counter.inc(cache.total_hits - hits_before)
            self._cache_miss_counter.inc(cache.misses - misses_before)

        components = {
            "target_log_prob": target_trace.log_prob,
            "backward_log_prob": backward.backward_log_prob,
            "source_log_prob": replayed_source.log_prob,
            "forward_log_prob": forward.forward_log_prob,
        }
        log_weight = _combine(components)
        return TranslationResult(target_trace, log_weight, components)

    def regenerate(self, rng: np.random.Generator):
        """Importance-sample a fresh target trace from the prior.

        The fallback used by the ``regenerate`` fault policy of
        :func:`repro.core.smc.infer`: when a particle's translation
        cannot be salvaged, the particle is replaced by a likelihood-
        weighted prior sample of ``Q``, which is properly weighted for
        the target posterior (so Lemma 2's guarantee degrades to plain
        importance sampling for that particle instead of failing).
        Returns ``(trace, log_weight)``.
        """
        return self._target.generate(rng)

    def inverse(self) -> "CorrespondenceTranslator":
        """The symmetric translator from ``Q`` back to ``P``."""
        return CorrespondenceTranslator(
            self._target,
            self._source,
            self.correspondence.inverse(),
            forward_proposals=self.backward_proposals,
            backward_proposals=self.forward_proposals,
            log_prob_cache=self._cache is not None,
            cache_max_entries=(
                self._cache.max_entries if self._cache is not None else 65536
            ),
        )


def _run_kernel_program(model: Model, handler, role: str) -> Trace:
    """Run one side of Algorithm 1, structuring unexpected failures.

    Errors already in the :mod:`repro.errors` taxonomy (missing choices,
    impossible constraints, ``EvalError`` from the structured language)
    pass through unchanged; anything else the model function raises is
    wrapped in :class:`~repro.errors.ModelExecutionError` so the SMC
    fault policies can contain it to the affected particle.
    """
    try:
        return model.run(handler)
    except ReproError:
        raise
    except Exception as error:
        raise ModelExecutionError(
            f"{role} execution of {model.name!r} failed: {error!r}"
        ) from error


def _combine(components: dict) -> float:
    """``log ŵ`` from the four log terms of Equation 2."""
    numerator = components["target_log_prob"] + components["backward_log_prob"]
    denominator = components["source_log_prob"] + components["forward_log_prob"]
    if math.isnan(numerator):
        raise NumericalError(
            f"trace translation produced a NaN weight numerator: {components!r}"
        )
    if numerator == NEG_INF:
        return NEG_INF
    if denominator == NEG_INF or math.isnan(denominator):
        raise NumericalError(
            "input trace has zero probability under the source program; "
            "it cannot have come from the source posterior"
        )
    return numerator - denominator
