"""Correspondence between random choices of two programs (Section 5).

A correspondence is a bijection ``f : F_Q -> F_P`` between (subsets of)
the random-choice addresses of the new program ``Q`` and the old program
``P``.  Choices in correspondence are believed to play the same role in
both programs; the translator reuses their values.

Correspondences may be given extensionally (a dict), as the identity
over a set of addresses (the common case when ``Q`` extends ``P`` — e.g.
the hidden states of the HMM experiment), or intensionally as a pair of
functions (for unboundedly many addresses, as with the loop indexing of
Section 5.4).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional

from .address import Address, normalize_address

__all__ = ["Correspondence"]


# The stock constructors build their forward/backward maps from these
# module-level callables rather than local closures so the resulting
# Correspondence (and any translator holding it) stays picklable — a
# requirement of the "process" particle executor (repro.parallel).

class _IdentityOverSet:
    """``f(a) = a`` when ``a`` is in a fixed address set, else None."""

    __slots__ = ("addresses",)

    def __init__(self, addresses: frozenset):
        self.addresses = addresses

    def __call__(self, address: Address) -> Optional[Address]:
        return address if address in self.addresses else None


class _IdentityByPredicate:
    """``f(a) = a`` when ``predicate(a)``, else None.

    Picklable iff the predicate is (module-level functions are; lambdas
    are not — use :meth:`Correspondence.identity` or a named function
    when targeting the process executor).
    """

    __slots__ = ("predicate",)

    def __init__(self, predicate: Callable[[Address], bool]):
        self.predicate = predicate

    def __call__(self, address: Address) -> Optional[Address]:
        return address if self.predicate(address) else None


class _MappingLookup:
    """``f(a) = mapping.get(a)`` over a concrete dict."""

    __slots__ = ("mapping",)

    def __init__(self, mapping: Dict[Address, Address]):
        self.mapping = mapping

    def __call__(self, address: Address) -> Optional[Address]:
        return self.mapping.get(address)


class _EmptyMap:
    """``f(a) = None`` for every address."""

    __slots__ = ()

    def __call__(self, address: Address) -> Optional[Address]:
        return None


class Correspondence:
    """Bijection between addresses of the target and source programs.

    ``forward(q_address)`` returns the corresponding source address, or
    ``None`` when ``q_address`` is not in ``F_Q``; ``backward`` is the
    inverse.
    """

    def __init__(
        self,
        forward: Callable[[Address], Optional[Address]],
        backward: Callable[[Address], Optional[Address]],
        description: str = "custom",
    ):
        self._forward = forward
        self._backward = backward
        self.description = description

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_dict(cls, mapping: Dict) -> "Correspondence":
        """Extensional correspondence from ``{q_address: p_address}``.

        Raises ``ValueError`` when the mapping is not injective, since a
        correspondence must be a bijection onto its image.
        """
        forward_map = {
            normalize_address(q): normalize_address(p) for q, p in mapping.items()
        }
        backward_map: Dict[Address, Address] = {}
        for q_address, p_address in forward_map.items():
            if p_address in backward_map:
                raise ValueError(
                    f"correspondence is not injective: {p_address!r} is the image "
                    f"of both {backward_map[p_address]!r} and {q_address!r}"
                )
            backward_map[p_address] = q_address
        return cls(
            _MappingLookup(forward_map),
            _MappingLookup(backward_map),
            description=f"dict({len(forward_map)})",
        )

    @classmethod
    def identity(cls, addresses: Iterable) -> "Correspondence":
        """Identity correspondence over an explicit set of addresses."""
        forward = _IdentityOverSet(frozenset(normalize_address(a) for a in addresses))
        return cls(forward, forward, description=f"identity({len(forward.addresses)})")

    @classmethod
    def identity_by_predicate(cls, predicate: Callable[[Address], bool]) -> "Correspondence":
        """Identity correspondence over all addresses satisfying ``predicate``.

        Useful when the shared addresses form an unbounded family, e.g.
        ``lambda a: a[0] == "hidden"`` for the HMM hidden states (pass a
        module-level function instead of a lambda when the translator
        must be picklable for the process executor).
        """
        forward = _IdentityByPredicate(predicate)
        return cls(forward, forward, description="identity-by-predicate")

    @classmethod
    def empty(cls) -> "Correspondence":
        """The empty correspondence: everything is resampled from scratch."""
        return cls(_EmptyMap(), _EmptyMap(), description="empty")

    # -- queries ------------------------------------------------------------

    def forward(self, q_address) -> Optional[Address]:
        """``f(q_address)``: the source address, or None if not in ``F_Q``."""
        return self._forward(normalize_address(q_address))

    def backward(self, p_address) -> Optional[Address]:
        """``f^{-1}(p_address)``: the target address, or None if not in ``F_P``."""
        return self._backward(normalize_address(p_address))

    def inverse(self) -> "Correspondence":
        """The inverse bijection (used by the backward kernel, Eq. 7)."""
        return Correspondence(
            self._backward, self._forward, description=f"inverse({self.description})"
        )

    # -- introspection (repro.analysis) -------------------------------------

    def known_pairs(self) -> Optional[list]:
        """The explicit ``(q_address, p_address)`` pairs, when enumerable.

        Extensional correspondences (``from_dict``, ``identity``,
        ``empty``) can list every pair they relate; intensional ones
        (``identity_by_predicate``, custom callables) cannot, and return
        ``None``.  The static validator uses this to check a
        correspondence exhaustively where possible and to fall back to
        sampled address profiles where not.
        """
        forward = self._forward
        if isinstance(forward, _MappingLookup):
            return sorted(forward.mapping.items(), key=repr)
        if isinstance(forward, _IdentityOverSet):
            return sorted(((a, a) for a in forward.addresses), key=repr)
        if isinstance(forward, _EmptyMap):
            return []
        return None

    @property
    def is_intensional(self) -> bool:
        """True when the related pairs cannot be enumerated statically."""
        return self.known_pairs() is None

    def __repr__(self) -> str:
        return f"Correspondence({self.description})"
