"""Correspondence between random choices of two programs (Section 5).

A correspondence is a bijection ``f : F_Q -> F_P`` between (subsets of)
the random-choice addresses of the new program ``Q`` and the old program
``P``.  Choices in correspondence are believed to play the same role in
both programs; the translator reuses their values.

Correspondences may be given extensionally (a dict), as the identity
over a set of addresses (the common case when ``Q`` extends ``P`` — e.g.
the hidden states of the HMM experiment), or intensionally as a pair of
functions (for unboundedly many addresses, as with the loop indexing of
Section 5.4).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional

from .address import Address, normalize_address

__all__ = ["Correspondence"]


class Correspondence:
    """Bijection between addresses of the target and source programs.

    ``forward(q_address)`` returns the corresponding source address, or
    ``None`` when ``q_address`` is not in ``F_Q``; ``backward`` is the
    inverse.
    """

    def __init__(
        self,
        forward: Callable[[Address], Optional[Address]],
        backward: Callable[[Address], Optional[Address]],
        description: str = "custom",
    ):
        self._forward = forward
        self._backward = backward
        self.description = description

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_dict(cls, mapping: Dict) -> "Correspondence":
        """Extensional correspondence from ``{q_address: p_address}``.

        Raises ``ValueError`` when the mapping is not injective, since a
        correspondence must be a bijection onto its image.
        """
        forward_map = {
            normalize_address(q): normalize_address(p) for q, p in mapping.items()
        }
        backward_map: Dict[Address, Address] = {}
        for q_address, p_address in forward_map.items():
            if p_address in backward_map:
                raise ValueError(
                    f"correspondence is not injective: {p_address!r} is the image "
                    f"of both {backward_map[p_address]!r} and {q_address!r}"
                )
            backward_map[p_address] = q_address
        return cls(forward_map.get, backward_map.get, description=f"dict({len(forward_map)})")

    @classmethod
    def identity(cls, addresses: Iterable) -> "Correspondence":
        """Identity correspondence over an explicit set of addresses."""
        address_set = {normalize_address(a) for a in addresses}

        def forward(address: Address) -> Optional[Address]:
            return address if address in address_set else None

        return cls(forward, forward, description=f"identity({len(address_set)})")

    @classmethod
    def identity_by_predicate(cls, predicate: Callable[[Address], bool]) -> "Correspondence":
        """Identity correspondence over all addresses satisfying ``predicate``.

        Useful when the shared addresses form an unbounded family, e.g.
        ``lambda a: a[0] == "hidden"`` for the HMM hidden states.
        """

        def forward(address: Address) -> Optional[Address]:
            return address if predicate(address) else None

        return cls(forward, forward, description="identity-by-predicate")

    @classmethod
    def empty(cls) -> "Correspondence":
        """The empty correspondence: everything is resampled from scratch."""
        return cls(lambda _a: None, lambda _a: None, description="empty")

    # -- queries ------------------------------------------------------------

    def forward(self, q_address) -> Optional[Address]:
        """``f(q_address)``: the source address, or None if not in ``F_Q``."""
        return self._forward(normalize_address(q_address))

    def backward(self, p_address) -> Optional[Address]:
        """``f^{-1}(p_address)``: the target address, or None if not in ``F_P``."""
        return self._backward(normalize_address(p_address))

    def inverse(self) -> "Correspondence":
        """The inverse bijection (used by the backward kernel, Eq. 7)."""
        return Correspondence(
            self._backward, self._forward, description=f"inverse({self.description})"
        )

    def __repr__(self) -> str:
        return f"Correspondence({self.description})"
