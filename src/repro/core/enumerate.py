"""Exact inference for finite discrete embedded models by enumeration.

Used as ground truth in tests and in the overview experiment (the
burglary posteriors of Figure 1 are exact).  Enumeration performs a
depth-first traversal of the tree of executions: the program is re-run
with a growing forced prefix of choice values, branching on the support
of the first unforced random choice.

Only models whose every latent choice is a finite-support
:class:`~repro.distributions.base.DiscreteDistribution` can be
enumerated; continuous or unbounded choices raise ``ValueError``.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Iterator, List, Tuple

from ..distributions import DiscreteDistribution, Distribution
from .address import normalize_address
from .handlers import TraceHandler, log_sum_exp
from .model import Model
from .trace import Trace

__all__ = [
    "enumerate_traces",
    "log_normalizer",
    "exact_expectation",
    "exact_choice_marginal",
    "exact_return_distribution",
    "exact_posterior_sampler",
]


class _Frontier(Exception):
    """Signals that execution reached the first unforced random choice."""

    def __init__(self, support_values: List[Any]):
        super().__init__("enumeration frontier")
        self.support_values = support_values


class _EnumerationHandler(TraceHandler):
    """Replays a forced prefix of values, stopping at the first new choice."""

    def __init__(self, forced: Tuple[Any, ...], observations):
        super().__init__()
        self._forced = forced
        self._next = 0
        self._observations = observations

    def sample(self, dist: Distribution, address) -> Any:
        address = normalize_address(address)
        if address in self._observations:
            return self._record_observed_choice(dist, address, self._observations[address])
        if self._next < len(self._forced):
            value = self._forced[self._next]
            self._next += 1
            return self._record_choice(dist, address, value)
        if not isinstance(dist, DiscreteDistribution):
            raise ValueError(
                f"cannot enumerate continuous choice at {address!r} ({dist!r})"
            )
        support = dist.support()
        if not support.is_finite():
            raise ValueError(
                f"cannot enumerate unbounded choice at {address!r} ({dist!r})"
            )
        raise _Frontier(list(support.enumerate()))  # type: ignore[attr-defined]


def enumerate_traces(model: Model) -> Iterator[Trace]:
    """Yield every trace of ``model`` with positive or zero probability.

    Traces are produced in depth-first order; each trace's ``log_prob``
    is its unnormalized log probability ``log P̃r[t ~ P]``.
    """
    stack: List[Tuple[Any, ...]] = [()]
    while stack:
        prefix = stack.pop()
        handler = _EnumerationHandler(prefix, model.observations)
        try:
            trace = model.run(handler)
        except _Frontier as frontier:
            # Push in reverse so enumeration explores values in order.
            for value in reversed(frontier.support_values):
                stack.append(prefix + (value,))
            continue
        yield trace


def log_normalizer(model: Model) -> float:
    """``log Z_P = log sum_t P̃r[t ~ P]`` by exhaustive enumeration."""
    return log_sum_exp(trace.log_prob for trace in enumerate_traces(model))


def exact_expectation(model: Model, phi: Callable[[Trace], float]) -> float:
    """``E_{t ~ P}[phi(t)]`` under the normalized posterior, exactly."""
    log_terms: List[float] = []
    values: List[float] = []
    for trace in enumerate_traces(model):
        log_terms.append(trace.log_prob)
        values.append(float(phi(trace)))
    log_z = log_sum_exp(log_terms)
    if log_z == float("-inf"):
        raise ValueError("model has zero normalizing constant")
    return math.fsum(
        math.exp(lp - log_z) * v for lp, v in zip(log_terms, values) if lp != float("-inf")
    )


def exact_choice_marginal(model: Model, address) -> Dict[Any, float]:
    """Exact posterior marginal of the random choice at ``address``.

    Traces in which the address does not occur are grouped under the key
    ``None``.
    """
    address = normalize_address(address)
    totals: Dict[Any, float] = {}
    log_z = float("-inf")
    for trace in enumerate_traces(model):
        if trace.log_prob == float("-inf"):
            continue
        key = trace[address] if address in trace else None
        weight = math.exp(trace.log_prob)
        totals[key] = totals.get(key, 0.0) + weight
        log_z = log_sum_exp([log_z, trace.log_prob])
    z = math.exp(log_z)
    return {key: weight / z for key, weight in totals.items()}


def exact_return_distribution(model: Model) -> Dict[Any, float]:
    """Exact posterior distribution of the program's return value."""
    totals: Dict[Any, float] = {}
    z = 0.0
    for trace in enumerate_traces(model):
        if trace.log_prob == float("-inf"):
            continue
        weight = math.exp(trace.log_prob)
        totals[trace.return_value] = totals.get(trace.return_value, 0.0) + weight
        z += weight
    if z == 0.0:
        raise ValueError("model has zero normalizing constant")
    return {key: weight / z for key, weight in totals.items()}


def exact_posterior_sampler(model: Model) -> Callable:
    """Build an exact posterior sampler by enumerating the model once.

    Returns ``sampler(rng) -> Trace`` drawing i.i.d. traces from the
    normalized posterior ``Pr[t ~ P]``.  This is how the evaluation
    obtains exact input samples for small discrete programs (for the
    larger experiments, dedicated exact samplers — the conjugate
    regression posterior and HMM forward-filtering backward-sampling —
    play this role).
    """
    import numpy as np

    traces = [t for t in enumerate_traces(model) if t.log_prob != float("-inf")]
    if not traces:
        raise ValueError("model has no traces with positive probability")
    log_probs = [t.log_prob for t in traces]
    log_z = log_sum_exp(log_probs)
    probs = [math.exp(lp - log_z) for lp in log_probs]
    total = math.fsum(probs)
    probs = [p / total for p in probs]

    def sampler(rng: "np.random.Generator") -> Trace:
        index = int(rng.choice(len(traces), p=probs))
        return traces[index]

    return sampler
