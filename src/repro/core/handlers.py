"""Execution handlers for the embedded PPL.

A probabilistic program in the embedded language is an ordinary Python
function whose first argument is a :class:`TraceHandler`::

    def burglary_model(t: TraceHandler) -> int:
        burglary = t.sample(Flip(0.02), "burglary")
        p_alarm = 0.9 if burglary else 0.01
        alarm = t.sample(Flip(p_alarm), "alarm")
        p_wakes = 0.8 if alarm else 0.05
        t.observe(Flip(p_wakes), 1, "mary_wakes")
        return burglary

Different handlers give the function different operational meanings —
sampling a fresh trace, scoring an existing one, replaying with some
choices constrained — exactly the set of capabilities a lightweight
transformational-compilation runtime provides [44].  The trace
translator of Section 5 is implemented as one more handler
(:mod:`repro.core.corr_translator`).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Any, Optional

import numpy as np

from ..distributions import Distribution
from ..errors import ModelExecutionError, TranslationError
from .address import Address, normalize_address
from .trace import ChoiceMap, ChoiceRecord, ObservationRecord, Trace

__all__ = [
    "TraceHandler",
    "SimulateHandler",
    "GenerateHandler",
    "ScoreHandler",
    "MissingChoiceError",
    "ImpossibleConstraintError",
]


class MissingChoiceError(TranslationError, KeyError):
    """Raised when scoring a trace that lacks a required random choice.

    During trace translation this signals a bad correspondence (the
    backward kernel cannot reproduce the old trace), which is why the
    class sits under :class:`~repro.errors.TranslationError`; ``KeyError``
    is kept as a base for pre-existing ``except`` clauses.
    """


class ImpossibleConstraintError(ModelExecutionError, ValueError):
    """Raised when a constrained value has probability zero."""


class TraceHandler(ABC):
    """Interface seen by model functions.

    ``sample`` introduces a random choice at an address; ``observe``
    conditions on a random expression taking a fixed value, contributing
    a likelihood factor (the ``observe(R == E)`` statement of Section 3).
    """

    #: Optional :class:`repro.core.corr_translator.LogProbCache`
    #: consulted by the scoring helpers below.  Class-level ``None`` so
    #: ordinary handlers pay one attribute test and nothing else; the
    #: correspondence translator assigns its cache onto the kernel
    #: handlers it builds.
    log_prob_cache = None

    def __init__(self) -> None:
        self.trace = Trace()

    @abstractmethod
    def sample(self, dist: Distribution, address) -> Any:
        """Record a random choice at ``address`` and return its value."""

    def _score_log_prob(self, dist: Distribution, address: Address, value: Any) -> float:
        """``dist.log_prob(value)``, memoized through the attached cache.

        Distributions whose scoring is not a pure function
        (``cacheable_log_prob = False``) are always evaluated directly so
        their side effects are never elided.
        """
        cache = self.log_prob_cache
        if cache is not None and dist.cacheable_log_prob:
            return cache.score(address, dist, value)
        return dist.log_prob(value)

    def observe(self, dist: Distribution, value: Any, address) -> None:
        """Record an observation that ``dist`` produced ``value``."""
        address = normalize_address(address)
        log_prob = self._score_log_prob(dist, address, value)
        self.trace.add_observation(ObservationRecord(address, dist, value, log_prob))

    # -- helpers shared by subclasses --------------------------------------

    def _record_choice(self, dist: Distribution, address: Address, value: Any) -> Any:
        record = ChoiceRecord(address, dist, value, self._score_log_prob(dist, address, value))
        self.trace.add_choice(record)
        return value

    def _record_observed_choice(self, dist: Distribution, address: Address, value: Any) -> Any:
        """A sample statement whose address the model is conditioned on.

        The paper's lightweight implementation represents observations as
        external constraints on addresses (Section 7.1); such a choice is
        recorded as an observation rather than a latent choice.
        """
        log_prob = self._score_log_prob(dist, address, value)
        self.trace.add_observation(ObservationRecord(address, dist, value, log_prob))
        return value


class SimulateHandler(TraceHandler):
    """Run the program forward, sampling every choice from its prior.

    ``observations`` fixes the values at observed addresses (scored as
    likelihood factors); all other addresses are sampled.
    """

    def __init__(self, rng: np.random.Generator, observations: Optional[ChoiceMap] = None):
        super().__init__()
        self._rng = rng
        self._observations = observations if observations is not None else ChoiceMap()

    def sample(self, dist: Distribution, address) -> Any:
        address = normalize_address(address)
        if address in self._observations:
            return self._record_observed_choice(dist, address, self._observations[address])
        return self._record_choice(dist, address, dist.sample(self._rng))


class GenerateHandler(TraceHandler):
    """Run the program with some latent choices constrained.

    Constrained addresses take the given values and contribute their log
    probability to ``log_weight`` (so that the resulting trace together
    with the weight is a properly weighted importance sample with the
    prior-of-the-rest as proposal).  Observed addresses behave as in
    :class:`SimulateHandler` and also enter the weight.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        constraints: ChoiceMap,
        observations: Optional[ChoiceMap] = None,
    ):
        super().__init__()
        self._rng = rng
        self._constraints = constraints
        self._observations = observations if observations is not None else ChoiceMap()
        self.log_weight = 0.0

    def sample(self, dist: Distribution, address) -> Any:
        address = normalize_address(address)
        if address in self._observations:
            value = self._record_observed_choice(dist, address, self._observations[address])
            self.log_weight += self.trace.get_observation(address).log_prob
            return value
        if address in self._constraints:
            value = self._constraints[address]
            log_prob = dist.log_prob(value)
            if log_prob == float("-inf"):
                raise ImpossibleConstraintError(
                    f"constrained value {value!r} at {address!r} has probability zero"
                )
            self.trace.add_choice(ChoiceRecord(address, dist, value, log_prob))
            self.log_weight += log_prob
            return value
        return self._record_choice(dist, address, dist.sample(self._rng))

    def observe(self, dist: Distribution, value: Any, address) -> None:
        super().observe(dist, value, address)
        self.log_weight += self.trace.get_observation(normalize_address(address)).log_prob


class ScoreHandler(TraceHandler):
    """Replay the program deterministically from a complete choice map.

    Every latent address the program visits must be present in
    ``choices``; this computes ``P̃r[t ~ P]`` for an externally supplied
    trace (used by MCMC acceptance ratios and by the backward kernel).
    """

    def __init__(self, choices: ChoiceMap, observations: Optional[ChoiceMap] = None):
        super().__init__()
        self._choices = choices
        self._observations = observations if observations is not None else ChoiceMap()

    def sample(self, dist: Distribution, address) -> Any:
        address = normalize_address(address)
        if address in self._observations:
            return self._record_observed_choice(dist, address, self._observations[address])
        if address not in self._choices:
            raise MissingChoiceError(address)
        return self._record_choice(dist, address, self._choices[address])


def log_sum_exp(values) -> float:
    """Numerically stable ``log(sum(exp(values)))`` for an iterable."""
    values = list(values)
    if not values:
        return float("-inf")
    high = max(values)
    if high == float("-inf"):
        return float("-inf")
    return high + math.log(math.fsum(math.exp(v - high) for v in values))
