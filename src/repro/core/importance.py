"""Baseline non-incremental samplers: importance sampling and rejection.

The paper motivates trace translation against sampling ``Q`` from
scratch (Section 2: "simple rejection sampling using the prior as a
proposal will be inefficient").  These baselines provide that
comparison point and double as general-purpose utilities:

* :func:`importance_sampling` — likelihood weighting: simulate latents
  from the prior, weight by the observations (a properly weighted
  collection for the posterior);
* :func:`sampling_importance_resampling` — the same followed by a
  resampling step, yielding approximately unweighted posterior samples;
* :func:`rejection_sampling` — exact posterior samples for models whose
  per-trace observation likelihood is bounded by a known constant;
* :func:`log_marginal_likelihood` — the importance-sampling estimate of
  ``log Z``.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from .handlers import log_sum_exp
from .model import Model
from .trace import Trace
from .weighted import WeightedCollection

__all__ = [
    "importance_sampling",
    "sampling_importance_resampling",
    "rejection_sampling",
    "log_marginal_likelihood",
]


def importance_sampling(
    model: Model, rng: np.random.Generator, num_traces: int
) -> WeightedCollection[Trace]:
    """Likelihood weighting with the prior as proposal.

    Each trace samples the latents forward and scores the observations;
    the observation log probability is the importance weight, so the
    returned collection targets the posterior and its
    ``log_mean_weight`` estimates ``log Z``.
    """
    if num_traces < 1:
        raise ValueError("need at least one trace")
    traces: List[Trace] = []
    log_weights: List[float] = []
    for _ in range(num_traces):
        trace, log_weight = model.generate(rng)
        traces.append(trace)
        log_weights.append(log_weight)
    return WeightedCollection(traces, log_weights)


def sampling_importance_resampling(
    model: Model,
    rng: np.random.Generator,
    num_traces: int,
    oversample: int = 10,
    scheme: str = "multinomial",
) -> WeightedCollection[Trace]:
    """Draw ``num_traces * oversample`` weighted traces, then resample
    down to ``num_traces`` unweighted ones."""
    if oversample < 1:
        raise ValueError("oversample must be at least 1")
    collection = importance_sampling(model, rng, num_traces * oversample)
    return collection.resample(rng, size=num_traces, scheme=scheme)


def rejection_sampling(
    model: Model,
    rng: np.random.Generator,
    num_traces: int,
    log_likelihood_bound: float = 0.0,
    max_attempts: Optional[int] = None,
) -> Tuple[List[Trace], int]:
    """Exact posterior sampling by rejection.

    Accepts a prior simulation with probability
    ``exp(observation_log_prob - log_likelihood_bound)``; the bound must
    satisfy ``observation_log_prob <= log_likelihood_bound`` for every
    trace (the default ``0.0`` is valid whenever observations are
    discrete probabilities).  Returns the accepted traces and the total
    number of attempts (for efficiency reporting).
    """
    traces: List[Trace] = []
    attempts = 0
    while len(traces) < num_traces:
        if max_attempts is not None and attempts >= max_attempts:
            raise RuntimeError(
                f"rejection sampling exhausted {max_attempts} attempts "
                f"({len(traces)}/{num_traces} accepted)"
            )
        trace = model.simulate(rng)
        attempts += 1
        log_accept = trace.observation_log_prob - log_likelihood_bound
        if log_accept > 0.0:
            raise ValueError(
                "log_likelihood_bound is not an upper bound on the "
                "observation likelihood"
            )
        if math.log(rng.random()) < log_accept:
            traces.append(trace)
    return traces, attempts


def log_marginal_likelihood(
    model: Model, rng: np.random.Generator, num_traces: int
) -> float:
    """Importance-sampling estimate of ``log Z`` (the model evidence)."""
    collection = importance_sampling(model, rng, num_traces)
    return collection.log_mean_weight()
