"""MCMC kernels for the embedded PPL.

Algorithm 2 optionally rejuvenates translated traces with an MCMC kernel
whose invariant distribution is the posterior of ``Q`` (Section 4.2).
This module provides the kernels used in the evaluation:

* :func:`independent_mh_site` — an independent Metropolis update of one
  address, proposing from its prior (the per-latent-variable updates of
  the Figure 8 baseline);
* :func:`single_site_mh` — generic lightweight single-site MH in the
  style of Wingate et al. [44], handling traces whose structure changes
  under the proposal;
* :func:`gibbs_site` — exact Gibbs update of one finite-support discrete
  address (the Figure 9 baseline uses sweeps of these);
* combinators :func:`cycle` and :func:`repeat`.

A kernel is a callable ``kernel(rng, trace) -> trace`` closed over its
model; all kernels here leave ``P̃r[u ~ Q] / Z_Q`` invariant.
"""

from __future__ import annotations

import math
from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..distributions import Distribution
from ..errors import DegeneracyError, SupportError
from .address import normalize_address
from .handlers import TraceHandler, log_sum_exp
from .model import Model
from .trace import ChoiceMap, Trace

__all__ = [
    "Kernel",
    "regenerate",
    "independent_mh_site",
    "custom_mh_site",
    "random_walk_mh_site",
    "single_site_mh",
    "gibbs_site",
    "gibbs_sweep",
    "cycle",
    "repeat",
    "chain",
]

Kernel = Callable[[np.random.Generator, Trace], Trace]

NEG_INF = float("-inf")


class _RegenerateHandler(TraceHandler):
    """Replay with partial constraints, sampling fresh where missing.

    Unlike :class:`~repro.core.handlers.GenerateHandler`, a constrained
    value with zero probability does not raise: the resulting trace
    simply has ``log_prob == -inf`` and the MH acceptance rejects it.
    Tracks the addresses that were reused and the log probability of the
    freshly sampled choices (the ``F`` term of the lightweight MH
    acceptance ratio).
    """

    def __init__(self, rng: np.random.Generator, constraints: ChoiceMap, observations: ChoiceMap):
        super().__init__()
        self._rng = rng
        self._constraints = constraints
        self._observations = observations
        self.fresh_log_prob = 0.0
        self.used: set = set()

    def sample(self, dist: Distribution, address) -> Any:
        address = normalize_address(address)
        if address in self._observations:
            return self._record_observed_choice(dist, address, self._observations[address])
        if address in self._constraints:
            self.used.add(address)
            return self._record_choice(dist, address, self._constraints[address])
        value = dist.sample(self._rng)
        self._record_choice(dist, address, value)
        self.fresh_log_prob += self.trace.get_record(address).log_prob
        return value


def regenerate(
    model: Model, rng: np.random.Generator, constraints: ChoiceMap
) -> Tuple[Trace, float, set]:
    """Run ``model`` reusing ``constraints``; sample anything missing.

    Returns ``(trace, fresh_log_prob, used_addresses)``.
    """
    handler = _RegenerateHandler(rng, constraints, model.observations)
    trace = model.run(handler)
    return trace, handler.fresh_log_prob, handler.used


def _metropolis_accept(rng: np.random.Generator, log_alpha: float) -> bool:
    if log_alpha >= 0.0:
        return True
    if log_alpha == NEG_INF:
        return False
    return math.log(rng.random()) < log_alpha


def independent_mh_site(model: Model, address) -> Kernel:
    """Independent Metropolis update of one address, proposing from its prior.

    Valid for addresses that exist in every trace (fixed-structure
    models); the proposal distribution is the choice's prior given the
    rest of the trace, so the acceptance ratio only involves the
    downstream likelihood change.
    """
    address = normalize_address(address)

    def kernel(rng: np.random.Generator, trace: Trace) -> Trace:
        old_record = trace.get_record(address)
        proposed_value = old_record.dist.sample(rng)
        constraints = trace.to_choice_map().set(address, proposed_value)
        new_trace, fresh, _used = regenerate(model, rng, constraints)
        if address not in new_trace:
            return trace  # structure changed; this simple kernel skips
        forward_log = old_record.dist.log_prob(proposed_value) + fresh
        # The reverse move proposes the old value from the prior at the
        # (possibly re-parameterized) address in the new trace, and must
        # regenerate any choices of the old trace absent from the new one.
        new_addresses = set(new_trace.addresses())
        stale = math.fsum(
            r.log_prob for r in trace.choices() if r.address not in new_addresses
        )
        reverse_log = new_trace.get_record(address).dist.log_prob(old_record.value) + stale
        log_alpha = new_trace.log_prob - trace.log_prob + reverse_log - forward_log
        return new_trace if _metropolis_accept(rng, log_alpha) else trace

    return kernel


def custom_mh_site(
    model: Model,
    address,
    propose: Callable[[np.random.Generator, Any], Any],
    proposal_log_prob: Callable[[Any, Any], float],
) -> Kernel:
    """Metropolis-Hastings update of one address with a custom proposal.

    ``propose(rng, current) -> proposed`` draws the candidate;
    ``proposal_log_prob(from_value, to_value)`` scores the move density
    (both directions are scored, so asymmetric proposals are handled).
    Structure changes triggered by the new value are regenerated from
    the prior and accounted for via the fresh/stale correction.
    """
    address = normalize_address(address)

    def kernel(rng: np.random.Generator, trace: Trace) -> Trace:
        old_value = trace[address]
        proposed_value = propose(rng, old_value)
        constraints = trace.to_choice_map().set(address, proposed_value)
        new_trace, fresh, _used = regenerate(model, rng, constraints)
        if address not in new_trace:
            return trace
        new_addresses = set(new_trace.addresses())
        stale = math.fsum(
            r.log_prob for r in trace.choices() if r.address not in new_addresses
        )
        log_alpha = (
            new_trace.log_prob
            - trace.log_prob
            + proposal_log_prob(proposed_value, old_value)
            - proposal_log_prob(old_value, proposed_value)
            + stale
            - fresh
        )
        return new_trace if _metropolis_accept(rng, log_alpha) else trace

    return kernel


def random_walk_mh_site(model: Model, address, scale: float) -> Kernel:
    """Gaussian random-walk Metropolis update of one continuous address.

    The proposal is symmetric, so the acceptance ratio is the posterior
    ratio alone.  Used as the hand-tuned gold-standard sampler when
    estimating reference posterior expectations (Section 7.2 uses a
    hand-optimized MCMC algorithm as its gold standard).
    """
    address = normalize_address(address)
    if scale <= 0:
        raise ValueError("proposal scale must be positive")

    def kernel(rng: np.random.Generator, trace: Trace) -> Trace:
        old_record = trace.get_record(address)
        proposed_value = float(old_record.value) + scale * rng.standard_normal()
        constraints = trace.to_choice_map().set(address, proposed_value)
        new_trace, fresh, _used = regenerate(model, rng, constraints)
        if address not in new_trace:
            return trace
        new_addresses = set(new_trace.addresses())
        stale = math.fsum(
            r.log_prob for r in trace.choices() if r.address not in new_addresses
        )
        log_alpha = new_trace.log_prob - trace.log_prob + stale - fresh
        return new_trace if _metropolis_accept(rng, log_alpha) else trace

    return kernel


def single_site_mh(model: Model) -> Kernel:
    """Lightweight single-site Metropolis-Hastings [44].

    Picks one of the trace's addresses uniformly at random, proposes a
    new value from that choice's prior, and re-executes the program
    reusing all other choices (sampling any newly required ones).  The
    acceptance ratio includes the standard ``|m| / |m'|`` address-count
    correction and the fresh/stale terms.
    """

    def kernel(rng: np.random.Generator, trace: Trace) -> Trace:
        addresses = trace.addresses()
        if not addresses:
            return trace
        address = addresses[rng.integers(len(addresses))]
        old_record = trace.get_record(address)
        proposed_value = old_record.dist.sample(rng)
        constraints = trace.to_choice_map().set(address, proposed_value)
        new_trace, fresh, used = regenerate(model, rng, constraints)
        if new_trace.log_prob == NEG_INF:
            return trace
        if address not in new_trace:
            return trace
        new_addresses = set(new_trace.addresses())
        stale = math.fsum(
            r.log_prob for r in trace.choices()
            if r.address not in new_addresses and r.address != address
        )
        forward_log = old_record.dist.log_prob(proposed_value) + fresh
        # fresh includes nothing for `address` itself (it was constrained);
        # the proposal density at the chosen site is the prior in `trace`.
        reverse_log = new_trace.get_record(address).dist.log_prob(old_record.value) + stale
        log_alpha = (
            new_trace.log_prob
            - trace.log_prob
            + math.log(len(addresses))
            - math.log(len(new_trace))
            + reverse_log
            - forward_log
        )
        return new_trace if _metropolis_accept(rng, log_alpha) else trace

    return kernel


def gibbs_site(model: Model, address) -> Kernel:
    """Exact Gibbs update of a finite-support discrete address.

    Enumerates the support, scores the full trace at each value, and
    samples from the normalized conditional.  Requires the model's
    structure not to change with the value (otherwise a
    ``MissingChoiceError`` propagates).
    """
    address = normalize_address(address)

    def kernel(rng: np.random.Generator, trace: Trace) -> Trace:
        record = trace.get_record(address)
        support = record.dist.support()
        if not support.is_finite():
            raise SupportError(f"gibbs_site requires finite support at {address!r}")
        values = list(support.enumerate())  # type: ignore[attr-defined]
        base = trace.to_choice_map()
        candidate_traces: List[Trace] = []
        log_scores: List[float] = []
        for value in values:
            candidate = model.score(base.set(address, value))
            candidate_traces.append(candidate)
            log_scores.append(candidate.log_prob)
        log_total = log_sum_exp(log_scores)
        if log_total == NEG_INF:
            raise DegeneracyError(
                f"all conditional values at {address!r} have probability zero"
            )
        probs = np.exp(np.asarray(log_scores) - log_total)
        probs = probs / probs.sum()
        index = int(rng.choice(len(values), p=probs))
        return candidate_traces[index]

    return kernel


def gibbs_sweep(model: Model, addresses: Sequence) -> Kernel:
    """One forward sweep of Gibbs updates over the given addresses."""
    kernels = [gibbs_site(model, a) for a in addresses]
    return cycle(kernels)


def cycle(kernels: Sequence[Kernel]) -> Kernel:
    """Apply the kernels in order; a cycle of invariant kernels is invariant."""
    kernels = list(kernels)

    def kernel(rng: np.random.Generator, trace: Trace) -> Trace:
        for sub_kernel in kernels:
            trace = sub_kernel(rng, trace)
        return trace

    return kernel


def repeat(kernel: Kernel, iterations: int) -> Kernel:
    """Apply ``kernel`` a fixed number of times."""
    if iterations < 0:
        raise ValueError("iterations must be non-negative")

    def repeated(rng: np.random.Generator, trace: Trace) -> Trace:
        for _ in range(iterations):
            trace = kernel(rng, trace)
        return trace

    return repeated


def chain(
    model: Model,
    kernel: Kernel,
    rng: np.random.Generator,
    initial: Optional[Trace] = None,
    iterations: int = 100,
    burn_in: int = 0,
    thin: int = 1,
) -> List[Trace]:
    """Run a Markov chain and return the retained states.

    ``initial`` defaults to a fresh prior simulation of the model.
    """
    if thin < 1:
        raise ValueError("thin must be at least 1")
    trace = initial if initial is not None else model.simulate(rng)
    states: List[Trace] = []
    for iteration in range(iterations):
        trace = kernel(rng, trace)
        if iteration >= burn_in and (iteration - burn_in) % thin == 0:
            states.append(trace)
    return states
