"""The ``Model`` wrapper: a probabilistic program in the embedded PPL.

``Model`` pairs a Python generative function with a fixed argument tuple
and an (optional) observation map, yielding the *inference problem* the
paper calls a probabilistic program ``P``: an unnormalized distribution
``P̃r[t ~ P]`` over traces.  The trace translator (Section 4-5) and all
samplers operate on ``Model`` instances.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Optional, Tuple, Union

import numpy as np

from .handlers import GenerateHandler, ScoreHandler, SimulateHandler, TraceHandler
from .trace import ChoiceMap, Trace

__all__ = ["Model", "probabilistic"]

ChoiceMapLike = Union[ChoiceMap, Mapping[Any, Any], None]


def _as_choice_map(values: ChoiceMapLike) -> ChoiceMap:
    if values is None:
        return ChoiceMap()
    if isinstance(values, ChoiceMap):
        return values
    return ChoiceMap(values)


class Model:
    """A probabilistic program: generative function + args + observations.

    Parameters
    ----------
    fn:
        A Python callable ``fn(t, *args)`` whose first parameter is a
        :class:`~repro.core.handlers.TraceHandler`.
    args:
        Arguments forwarded to ``fn`` after the handler.
    observations:
        Address -> value map conditioning the program.  Sample statements
        at these addresses become likelihood factors, mirroring the
        external-constraint representation of observations used by the
        paper's lightweight implementation (Section 7.1).
    name:
        Optional human-readable name used in reprs and experiment output.
    """

    def __init__(
        self,
        fn: Callable[..., Any],
        args: Tuple[Any, ...] = (),
        observations: ChoiceMapLike = None,
        name: Optional[str] = None,
    ):
        self.fn = fn
        self.args = tuple(args)
        self.observations = _as_choice_map(observations)
        self.name = name or getattr(fn, "__name__", "model")

    # -- derived programs ---------------------------------------------------

    def with_args(self, *args: Any) -> "Model":
        """The same generative function applied to different arguments."""
        return Model(self.fn, args, self.observations, self.name)

    def condition(self, observations: ChoiceMapLike) -> "Model":
        """Condition on additional observed addresses (merged with existing)."""
        merged = {a: v for a, v in self.observations.items()}
        merged.update(_as_choice_map(observations).items())
        return Model(self.fn, self.args, ChoiceMap(merged), self.name)

    # -- execution ------------------------------------------------------------

    def run(self, handler: TraceHandler) -> Trace:
        """Execute the generative function under ``handler``."""
        handler.trace.return_value = self.fn(handler, *self.args)
        return handler.trace

    def simulate(self, rng: np.random.Generator) -> Trace:
        """Sample a trace: latents from the prior, observations scored."""
        return self.run(SimulateHandler(rng, self.observations))

    def generate(
        self, rng: np.random.Generator, constraints: ChoiceMapLike = None
    ) -> Tuple[Trace, float]:
        """Sample with ``constraints`` fixed; return (trace, log weight).

        The weight is ``P̃r[t]/q(t)`` where ``q`` samples unconstrained
        latents from the prior — i.e. the log probability of the
        constrained choices plus all observations.
        """
        handler = GenerateHandler(rng, _as_choice_map(constraints), self.observations)
        trace = self.run(handler)
        return trace, handler.log_weight

    def score(self, choices: ChoiceMapLike) -> Trace:
        """Deterministically replay the program from a full choice map.

        The returned trace's ``log_prob`` is ``log P̃r[t ~ P]`` for the
        given choices; raises
        :class:`~repro.core.handlers.MissingChoiceError` if the map does
        not cover every latent choice the program makes.
        """
        return self.run(ScoreHandler(_as_choice_map(choices), self.observations))

    def log_prob(self, choices: ChoiceMapLike) -> float:
        """``log P̃r[t ~ P]`` of the trace determined by ``choices``."""
        return self.score(choices).log_prob

    def __repr__(self) -> str:
        return (
            f"Model({self.name}, args={self.args!r}, "
            f"observations={len(self.observations)})"
        )


def probabilistic(fn: Callable[..., Any]) -> Callable[..., Model]:
    """Decorator turning a generative function into a ``Model`` factory.

    Mirrors the ``@probabilistic`` macro of the paper's Julia
    implementation (Listings 1-4)::

        @probabilistic
        def linreg(t, params, xs):
            ...

        model = linreg(params, xs)          # a Model, not an execution
        trace = model.simulate(rng)
    """

    def make_model(*args: Any) -> Model:
        return Model(fn, args)

    make_model.__name__ = getattr(fn, "__name__", "model")
    make_model.__doc__ = fn.__doc__
    return make_model
