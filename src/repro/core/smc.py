"""Sequential Monte Carlo with trace translators (Section 4.2).

:func:`infer` is Algorithm 2 of the paper: translate every trace of the
input collection with the trace translator, update the weights, resample
if requested (or when the effective sample size drops below a
threshold), and optionally rejuvenate each trace with an MCMC kernel
whose invariant distribution is the target posterior.

:func:`infer_sequence` iterates Algorithm 2 across a sequence of
programs, which is how the paper proposes to follow an iterative
model-editing session while retaining the guarantee of Lemma 2.

Configuration
-------------

Both entry points take a keyword-only :class:`InferenceConfig` bundling
the resampling policy, ESS threshold, resampling scheme, weight
ablation, fault policy, RNG seed, and the observability sinks (span
tracer, metrics registry, profiling hooks)::

    step = infer(translator, traces, rng,
                 config=InferenceConfig(resample="adaptive",
                                        fault_policy="drop"))

The historical per-parameter keywords (``resample=``, ``ess_threshold=``,
``resampling_scheme=``, ``use_weights=``, ``fault_policy=``) still work
but emit :class:`DeprecationWarning`; they produce byte-identical
results to the equivalent config.

Parallel execution
------------------

The translate phase treats particles independently (Lemma 2), so it can
be dispatched through a :class:`repro.parallel.ParticleExecutor` by
setting ``InferenceConfig(executor="serial"|"thread"|"process",
workers=N)``.  Executor-backed steps derive per-particle RNG streams
from one ``SeedSequence`` spawn (consuming exactly one draw from the
step generator), so all three backends produce byte-identical
collections for a fixed seed; the default ``executor=None`` keeps the
historical inline loop, in which particles share the step RNG, byte-
identical to previous releases.  With a tracer attached, an
executor-backed step nests an ``executor.<backend>`` span (with
particle/chunk/worker counters) inside ``smc.translate`` instead of the
inline loop's per-particle ``translate.particle`` spans.

Observability
-------------

With a real tracer attached, each step records the span tree
``smc.step`` → {``smc.translate`` → ``translate.particle``*,
``smc.resample``, ``smc.mcmc``}; the ``SMCStats`` timing fields read
directly from the phase spans (with the default null tracer the spans
still measure wall time but record nothing).  Hooks fire at the step's
structural boundaries and the metrics registry tallies particles,
faults, resamples, and per-step ESS.  All instrumentation is RNG-free:
enabling it never changes the sampled traces or weights.

Fault isolation
---------------

The paper assumes every translation succeeds; in practice translations
fail in structured ways (see :mod:`repro.errors`).  A
:class:`FaultPolicy` decides what one failed particle does to the
collection:

* ``fail_fast`` (default) — re-raise immediately, preserving the
  pre-policy behaviour exactly;
* ``drop`` — assign the particle ``-inf`` weight (it contributes
  nothing to estimates and disappears at the next resampling);
* ``regenerate`` — retry the translation up to ``max_retries`` times,
  then replace the particle with a fresh importance sample of the
  target posterior drawn from the prior (``translator.regenerate`` or
  ``FaultPolicy.regenerate_fn``).  The regenerated particle's weight is
  its importance weight, so the collection remains a mixture of two
  properly weighted populations and self-normalized estimates
  (Equation 5) stay consistent — Lemma 2's guarantee degrades to plain
  importance sampling for the affected particle instead of failing.

Independent of the policy, a collection-level degeneracy guard rejects
``NaN``/``+inf`` weights and total weight collapse *before* they reach
resampling, raising :class:`~repro.errors.NumericalError` or
:class:`~repro.errors.DegeneracyError` with the offending step context.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import RECOVERABLE_ERRORS, DegeneracyError, NumericalError
from .config import FaultPolicy, InferenceConfig, RegenerateFn, _validate_parameters
from .mcmc import Kernel
from .translator import TraceTranslator, validate_result
from .weighted import WeightedCollection, log_sum_exp_array

__all__ = [
    "SMCStep",
    "infer",
    "infer_sequence",
    "translate_particle",
    "SMCStats",
    "FaultPolicy",
    "InferenceConfig",
]

NEG_INF = float("-inf")

#: Sentinel distinguishing "parameter not passed" from any real value in
#: the deprecated per-parameter keywords.
_UNSET: Any = object()


@dataclass
class SMCStats:
    """Diagnostics from one Algorithm-2 step.

    The timing fields are read from the tracer's phase spans
    (``smc.translate`` / ``smc.mcmc``); with the null tracer the spans
    still measure wall time, so the fields are populated either way.
    The fault counters are all zero under ``fail_fast`` (any fault
    raises instead of being counted).  ``failed`` counts translation
    *attempts* that raised a recoverable error or produced an invalid
    weight, so ``failed >= dropped + regenerated`` whenever retries are
    enabled; ``retried`` counts the re-attempts among them.

    When the step ran through a particle executor
    (:attr:`InferenceConfig.executor`), ``faults_by_worker`` maps each
    worker (chunk) id to the number of failed translation attempts it
    observed — including zeros, so a silent worker is distinguishable
    from an unused one.  It is ``None`` for the legacy inline loop.
    """

    num_traces: int
    ess_before_resample: float
    ess_after: float
    resampled: bool
    log_mean_weight_increment: float
    translate_seconds: float
    mcmc_seconds: float
    failed: int = 0
    retried: int = 0
    dropped: int = 0
    regenerated: int = 0
    mcmc_failed: int = 0
    faults_by_worker: Optional[Dict[int, int]] = None
    #: Which runtime executed the step: ``"object"`` (one Trace per
    #: particle) or ``"columnar"`` (address-major arrays, see
    #: :mod:`repro.core.columnar`).  A columnar-configured step that
    #: spilled reports ``"object"`` — the field records what actually
    #: ran, not what was requested.
    collection_mode: str = "object"

    @property
    def total_faults(self) -> int:
        return self.failed + self.mcmc_failed

    def __str__(self) -> str:
        resampled = "yes" if self.resampled else "no"
        text = (
            f"SMC step: M={self.num_traces} ess={self.ess_before_resample:.1f}"
            f" resampled={resampled} logZ-increment={self.log_mean_weight_increment:+.3f}"
            f" translate={self.translate_seconds:.3f}s mcmc={self.mcmc_seconds:.3f}s"
        )
        if self.total_faults:
            text += (
                f" faults[failed={self.failed} retried={self.retried}"
                f" dropped={self.dropped} regenerated={self.regenerated}"
                f" mcmc_failed={self.mcmc_failed}]"
            )
            if self.faults_by_worker is not None:
                per_worker = " ".join(
                    f"w{worker}={count}"
                    for worker, count in sorted(self.faults_by_worker.items())
                )
                text += f" by-worker[{per_worker}]"
        return text


@dataclass
class SMCStep:
    """Result of one Algorithm-2 step: the new collection plus stats.

    ``collection`` is a :class:`~repro.core.weighted.WeightedCollection`
    under the default object runtime and a
    :class:`~repro.core.columnar.ColumnarCollection` when the step ran
    columnar (``InferenceConfig(collection="columnar")``); both expose
    the same estimation/diagnostics surface (``estimate``,
    ``effective_sample_size``, ``log_mean_weight``, ...).
    """

    collection: Any
    stats: SMCStats


def _resolve_regenerate(policy: FaultPolicy, translator: TraceTranslator) -> Optional[RegenerateFn]:
    if policy.mode != "regenerate":
        return None
    if policy.regenerate_fn is not None:
        return policy.regenerate_fn
    regenerate = getattr(translator, "regenerate", None)
    if regenerate is None:
        raise ValueError(
            f"fault policy 'regenerate' needs a from-scratch sampler, but "
            f"{type(translator).__name__} has no regenerate(rng) method; "
            "pass FaultPolicy(mode='regenerate', regenerate_fn=...) instead"
        )
    return regenerate


def _degeneracy_guard(log_weights: Sequence[float], context: str) -> None:
    """Reject NaN / +inf weights and total collapse before resampling."""
    weights = np.asarray(log_weights, dtype=float)
    if np.isnan(weights).any():
        raise NumericalError(
            f"NaN particle weights {context} at indices "
            f"{np.flatnonzero(np.isnan(weights)).tolist()}"
        )
    if np.isposinf(weights).any():
        raise NumericalError(
            f"+inf particle weights {context} at indices "
            f"{np.flatnonzero(np.isposinf(weights)).tolist()}"
        )
    # Collapse is detected through the same vectorized log-sum-exp kernel
    # the normalizers use, so the guard and the estimators agree exactly
    # on what "zero total mass" means.
    if log_sum_exp_array(weights) == NEG_INF:
        raise DegeneracyError(
            f"every particle weight collapsed to zero {context}; the collection "
            "carries no information (consider the 'regenerate' fault policy, "
            "more particles, or a better correspondence)",
            num_particles=len(weights),
        )


#: Per-particle fault-counter deltas: (failed, retried, dropped, regenerated).
CounterDeltas = Tuple[int, int, int, int]


def translate_particle(
    translator: TraceTranslator,
    item: Any,
    rng: np.random.Generator,
    policy: FaultPolicy,
    regenerate_fn: Optional[RegenerateFn],
) -> Tuple[str, Any, float, CounterDeltas]:
    """Translate one particle under the fault policy.

    Returns ``(outcome, trace, value, counter_deltas)`` where outcome is
    ``"ok"`` (``value`` is the log-weight increment), ``"dropped"``
    (``value`` is ``-inf``), or ``"regenerated"`` (``value`` is the
    particle's new *absolute* log weight, not an increment), and
    ``counter_deltas`` is this particle's ``(failed, retried, dropped,
    regenerated)`` contribution to the step's fault counters.

    This is the unit of work shipped to executor workers
    (:mod:`repro.parallel.worker`): it touches no shared state, so a
    chunk of particles can run it anywhere as long as each particle gets
    its own RNG stream.
    """
    if policy.mode == "fail_fast":
        result = validate_result(translator.translate(rng, item))
        return "ok", result.trace, result.log_weight, (0, 0, 0, 0)

    failed = retried = 0
    attempts_left = policy.max_retries if policy.mode == "regenerate" else 0
    first_attempt = True
    while True:
        try:
            if not first_attempt:
                retried += 1
            result = validate_result(translator.translate(rng, item))
            return "ok", result.trace, result.log_weight, (failed, retried, 0, 0)
        except RECOVERABLE_ERRORS:
            failed += 1
            first_attempt = False
            if attempts_left > 0:
                attempts_left -= 1
                continue
            break

    if policy.mode == "drop":
        return "dropped", item, NEG_INF, (failed, retried, 1, 0)

    assert regenerate_fn is not None  # resolved up front for this mode
    try:
        trace, log_weight = regenerate_fn(rng)
    except RECOVERABLE_ERRORS:
        # Even the fallback failed: degrade to dropping so one particle
        # still cannot take down the collection.
        return "dropped", item, NEG_INF, (failed + 1, retried, 1, 0)
    return "regenerated", trace, float(log_weight), (failed, retried, 0, 1)


#: Span counter names per translation outcome, precomputed to keep the
#: per-particle tracing path free of string formatting.
_OUTCOME_COUNTERS = {
    "ok": "outcome.ok",
    "dropped": "outcome.dropped",
    "regenerated": "outcome.regenerated",
}


@dataclass
class _FaultCounters:
    failed: int = 0
    retried: int = 0
    dropped: int = 0
    regenerated: int = 0
    mcmc_failed: int = 0

    def merge(self, deltas: CounterDeltas) -> None:
        failed, retried, dropped, regenerated = deltas
        self.failed += failed
        self.retried += retried
        self.dropped += dropped
        self.regenerated += regenerated


def _merge_legacy_config(
    caller: str,
    config: Optional[InferenceConfig],
    default: InferenceConfig,
    **legacy: Any,
) -> InferenceConfig:
    """Fold deprecated per-parameter keywords into an InferenceConfig.

    The old signatures keep working, but each use warns once per call
    site; mixing them with an explicit ``config`` is ambiguous (which
    value wins?) and is rejected outright.
    """
    given = {name: value for name, value in legacy.items() if value is not _UNSET}
    if not given:
        return config if config is not None else default
    if config is not None:
        raise TypeError(
            f"{caller}() got both config= and the deprecated parameter(s) "
            f"{sorted(given)}; pass everything through InferenceConfig"
        )
    names = ", ".join(sorted(given))
    warnings.warn(
        f"{caller}({names}=...) is deprecated; pass "
        f"config=InferenceConfig({names}=...) instead",
        DeprecationWarning,
        stacklevel=3,
    )
    return default.replace(**given)


def _resolve_rng(
    caller: str, rng: Optional[np.random.Generator], config: InferenceConfig
) -> np.random.Generator:
    if rng is not None:
        return rng
    if config.seed is not None:
        return config.rng()
    raise TypeError(f"{caller}() needs an rng (or an InferenceConfig with a seed)")


def _resolve_config_executor(config: InferenceConfig) -> Any:
    """Resolve ``config.executor`` to a ParticleExecutor (or None).

    Imported lazily so the (overwhelmingly common) ``executor=None``
    path never touches :mod:`repro.parallel` — and so the core package
    has no import-time dependency on it.
    """
    if config.executor is None:
        return None
    from ..parallel import resolve_executor

    return resolve_executor(config.executor, config.workers)


def _resolve_config_checkpoints(config: InferenceConfig) -> Any:
    """Build the CheckpointManager for ``config.checkpoint_dir`` (or None).

    Lazy for the same reason as the executor: the default unconfigured
    path must not import (or pay for) :mod:`repro.store`.
    """
    if config.checkpoint_dir is None:
        return None
    from ..store import CheckpointManager

    return CheckpointManager(config.checkpoint_dir, every=config.checkpoint_every)


def _run_preflight(
    translators: Sequence[TraceTranslator],
    config: InferenceConfig,
) -> None:
    """The opt-in static pre-flight (``config.validate``).

    Lazy like the executor/checkpoint resolvers: ``validate="off"`` (the
    default) never imports :mod:`repro.analysis`, and the check runs
    once per ``infer``/``infer_sequence`` call — never per particle or
    per step.
    """
    if config.validate == "off":
        return
    from ..analysis.preflight import apply_validation_mode, preflight_inference

    apply_validation_mode(config.validate, preflight_inference(translators, config))


def _infer_step(
    translator: TraceTranslator,
    traces: WeightedCollection,
    rng: np.random.Generator,
    mcmc_kernel: Optional[Kernel],
    config: InferenceConfig,
    step_index: Optional[int] = None,
    executor: Any = None,
) -> SMCStep:
    """One Algorithm-2 step under an already-validated config."""
    if config.collection == "columnar":
        from .columnar import ColumnarSpill, columnar_infer_step

        try:
            return columnar_infer_step(
                translator,
                traces,
                rng,
                mcmc_kernel,
                config,
                step_index=step_index,
                executor=executor,
            )
        except ColumnarSpill:
            # Spill: this step cannot be represented columnar — fall
            # through to the object path.  Spill checks that can fire on
            # a representable population run before any randomness is
            # consumed, so the replay below is byte-identical to a pure
            # object-mode run of the same step.
            pass
    if not isinstance(traces, WeightedCollection):
        # Columnar input reaching the object path (spill, or a config
        # switch mid-sequence): materialize object traces once.
        traces = traces.to_weighted()
    policy: FaultPolicy = config.fault_policy  # coerced by InferenceConfig
    regenerate_fn = _resolve_regenerate(policy, translator)
    counters = _FaultCounters()
    tracer, metrics, hooks = config.tracer, config.metrics, config.hooks
    trace_enabled = tracer.enabled

    if trace_enabled or metrics.enabled:
        bind = getattr(translator, "bind_observability", None)
        if bind is not None:
            bind(tracer, metrics)

    hooks.on_step_start(step_index, len(traces))
    with tracer.span("smc.step") as step_span:
        new_items: List[Any] = []
        outcomes: List[str] = []
        #: Per-particle value: the log-weight increment for "ok", -inf for
        #: "dropped", the new absolute log weight for "regenerated".
        values: List[float] = []
        faults_by_worker: Optional[Dict[int, int]] = None
        backend_name: Optional[str] = None
        open_span = tracer.span  # hoisted: one bound-method lookup, not N
        on_particle = hooks.on_particle
        with tracer.span("smc.translate") as translate_span:
            if executor is None:
                # Legacy inline loop: every particle draws from the shared
                # step RNG, byte-identical to the pre-executor behaviour.
                for index, item in enumerate(traces.items):
                    if trace_enabled:
                        with open_span("translate.particle") as particle_span:
                            outcome, trace, value, deltas = translate_particle(
                                translator, item, rng, policy, regenerate_fn
                            )
                            particle_span.count(_OUTCOME_COUNTERS[outcome])
                    else:
                        outcome, trace, value, deltas = translate_particle(
                            translator, item, rng, policy, regenerate_fn
                        )
                    counters.merge(deltas)
                    on_particle(index, outcome)
                    outcomes.append(outcome)
                    new_items.append(trace)
                    values.append(value)
            else:
                from ..parallel import spawn_particle_rngs

                backend_name = getattr(executor, "name", type(executor).__name__)
                with open_span(f"executor.{backend_name}") as executor_span:
                    seeds = spawn_particle_rngs(rng, len(traces))
                    results = executor.map_translate(
                        translator, traces.items, seeds, policy, regenerate_fn
                    )
                    faults_by_worker = {}
                    for index, result in enumerate(results):
                        counters.merge(
                            (result.failed, result.retried, result.dropped,
                             result.regenerated)
                        )
                        faults_by_worker[result.worker] = (
                            faults_by_worker.get(result.worker, 0) + result.failed
                        )
                        # Hooks fire in particle order after the map returns,
                        # so observers see the same sequence as the inline
                        # loop — just batched at the end of the phase.
                        on_particle(index, result.outcome)
                        outcomes.append(result.outcome)
                        new_items.append(result.trace)
                        values.append(result.value)
                    if trace_enabled:
                        executor_span.count("particles", len(results))
                        executor_span.count("chunks", len(faults_by_worker))
                        executor_span.count(
                            "workers", int(getattr(executor, "workers", 0))
                        )
                        for outcome_kind, counter in _OUTCOME_COUNTERS.items():
                            observed = outcomes.count(outcome_kind)
                            if observed:
                                executor_span.count(counter, observed)

        # Vectorized weight assembly: one numpy pass instead of a Python
        # branch per particle.  "ok" carries the old weight forward (plus
        # the increment unless ablated); "dropped" lands on -inf and
        # "regenerated" on its absolute importance weight — both of which
        # arrive pre-encoded in `values`.
        value_array = np.asarray(values, dtype=float)
        old_log_weights = np.asarray(traces.log_weights, dtype=float)
        ok_mask = np.fromiter(
            (outcome == "ok" for outcome in outcomes), dtype=bool, count=len(outcomes)
        )
        regenerated_mask = np.fromiter(
            (outcome == "regenerated" for outcome in outcomes),
            dtype=bool,
            count=len(outcomes),
        )
        carried = (
            old_log_weights + value_array if config.use_weights else old_log_weights
        )
        new_log_weights = np.where(ok_mask, carried, value_array)
        collection: WeightedCollection = WeightedCollection(
            new_items,
            new_log_weights.tolist(),
            metadata=None if traces.metadata is None else list(traces.metadata),
        )

        # Incremental evidence estimate, entirely in log space:
        # logsumexp_j(log W_j + d_j) with W the input's normalized weights
        # (estimates Z_Q / Z_P; chains across steps into the standard SMC
        # marginal-likelihood estimator).  Regenerated particles are
        # excluded — they have no translation increment — while dropped
        # particles contribute exactly zero mass via d = -inf.  Log space
        # keeps particles whose linear weight underflows exp() in the sum.
        input_log_norm = traces.log_normalized_weights()
        log_mean_increment = float(
            log_sum_exp_array((input_log_norm + value_array)[~regenerated_mask])
        )

        _degeneracy_guard(collection.log_weights, "after translation")
        ess_before = collection.effective_sample_size()
        should_resample = config.resample == "always" or (
            config.resample == "adaptive"
            and ess_before < config.ess_threshold * len(collection)
        )
        hooks.on_resample(ess_before, should_resample)
        if should_resample:
            with tracer.span("smc.resample"):
                collection = collection.resample(rng, scheme=config.resampling_scheme)

        with tracer.span("smc.mcmc") as mcmc_span:
            if mcmc_kernel is not None:
                if policy.contains_faults:
                    rejuvenated: List[Any] = []
                    for item, log_weight in zip(collection.items, collection.log_weights):
                        if log_weight == NEG_INF:
                            rejuvenated.append(item)  # dead particle; don't waste MCMC on it
                            continue
                        try:
                            rejuvenated.append(mcmc_kernel(rng, item))
                        except RECOVERABLE_ERRORS:
                            counters.mcmc_failed += 1
                            rejuvenated.append(item)  # keep the pre-kernel trace
                    collection = WeightedCollection(
                        rejuvenated,
                        list(collection.log_weights),
                        metadata=collection.metadata,
                    )
                else:
                    collection = collection.map(lambda trace: mcmc_kernel(rng, trace))

        if trace_enabled:
            step_span.count("particles", len(traces))
            step_span.count("faults", counters.failed + counters.mcmc_failed)

    if metrics.enabled:
        metrics.counter("smc.steps").inc()
        metrics.counter("smc.particles_translated").inc(len(traces))
        metrics.counter("smc.particles_dropped").inc(counters.dropped)
        metrics.counter("smc.particles_regenerated").inc(counters.regenerated)
        metrics.counter("smc.faults.failed").inc(counters.failed)
        metrics.counter("smc.faults.retried").inc(counters.retried)
        metrics.counter("smc.faults.mcmc_failed").inc(counters.mcmc_failed)
        if should_resample:
            metrics.counter("smc.resamples").inc()
        if backend_name is not None:
            metrics.counter(f"smc.executor.{backend_name}.steps").inc()
            metrics.counter(f"smc.executor.{backend_name}.particles").inc(len(traces))
        metrics.histogram("smc.ess_before_resample").observe(ess_before)
        metrics.histogram("smc.translate_seconds").observe(translate_span.duration)

    stats = SMCStats(
        num_traces=len(collection),
        ess_before_resample=ess_before,
        ess_after=collection.effective_sample_size(),
        resampled=should_resample,
        log_mean_weight_increment=log_mean_increment,
        translate_seconds=translate_span.duration,
        mcmc_seconds=mcmc_span.duration,
        failed=counters.failed,
        retried=counters.retried,
        dropped=counters.dropped,
        regenerated=counters.regenerated,
        mcmc_failed=counters.mcmc_failed,
        faults_by_worker=faults_by_worker,
    )
    hooks.on_step_end(stats)
    return SMCStep(collection, stats)


def infer(
    translator: TraceTranslator,
    traces: WeightedCollection,
    rng: Optional[np.random.Generator] = None,
    mcmc_kernel: Optional[Kernel] = None,
    resample: Any = _UNSET,
    ess_threshold: Any = _UNSET,
    resampling_scheme: Any = _UNSET,
    use_weights: Any = _UNSET,
    fault_policy: Any = _UNSET,
    *,
    config: Optional[InferenceConfig] = None,
) -> SMCStep:
    """One step of SMC for probabilistic programs (Algorithm 2).

    Parameters
    ----------
    translator:
        The trace translator ``R = (P, Q, k, l)``.
    traces:
        Weighted collection ``{(t_j, w_j)}`` approximating the posterior
        of ``P``.
    rng:
        The inference random source; may be omitted when ``config.seed``
        is set.
    mcmc_kernel:
        Optional rejuvenation kernel for ``Q`` (must leave the posterior
        of ``Q`` invariant); applied once per trace after translation.
        Under a containing fault policy, zero-weight particles are
        skipped and a kernel failure keeps the pre-kernel trace.
    config:
        Keyword-only :class:`InferenceConfig` carrying everything else:
        resampling policy/threshold/scheme, the weight ablation, the
        fault policy, the seed, and the observability sinks.

    The remaining positional-or-keyword parameters (``resample``,
    ``ess_threshold``, ``resampling_scheme``, ``use_weights``,
    ``fault_policy``) are the deprecated pre-config spelling; they still
    work, emit :class:`DeprecationWarning`, and cannot be combined with
    ``config``.
    """
    config = _merge_legacy_config(
        "infer",
        config,
        InferenceConfig(),
        resample=resample,
        ess_threshold=ess_threshold,
        resampling_scheme=resampling_scheme,
        use_weights=use_weights,
        fault_policy=fault_policy,
    )
    rng = _resolve_rng("infer", rng, config)
    _run_preflight([translator], config)
    executor = _resolve_config_executor(config)
    return _infer_step(translator, traces, rng, mcmc_kernel, config, executor=executor)


def infer_sequence(
    translators: Sequence[TraceTranslator],
    initial: WeightedCollection,
    rng: Optional[np.random.Generator] = None,
    mcmc_kernels: Optional[Sequence[Optional[Kernel]]] = None,
    resample: Any = _UNSET,
    ess_threshold: Any = _UNSET,
    resampling_scheme: Any = _UNSET,
    fault_policy: Any = _UNSET,
    *,
    config: Optional[InferenceConfig] = None,
    step_offset: int = 0,
    correspondence: Optional[str] = None,
) -> List[SMCStep]:
    """Iterate Algorithm 2 across a sequence of programs.

    ``translators[k]`` must translate from the target of
    ``translators[k-1]`` (programs are modified iteratively, Section 4.2
    "Multiple Steps and resample").  Returns the per-step results; the
    final collection is ``steps[-1].collection``.

    With ``correspondence="derive"``, pass *models* (the program after
    each edit) instead of translators: the adjacent correspondences are
    derived automatically via
    :func:`repro.derive.derive_sequence_translators`, so no hand-written
    address map is needed.

    Configuration follows :func:`infer` (one keyword-only
    :class:`InferenceConfig`, shared by every step; the deprecated
    per-parameter keywords still work) except that the default
    resampling policy is ``"adaptive"``.  The hooks' ``on_step_start``
    receives the step index, and a
    :class:`~repro.errors.DegeneracyError` raised mid-sequence is
    annotated with the index of the offending step.

    Checkpointing
    -------------

    With ``config.checkpoint_dir`` set, the collection and the RNG
    generator state are snapshotted through
    :class:`repro.store.CheckpointManager` after every
    ``config.checkpoint_every``-th step (and always after the final
    one).  ``step_offset`` shifts the global step indices — pass the
    resumed checkpoint's ``step + 1`` together with the *remaining*
    translators, and the continued run reports, checkpoints, and draws
    randomness exactly as the uninterrupted run would: because the
    generator state is captured at the step boundary, kill-and-resume
    reproduces the uninterrupted final collection byte for byte.
    """
    if correspondence is not None:
        if correspondence != "derive":
            raise ValueError(
                f"correspondence must be None or 'derive', got {correspondence!r}"
            )
        # Deferred: core must stay importable without the derive
        # subsystem (which itself imports core).
        from ..derive import derive_sequence_translators

        translators = derive_sequence_translators(translators)
    config = _merge_legacy_config(
        "infer_sequence",
        config,
        InferenceConfig(resample="adaptive"),
        resample=resample,
        ess_threshold=ess_threshold,
        resampling_scheme=resampling_scheme,
        fault_policy=fault_policy,
    )
    rng = _resolve_rng("infer_sequence", rng, config)
    _run_preflight(list(translators), config)
    executor = _resolve_config_executor(config)  # resolved once, shared by all steps
    if mcmc_kernels is None:
        mcmc_kernels = [None] * len(translators)
    if len(mcmc_kernels) != len(translators):
        raise ValueError("one (possibly None) MCMC kernel per translator is required")
    if step_offset < 0:
        raise ValueError(f"step_offset must be >= 0, got {step_offset}")
    checkpoints = _resolve_config_checkpoints(config)

    steps: List[SMCStep] = []
    collection = initial
    for local_index, (translator, kernel) in enumerate(zip(translators, mcmc_kernels)):
        step_index = step_offset + local_index
        try:
            step = _infer_step(
                translator, collection, rng, kernel, config,
                step_index=step_index, executor=executor,
            )
        except DegeneracyError as error:
            if error.step is None:
                error.step = step_index
            raise
        steps.append(step)
        collection = step.collection
        if checkpoints is not None:
            # The generator state is captured *after* the step, so a
            # resume replays the remaining steps with exactly the draws
            # the uninterrupted run would have made.
            checkpoints.maybe_save(
                step_index,
                collection,
                rng=rng,
                extra={"stats": step.stats},
                force=local_index == len(translators) - 1,
            )
    return steps
