"""Sequential Monte Carlo with trace translators (Section 4.2).

:func:`infer` is Algorithm 2 of the paper: translate every trace of the
input collection with the trace translator, update the weights, resample
if requested (or when the effective sample size drops below a
threshold), and optionally rejuvenate each trace with an MCMC kernel
whose invariant distribution is the target posterior.

:func:`infer_sequence` iterates Algorithm 2 across a sequence of
programs, which is how the paper proposes to follow an iterative
model-editing session while retaining the guarantee of Lemma 2.

Fault isolation
---------------

The paper assumes every translation succeeds; in practice translations
fail in structured ways (see :mod:`repro.errors`).  A
:class:`FaultPolicy` decides what one failed particle does to the
collection:

* ``fail_fast`` (default) — re-raise immediately, preserving the
  pre-policy behaviour exactly;
* ``drop`` — assign the particle ``-inf`` weight (it contributes
  nothing to estimates and disappears at the next resampling);
* ``regenerate`` — retry the translation up to ``max_retries`` times,
  then replace the particle with a fresh importance sample of the
  target posterior drawn from the prior (``translator.regenerate`` or
  ``FaultPolicy.regenerate_fn``).  The regenerated particle's weight is
  its importance weight, so the collection remains a mixture of two
  properly weighted populations and self-normalized estimates
  (Equation 5) stay consistent — Lemma 2's guarantee degrades to plain
  importance sampling for the affected particle instead of failing.

Independent of the policy, a collection-level degeneracy guard rejects
``NaN``/``+inf`` weights and total weight collapse *before* they reach
resampling, raising :class:`~repro.errors.NumericalError` or
:class:`~repro.errors.DegeneracyError` with the offending step context.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import RECOVERABLE_ERRORS, DegeneracyError, NumericalError
from .handlers import log_sum_exp
from .mcmc import Kernel
from .translator import TraceTranslator, validate_result
from .weighted import RESAMPLING_SCHEMES, WeightedCollection

__all__ = ["SMCStep", "infer", "infer_sequence", "SMCStats", "FaultPolicy"]

NEG_INF = float("-inf")

#: A from-scratch sampler for the target posterior: ``fn(rng) ->
#: (trace, log_weight)`` with the trace properly weighted by
#: ``log_weight`` (e.g. likelihood weighting from the prior).
RegenerateFn = Callable[[np.random.Generator], Tuple[Any, float]]


@dataclass
class FaultPolicy:
    """What :func:`infer` does when translating one particle fails.

    Parameters
    ----------
    mode:
        ``"fail_fast"`` re-raises the first recoverable error (exactly
        the pre-policy behaviour); ``"drop"`` gives the failed particle
        ``-inf`` weight; ``"regenerate"`` retries and then falls back to
        importance sampling the particle from the prior.
    max_retries:
        Extra translation attempts per particle before ``regenerate``
        falls back to prior regeneration (ignored by the other modes —
        ``drop`` never retries, ``fail_fast`` never catches).
    regenerate_fn:
        Override for the from-scratch sampler used by ``regenerate``;
        defaults to the translator's own ``regenerate`` method.
    """

    MODES = ("fail_fast", "drop", "regenerate")

    mode: str = "fail_fast"
    max_retries: int = 2
    regenerate_fn: Optional[RegenerateFn] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.mode not in self.MODES:
            raise ValueError(
                f"unknown fault-policy mode {self.mode!r}; "
                f"choose from {list(self.MODES)}"
            )
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")

    @classmethod
    def coerce(cls, value: Union[str, "FaultPolicy", None]) -> "FaultPolicy":
        """Accept a policy object, a mode name, or None (= fail_fast)."""
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls(mode=value)
        raise TypeError(f"fault_policy must be a FaultPolicy or mode name, got {value!r}")

    @property
    def contains_faults(self) -> bool:
        return self.mode != "fail_fast"


@dataclass
class SMCStats:
    """Diagnostics from one Algorithm-2 step.

    The fault counters are all zero under ``fail_fast`` (any fault
    raises instead of being counted).  ``failed`` counts translation
    *attempts* that raised a recoverable error or produced an invalid
    weight, so ``failed >= dropped + regenerated`` whenever retries are
    enabled; ``retried`` counts the re-attempts among them.
    """

    num_traces: int
    ess_before_resample: float
    ess_after: float
    resampled: bool
    log_mean_weight_increment: float
    translate_seconds: float
    mcmc_seconds: float
    failed: int = 0
    retried: int = 0
    dropped: int = 0
    regenerated: int = 0
    mcmc_failed: int = 0

    @property
    def total_faults(self) -> int:
        return self.failed + self.mcmc_failed

    def __str__(self) -> str:
        resampled = "yes" if self.resampled else "no"
        text = (
            f"SMC step: M={self.num_traces} ess={self.ess_before_resample:.1f}"
            f" resampled={resampled} logZ-increment={self.log_mean_weight_increment:+.3f}"
            f" translate={self.translate_seconds:.3f}s mcmc={self.mcmc_seconds:.3f}s"
        )
        if self.total_faults:
            text += (
                f" faults[failed={self.failed} retried={self.retried}"
                f" dropped={self.dropped} regenerated={self.regenerated}"
                f" mcmc_failed={self.mcmc_failed}]"
            )
        return text


@dataclass
class SMCStep:
    """Result of one Algorithm-2 step: the new collection plus stats."""

    collection: WeightedCollection
    stats: SMCStats


def _validate_parameters(resample: str, ess_threshold: float, resampling_scheme: str) -> None:
    """Up-front validation with actionable messages.

    Catching a bad ``ess_threshold`` or scheme here — rather than deep
    inside ``resample`` after minutes of translation — is the difference
    between an instant traceback and a wasted run.
    """
    if resample not in ("never", "always", "adaptive"):
        raise ValueError(
            f"unknown resample policy {resample!r}; "
            "choose 'never', 'always', or 'adaptive'"
        )
    threshold = float(ess_threshold)
    if math.isnan(threshold) or not 0.0 < threshold <= 1.0:
        raise ValueError(
            f"ess_threshold must be in (0, 1], got {ess_threshold!r}; it is the "
            "fraction of the particle count below which adaptive resampling triggers"
        )
    if resampling_scheme not in RESAMPLING_SCHEMES:
        raise ValueError(
            f"unknown resampling scheme {resampling_scheme!r}; "
            f"choose from {sorted(RESAMPLING_SCHEMES)}"
        )


def _resolve_regenerate(policy: FaultPolicy, translator: TraceTranslator) -> Optional[RegenerateFn]:
    if policy.mode != "regenerate":
        return None
    if policy.regenerate_fn is not None:
        return policy.regenerate_fn
    regenerate = getattr(translator, "regenerate", None)
    if regenerate is None:
        raise ValueError(
            f"fault policy 'regenerate' needs a from-scratch sampler, but "
            f"{type(translator).__name__} has no regenerate(rng) method; "
            "pass FaultPolicy(mode='regenerate', regenerate_fn=...) instead"
        )
    return regenerate


def _degeneracy_guard(log_weights: Sequence[float], context: str) -> None:
    """Reject NaN / +inf weights and total collapse before resampling."""
    weights = np.asarray(log_weights, dtype=float)
    if np.isnan(weights).any():
        raise NumericalError(
            f"NaN particle weights {context} at indices "
            f"{np.flatnonzero(np.isnan(weights)).tolist()}"
        )
    if np.isposinf(weights).any():
        raise NumericalError(
            f"+inf particle weights {context} at indices "
            f"{np.flatnonzero(np.isposinf(weights)).tolist()}"
        )
    if bool(np.all(weights == NEG_INF)):
        raise DegeneracyError(
            f"every particle weight collapsed to zero {context}; the collection "
            "carries no information (consider the 'regenerate' fault policy, "
            "more particles, or a better correspondence)",
            num_particles=len(weights),
        )


def _translate_particle(
    translator: TraceTranslator,
    item: Any,
    rng: np.random.Generator,
    policy: FaultPolicy,
    regenerate_fn: Optional[RegenerateFn],
    counters: "_FaultCounters",
) -> Tuple[str, Any, float]:
    """Translate one particle under the fault policy.

    Returns ``(outcome, trace, log_weight_increment_or_weight)`` where
    outcome is ``"ok"`` (increment), ``"dropped"`` (increment is
    ``-inf``), or ``"regenerated"`` (the value is the particle's new
    *absolute* log weight, not an increment).
    """
    if policy.mode == "fail_fast":
        result = validate_result(translator.translate(rng, item))
        return "ok", result.trace, result.log_weight

    attempts_left = policy.max_retries if policy.mode == "regenerate" else 0
    first_attempt = True
    while True:
        try:
            if not first_attempt:
                counters.retried += 1
            result = validate_result(translator.translate(rng, item))
            return "ok", result.trace, result.log_weight
        except RECOVERABLE_ERRORS:
            counters.failed += 1
            first_attempt = False
            if attempts_left > 0:
                attempts_left -= 1
                continue
            break

    if policy.mode == "drop":
        counters.dropped += 1
        return "dropped", item, NEG_INF

    assert regenerate_fn is not None  # resolved up front for this mode
    try:
        trace, log_weight = regenerate_fn(rng)
    except RECOVERABLE_ERRORS:
        # Even the fallback failed: degrade to dropping so one particle
        # still cannot take down the collection.
        counters.failed += 1
        counters.dropped += 1
        return "dropped", item, NEG_INF
    counters.regenerated += 1
    return "regenerated", trace, float(log_weight)


@dataclass
class _FaultCounters:
    failed: int = 0
    retried: int = 0
    dropped: int = 0
    regenerated: int = 0
    mcmc_failed: int = 0


def infer(
    translator: TraceTranslator,
    traces: WeightedCollection,
    rng: np.random.Generator,
    mcmc_kernel: Optional[Kernel] = None,
    resample: str = "never",
    ess_threshold: float = 0.5,
    resampling_scheme: str = "multinomial",
    use_weights: bool = True,
    fault_policy: Union[str, FaultPolicy, None] = "fail_fast",
) -> SMCStep:
    """One step of SMC for probabilistic programs (Algorithm 2).

    Parameters
    ----------
    translator:
        The trace translator ``R = (P, Q, k, l)``.
    traces:
        Weighted collection ``{(t_j, w_j)}`` approximating the posterior
        of ``P``.
    mcmc_kernel:
        Optional rejuvenation kernel for ``Q`` (must leave the posterior
        of ``Q`` invariant); applied once per trace after translation.
        Under a containing fault policy, zero-weight particles are
        skipped and a kernel failure keeps the pre-kernel trace.
    resample:
        ``"never"``, ``"always"``, or ``"adaptive"`` (resample when the
        normalized ESS falls below ``ess_threshold``).
    use_weights:
        When False, the weight increments produced by the translator are
        discarded — the paper's "Incremental (no weights)" ablation,
        which converges to the *wrong* posterior (the output distribution
        ``η`` rather than ``Q``) and is included for Figures 8-9.
    fault_policy:
        A :class:`FaultPolicy` or mode name deciding what a failed
        particle translation does to the collection; see the module
        docstring.
    """
    _validate_parameters(resample, ess_threshold, resampling_scheme)
    policy = FaultPolicy.coerce(fault_policy)
    regenerate_fn = _resolve_regenerate(policy, translator)
    counters = _FaultCounters()

    start = time.perf_counter()
    new_items: List[Any] = []
    new_log_weights: List[float] = []
    #: Per-particle evidence increment; None excludes the particle from
    #: the logZ estimate (regenerated particles carry no increment).
    increments: List[Optional[float]] = []
    for item, old_log_weight in zip(traces.items, traces.log_weights):
        outcome, trace, value = _translate_particle(
            translator, item, rng, policy, regenerate_fn, counters
        )
        new_items.append(trace)
        if outcome == "regenerated":
            # An absolute importance weight for the target posterior:
            # the particle's history (and increment) no longer applies.
            new_log_weights.append(value)
            increments.append(None)
        elif outcome == "dropped":
            new_log_weights.append(NEG_INF)
            increments.append(NEG_INF)
        else:
            increments.append(value)
            new_log_weights.append(old_log_weight + value if use_weights else old_log_weight)
    translate_seconds = time.perf_counter() - start

    collection: WeightedCollection = WeightedCollection(new_items, new_log_weights)

    # Incremental evidence estimate: sum_j W_j * ŵ_j with W the input's
    # normalized weights (estimates Z_Q / Z_P; chains across steps into
    # the standard SMC marginal-likelihood estimator).  Regenerated
    # particles are excluded: they have no translation increment.
    input_weights = traces.normalized_weights()
    log_mean_increment = float(
        log_sum_exp(
            math.log(w) + d
            for w, d in zip(input_weights, increments)
            if w > 0.0 and d is not None
        )
    )

    _degeneracy_guard(collection.log_weights, "after translation")
    ess_before = collection.effective_sample_size()
    should_resample = resample == "always" or (
        resample == "adaptive" and ess_before < ess_threshold * len(collection)
    )
    if should_resample:
        collection = collection.resample(rng, scheme=resampling_scheme)

    mcmc_start = time.perf_counter()
    if mcmc_kernel is not None:
        if policy.contains_faults:
            rejuvenated: List[Any] = []
            for item, log_weight in zip(collection.items, collection.log_weights):
                if log_weight == NEG_INF:
                    rejuvenated.append(item)  # dead particle; don't waste MCMC on it
                    continue
                try:
                    rejuvenated.append(mcmc_kernel(rng, item))
                except RECOVERABLE_ERRORS:
                    counters.mcmc_failed += 1
                    rejuvenated.append(item)  # keep the pre-kernel trace
            collection = WeightedCollection(rejuvenated, list(collection.log_weights))
        else:
            collection = collection.map(lambda trace: mcmc_kernel(rng, trace))
    mcmc_seconds = time.perf_counter() - mcmc_start

    stats = SMCStats(
        num_traces=len(collection),
        ess_before_resample=ess_before,
        ess_after=collection.effective_sample_size(),
        resampled=should_resample,
        log_mean_weight_increment=log_mean_increment,
        translate_seconds=translate_seconds,
        mcmc_seconds=mcmc_seconds,
        failed=counters.failed,
        retried=counters.retried,
        dropped=counters.dropped,
        regenerated=counters.regenerated,
        mcmc_failed=counters.mcmc_failed,
    )
    return SMCStep(collection, stats)


def infer_sequence(
    translators: Sequence[TraceTranslator],
    initial: WeightedCollection,
    rng: np.random.Generator,
    mcmc_kernels: Optional[Sequence[Optional[Kernel]]] = None,
    resample: str = "adaptive",
    ess_threshold: float = 0.5,
    resampling_scheme: str = "multinomial",
    fault_policy: Union[str, FaultPolicy, None] = "fail_fast",
) -> List[SMCStep]:
    """Iterate Algorithm 2 across a sequence of programs.

    ``translators[k]`` must translate from the target of
    ``translators[k-1]`` (programs are modified iteratively, Section 4.2
    "Multiple Steps and resample").  Returns the per-step results; the
    final collection is ``steps[-1].collection``.

    All parameters are validated before the first translation, and a
    :class:`~repro.errors.DegeneracyError` raised mid-sequence is
    annotated with the index of the offending step.
    """
    _validate_parameters(resample, ess_threshold, resampling_scheme)
    FaultPolicy.coerce(fault_policy)
    if mcmc_kernels is None:
        mcmc_kernels = [None] * len(translators)
    if len(mcmc_kernels) != len(translators):
        raise ValueError("one (possibly None) MCMC kernel per translator is required")

    steps: List[SMCStep] = []
    collection = initial
    for step_index, (translator, kernel) in enumerate(zip(translators, mcmc_kernels)):
        try:
            step = infer(
                translator,
                collection,
                rng,
                mcmc_kernel=kernel,
                resample=resample,
                ess_threshold=ess_threshold,
                resampling_scheme=resampling_scheme,
                fault_policy=fault_policy,
            )
        except DegeneracyError as error:
            if error.step is None:
                error.step = step_index
            raise
        steps.append(step)
        collection = step.collection
    return steps
