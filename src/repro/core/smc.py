"""Sequential Monte Carlo with trace translators (Section 4.2).

:func:`infer` is Algorithm 2 of the paper: translate every trace of the
input collection with the trace translator, update the weights, resample
if requested (or when the effective sample size drops below a
threshold), and optionally rejuvenate each trace with an MCMC kernel
whose invariant distribution is the target posterior.

:func:`infer_sequence` iterates Algorithm 2 across a sequence of
programs, which is how the paper proposes to follow an iterative
model-editing session while retaining the guarantee of Lemma 2.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .handlers import log_sum_exp
from .mcmc import Kernel
from .translator import TraceTranslator
from .weighted import WeightedCollection

__all__ = ["SMCStep", "infer", "infer_sequence", "SMCStats"]


@dataclass
class SMCStats:
    """Diagnostics from one Algorithm-2 step."""

    num_traces: int
    ess_before_resample: float
    ess_after: float
    resampled: bool
    log_mean_weight_increment: float
    translate_seconds: float
    mcmc_seconds: float

    def __str__(self) -> str:
        resampled = "yes" if self.resampled else "no"
        return (
            f"SMC step: M={self.num_traces} ess={self.ess_before_resample:.1f}"
            f" resampled={resampled} logZ-increment={self.log_mean_weight_increment:+.3f}"
            f" translate={self.translate_seconds:.3f}s mcmc={self.mcmc_seconds:.3f}s"
        )


@dataclass
class SMCStep:
    """Result of one Algorithm-2 step: the new collection plus stats."""

    collection: WeightedCollection
    stats: SMCStats


def infer(
    translator: TraceTranslator,
    traces: WeightedCollection,
    rng: np.random.Generator,
    mcmc_kernel: Optional[Kernel] = None,
    resample: str = "never",
    ess_threshold: float = 0.5,
    resampling_scheme: str = "multinomial",
    use_weights: bool = True,
) -> SMCStep:
    """One step of SMC for probabilistic programs (Algorithm 2).

    Parameters
    ----------
    translator:
        The trace translator ``R = (P, Q, k, l)``.
    traces:
        Weighted collection ``{(t_j, w_j)}`` approximating the posterior
        of ``P``.
    mcmc_kernel:
        Optional rejuvenation kernel for ``Q`` (must leave the posterior
        of ``Q`` invariant); applied once per trace after translation.
    resample:
        ``"never"``, ``"always"``, or ``"adaptive"`` (resample when the
        normalized ESS falls below ``ess_threshold``).
    use_weights:
        When False, the weight increments produced by the translator are
        discarded — the paper's "Incremental (no weights)" ablation,
        which converges to the *wrong* posterior (the output distribution
        ``η`` rather than ``Q``) and is included for Figures 8-9.
    """
    if resample not in ("never", "always", "adaptive"):
        raise ValueError(f"unknown resample policy {resample!r}")

    start = time.perf_counter()
    new_items = []
    increments: List[float] = []
    for item in traces.items:
        result = translator.translate(rng, item)
        new_items.append(result.trace)
        increments.append(result.log_weight)
    translate_seconds = time.perf_counter() - start

    if use_weights:
        collection = WeightedCollection(new_items, traces.log_weights).scaled(increments)
    else:
        collection = WeightedCollection(new_items, list(traces.log_weights))
    # Incremental evidence estimate: sum_j W_j * ŵ_j with W the input's
    # normalized weights (estimates Z_Q / Z_P; chains across steps into
    # the standard SMC marginal-likelihood estimator).
    input_weights = traces.normalized_weights()
    log_mean_increment = float(
        log_sum_exp(
            math.log(w) + d for w, d in zip(input_weights, increments) if w > 0.0
        )
    )

    ess_before = collection.effective_sample_size()
    should_resample = resample == "always" or (
        resample == "adaptive" and ess_before < ess_threshold * len(collection)
    )
    if should_resample:
        collection = collection.resample(rng, scheme=resampling_scheme)

    mcmc_start = time.perf_counter()
    if mcmc_kernel is not None:
        collection = collection.map(lambda trace: mcmc_kernel(rng, trace))
    mcmc_seconds = time.perf_counter() - mcmc_start

    stats = SMCStats(
        num_traces=len(collection),
        ess_before_resample=ess_before,
        ess_after=collection.effective_sample_size(),
        resampled=should_resample,
        log_mean_weight_increment=log_mean_increment,
        translate_seconds=translate_seconds,
        mcmc_seconds=mcmc_seconds,
    )
    return SMCStep(collection, stats)


def infer_sequence(
    translators: Sequence[TraceTranslator],
    initial: WeightedCollection,
    rng: np.random.Generator,
    mcmc_kernels: Optional[Sequence[Optional[Kernel]]] = None,
    resample: str = "adaptive",
    ess_threshold: float = 0.5,
    resampling_scheme: str = "multinomial",
) -> List[SMCStep]:
    """Iterate Algorithm 2 across a sequence of programs.

    ``translators[k]`` must translate from the target of
    ``translators[k-1]`` (programs are modified iteratively, Section 4.2
    "Multiple Steps and resample").  Returns the per-step results; the
    final collection is ``steps[-1].collection``.
    """
    if mcmc_kernels is None:
        mcmc_kernels = [None] * len(translators)
    if len(mcmc_kernels) != len(translators):
        raise ValueError("one (possibly None) MCMC kernel per translator is required")

    steps: List[SMCStep] = []
    collection = initial
    for translator, kernel in zip(translators, mcmc_kernels):
        step = infer(
            translator,
            collection,
            rng,
            mcmc_kernel=kernel,
            resample=resample,
            ess_threshold=ess_threshold,
            resampling_scheme=resampling_scheme,
        )
        steps.append(step)
        collection = step.collection
    return steps
