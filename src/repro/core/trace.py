"""Traces of the embedded PPL.

A trace records every random choice made during one execution of a
probabilistic program (Section 3: "a collection of values taken from
every random expression evaluated during program execution"), together
with every observation scored along the way.  The unnormalized log
probability of a trace,

    log P̃r[t ~ P] = sum of choice log probs + sum of observation log probs,

is the quantity manipulated by the weight estimate (Equation 2/8).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Any, Dict, Iterator, List, Mapping, Optional

from ..distributions import Distribution
from .address import Address, normalize_address

__all__ = ["ChoiceRecord", "ObservationRecord", "Trace", "ChoiceMap"]


@dataclass(frozen=True)
class ChoiceRecord:
    """One random choice: its address, distribution, value, and score."""

    address: Address
    dist: Distribution
    value: Any
    log_prob: float

    def with_value(self, value: Any) -> "ChoiceRecord":
        """A copy of this record rescored at a different value."""
        return replace(self, value=value, log_prob=self.dist.log_prob(value))


@dataclass(frozen=True)
class ObservationRecord:
    """One ``observe``: the observed value and its score under the model.

    Observations are not part of the trace in the paper's formal sense
    (their values are fixed), but their probabilities enter
    ``P̃r[t ~ P]`` and the weight estimate, so we record them alongside
    the choices.
    """

    address: Address
    dist: Distribution
    value: Any
    log_prob: float


class ChoiceMap:
    """An immutable-by-convention mapping address -> value.

    Used for constraints in ``Model.generate`` and for translating
    between traces.  Plain dicts are accepted anywhere a ChoiceMap is;
    this class only adds address normalization and convenience helpers.
    """

    def __init__(self, values: Optional[Mapping[Any, Any]] = None):
        self._values: Dict[Address, Any] = {}
        if values:
            for address, value in values.items():
                self._values[normalize_address(address)] = value

    def __contains__(self, address) -> bool:
        return normalize_address(address) in self._values

    def __getitem__(self, address) -> Any:
        return self._values[normalize_address(address)]

    def get(self, address, default=None) -> Any:
        return self._values.get(normalize_address(address), default)

    def __iter__(self) -> Iterator[Address]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def items(self):
        return self._values.items()

    def set(self, address, value) -> "ChoiceMap":
        """Return a copy with ``address`` bound to ``value``."""
        copy = ChoiceMap()
        copy._values = dict(self._values)
        copy._values[normalize_address(address)] = value
        return copy

    def __repr__(self) -> str:
        inner = ", ".join(f"{a!r}: {v!r}" for a, v in self._values.items())
        return f"ChoiceMap({{{inner}}})"


class Trace:
    """An execution trace: ordered choices, observations, and return value."""

    def __init__(self) -> None:
        self._choices: Dict[Address, ChoiceRecord] = {}
        self._order: List[Address] = []
        self._observations: Dict[Address, ObservationRecord] = {}
        self._obs_order: List[Address] = []
        self.return_value: Any = None

    # -- construction (used by handlers) ---------------------------------

    def add_choice(self, record: ChoiceRecord) -> None:
        if record.address in self._choices:
            raise ValueError(f"duplicate random choice at address {record.address!r}")
        self._choices[record.address] = record
        self._order.append(record.address)

    def add_observation(self, record: ObservationRecord) -> None:
        if record.address in self._observations:
            raise ValueError(f"duplicate observation at address {record.address!r}")
        self._observations[record.address] = record
        self._obs_order.append(record.address)

    # -- access -----------------------------------------------------------

    def __contains__(self, address) -> bool:
        return normalize_address(address) in self._choices

    def __getitem__(self, address) -> Any:
        return self._choices[normalize_address(address)].value

    def get_record(self, address) -> ChoiceRecord:
        return self._choices[normalize_address(address)]

    def addresses(self) -> List[Address]:
        """Addresses of random choices, in execution order (``R_t``)."""
        return list(self._order)

    def observation_addresses(self) -> List[Address]:
        """Addresses of observations, in execution order (``O_t``)."""
        return list(self._obs_order)

    def choices(self) -> List[ChoiceRecord]:
        return [self._choices[a] for a in self._order]

    def observations(self) -> List[ObservationRecord]:
        return [self._observations[a] for a in self._obs_order]

    def get_observation(self, address) -> ObservationRecord:
        return self._observations[normalize_address(address)]

    def has_observation(self, address) -> bool:
        return normalize_address(address) in self._observations

    def __len__(self) -> int:
        return len(self._order)

    # -- scores -----------------------------------------------------------

    @property
    def choice_log_prob(self) -> float:
        """Sum of log probabilities of all random choices."""
        return math.fsum(r.log_prob for r in self._choices.values())

    @property
    def observation_log_prob(self) -> float:
        """Sum of log probabilities of all observations."""
        return math.fsum(r.log_prob for r in self._observations.values())

    @property
    def log_prob(self) -> float:
        """``log P̃r[t ~ P]``: choices plus observations."""
        return self.choice_log_prob + self.observation_log_prob

    # -- conversions --------------------------------------------------------

    def to_choice_map(self) -> ChoiceMap:
        """The bare address -> value mapping of the trace's choices."""
        return ChoiceMap({a: self._choices[a].value for a in self._order})

    def copy(self) -> "Trace":
        duplicate = Trace()
        duplicate._choices = dict(self._choices)
        duplicate._order = list(self._order)
        duplicate._observations = dict(self._observations)
        duplicate._obs_order = list(self._obs_order)
        duplicate.return_value = self.return_value
        return duplicate

    def __repr__(self) -> str:
        parts = [f"{a!r}: {self._choices[a].value!r}" for a in self._order]
        return f"Trace({{{', '.join(parts)}}}, log_prob={self.log_prob:.4f})"
