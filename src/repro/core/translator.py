"""Abstract trace translators (Section 4.1, Algorithm 1).

A trace translator ``R = (P, Q, k_{P->Q}, l_{Q->P})`` adapts traces of a
program ``P`` into weighted traces of a program ``Q``.  ``translate``
samples the forward kernel and evaluates the weight estimate

    ŵ(u; t) = P̃r[u ~ Q] * l(t; u) / (P̃r[t ~ P] * k(u; t))      (Eq. 2)

which is, in expectation, proportional to the importance weight
``w(u) = Pr[u ~ Q] / η(u)`` (Lemma 4 of the supplement).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Generic, Tuple, TypeVar

import numpy as np

from ..errors import NumericalError
from ..observability import NULL_METRICS, NULL_TRACER, MetricsRegistry, Tracer

__all__ = ["TraceTranslator", "TranslationResult", "validate_result"]

TraceT = TypeVar("TraceT")


@dataclass
class TranslationResult(Generic[TraceT]):
    """Output of one ``translate`` call.

    Attributes
    ----------
    trace:
        The translated trace ``u`` of the target program.
    log_weight:
        ``log ŵ(u; t)``, the log weight estimate (Equation 2).
    components:
        Breakdown of the estimate for diagnostics: the four log terms of
        Equation 2 as a dict with keys ``target_log_prob``,
        ``backward_log_prob``, ``source_log_prob``, ``forward_log_prob``.
    """

    trace: TraceT
    log_weight: float
    components: dict


def validate_result(result: "TranslationResult") -> "TranslationResult":
    """Numerical guardrail over a translation result.

    ``-inf`` is a legitimate log weight (the translated trace has zero
    probability); ``NaN`` and ``+inf`` never are and would silently
    poison weight normalization downstream, so they are converted into a
    :class:`~repro.errors.NumericalError` here, where the fault-isolated
    SMC loop can contain them to the affected particle.
    """
    log_weight = result.log_weight
    if math.isnan(log_weight) or log_weight == float("inf"):
        raise NumericalError(
            f"trace translation produced an invalid log weight {log_weight!r} "
            f"(components: {result.components!r})"
        )
    return result


class TraceTranslator(ABC, Generic[TraceT]):
    """Adapts traces of a source program into traces of a target program.

    Subclasses may additionally implement ``regenerate(rng) ->
    (trace, log_weight)``, returning a properly weighted importance
    sample of the *target* posterior drawn from scratch; the
    ``regenerate`` fault policy of :func:`repro.core.smc.infer` uses it
    as a graceful-degradation fallback for particles whose translation
    keeps failing.

    Translators report into the observability sinks bound via
    :meth:`bind_observability` (class-level null defaults, so unbound
    translators pay nothing); the SMC loop binds the sinks from its
    :class:`~repro.core.config.InferenceConfig` before each step.
    """

    #: Observability sinks; class-level nulls until bound.
    tracer: Tracer = NULL_TRACER
    metrics: MetricsRegistry = NULL_METRICS

    def bind_observability(self, tracer: Tracer, metrics: MetricsRegistry) -> None:
        """Attach the tracer/metrics this translator reports into."""
        self.tracer = tracer
        self.metrics = metrics

    @property
    @abstractmethod
    def source(self) -> Any:
        """The program ``P`` whose traces are consumed."""

    @property
    @abstractmethod
    def target(self) -> Any:
        """The program ``Q`` whose traces are produced."""

    @abstractmethod
    def translate(self, rng: np.random.Generator, trace: TraceT) -> TranslationResult:
        """Algorithm 1: sample ``u ~ k(.; t)`` and evaluate ``ŵ(u; t)``."""

    def translate_pair(self, rng: np.random.Generator, trace: TraceT) -> Tuple[TraceT, float]:
        """Convenience wrapper returning only ``(u, log ŵ)``."""
        result = self.translate(rng, trace)
        return result.trace, result.log_weight
