"""Weighted collections of traces.

A weighted collection ``{(t_j, w_j)}`` approximates a posterior by the
empirical distribution ``P̂`` of Section 4.2.  This module provides the
self-normalized estimator of Equation 5, effective-sample-size
diagnostics, and the resampling schemes used between SMC steps
(``resample`` in Algorithm 2 is multinomial; systematic, stratified and
residual resampling are standard lower-variance alternatives and are
used as ablation targets).

Weights are carried in log space to avoid underflow across long program
sequences.
"""

from __future__ import annotations

import copy as _copy
import math
from typing import Any, Callable, Dict, Generic, List, Optional, Sequence, TypeVar

import numpy as np

from ..errors import DegeneracyError, NumericalError

__all__ = [
    "WeightedCollection",
    "effective_sample_size",
    "log_sum_exp_array",
    "RESAMPLING_SCHEMES",
]

T = TypeVar("T")

NEG_INF = float("-inf")


def log_sum_exp_array(log_values: np.ndarray) -> float:
    """Vectorized ``log(sum(exp(values)))`` over a float array.

    The numpy kernel behind weight normalization, ESS, the evidence
    increments of :mod:`repro.core.smc`, and the degeneracy guard — one
    shared max-shifted implementation, so every consumer underflows (or
    rather, doesn't) identically.  ``-inf`` entries contribute zero
    mass; an empty or all-``-inf`` vector yields ``-inf``.
    """
    log_values = np.asarray(log_values, dtype=float)
    if log_values.size == 0:
        return NEG_INF
    high = float(np.max(log_values))
    if high == NEG_INF:
        return NEG_INF
    return high + float(np.log(np.sum(np.exp(log_values - high))))


def _checked_log_weights(log_weights: Sequence[float]) -> np.ndarray:
    """As a float array, rejecting NaN / +inf entries."""
    log_weights = np.asarray(log_weights, dtype=float)
    if len(log_weights) == 0:
        raise ValueError("empty weight vector")
    if np.isnan(log_weights).any():
        raise NumericalError(
            f"weight vector contains NaN at indices "
            f"{np.flatnonzero(np.isnan(log_weights)).tolist()}"
        )
    if np.isposinf(log_weights).any():
        raise NumericalError(
            f"weight vector contains +inf at indices "
            f"{np.flatnonzero(np.isposinf(log_weights)).tolist()}"
        )
    return log_weights


def _log_normalized_weights(log_weights: Sequence[float]) -> np.ndarray:
    """Log-space normalized weights (no exp/log round trip).

    Staying in log space is what lets downstream estimators weight
    particles whose *linear* weight underflows ``exp`` — the old scalar
    path silently excluded them.
    """
    log_weights = _checked_log_weights(log_weights)
    total = log_sum_exp_array(log_weights)
    if total == NEG_INF:
        raise DegeneracyError(
            "all weights are zero; the collection carries no information",
            num_particles=len(log_weights),
        )
    return log_weights - total


def _normalized_weights(log_weights: Sequence[float]) -> np.ndarray:
    return np.exp(_log_normalized_weights(log_weights))


def effective_sample_size(log_weights: Sequence[float]) -> float:
    """Kish effective sample size ``(sum w)^2 / sum w^2``.

    The paper (Section 4.2) suggests monitoring the effective number of
    traces to detect particle degeneracy and decide when resampling (or
    abandoning the incremental approach) is warranted.
    """
    weights = _normalized_weights(log_weights)
    return 1.0 / float(np.sum(weights**2))


def _multinomial_indices(weights: np.ndarray, size: int, rng: np.random.Generator) -> np.ndarray:
    return rng.choice(len(weights), size=size, replace=True, p=weights)


def _systematic_indices(weights: np.ndarray, size: int, rng: np.random.Generator) -> np.ndarray:
    positions = (rng.random() + np.arange(size)) / size
    return np.searchsorted(np.cumsum(weights), positions).clip(0, len(weights) - 1)


def _stratified_indices(weights: np.ndarray, size: int, rng: np.random.Generator) -> np.ndarray:
    positions = (rng.random(size) + np.arange(size)) / size
    return np.searchsorted(np.cumsum(weights), positions).clip(0, len(weights) - 1)


def _residual_indices(weights: np.ndarray, size: int, rng: np.random.Generator) -> np.ndarray:
    scaled = weights * size
    counts = np.floor(scaled).astype(int)
    indices = np.repeat(np.arange(len(weights)), counts)
    remainder = size - len(indices)
    if remainder > 0:
        residual = scaled - counts
        residual_total = residual.sum()
        if residual_total <= 0:
            extra = rng.choice(len(weights), size=remainder, replace=True, p=weights)
        else:
            extra = rng.choice(len(weights), size=remainder, replace=True, p=residual / residual_total)
        indices = np.concatenate([indices, extra])
    return indices[:size]


RESAMPLING_SCHEMES = {
    "multinomial": _multinomial_indices,
    "systematic": _systematic_indices,
    "stratified": _stratified_indices,
    "residual": _residual_indices,
}


class WeightedCollection(Generic[T]):
    """A list of items with associated log weights.

    Items are usually :class:`~repro.core.trace.Trace` objects, but the
    collection is generic so the graph runtime can store its own trace
    representation.

    ``metadata`` optionally attaches one mutable dict per particle
    (provenance, per-particle annotations, session bookkeeping).  It
    rides along with the particle through :meth:`map`/:meth:`scaled` —
    within one live run, transformed collections share the same logical
    particles, so they share the dicts — but every path that creates an
    *independent* copy of a particle deep-copies its metadata:
    :meth:`copy`, and :meth:`resample` (two offspring of one parent must
    not share a dict).  The persistence codec round-trips metadata, so a
    collection restored from a checkpoint can never alias mutable state
    with the live run it was snapshotted from.
    """

    def __init__(
        self,
        items: Sequence[T],
        log_weights: Optional[Sequence[float]] = None,
        metadata: Optional[Sequence[Optional[Dict[str, Any]]]] = None,
    ):
        self.items: List[T] = list(items)
        if log_weights is None:
            log_weights = [0.0] * len(self.items)
        self.log_weights: List[float] = [float(w) for w in log_weights]
        if len(self.items) != len(self.log_weights):
            raise ValueError(
                f"{len(self.items)} items but {len(self.log_weights)} weights"
            )
        if not self.items:
            raise ValueError("a weighted collection needs at least one item")
        self.metadata: Optional[List[Optional[Dict[str, Any]]]] = None
        if metadata is not None:
            self.metadata = list(metadata)
            if len(self.metadata) != len(self.items):
                raise ValueError(
                    f"{len(self.items)} items but {len(self.metadata)} metadata entries"
                )

    @classmethod
    def uniform(cls, items: Sequence[T]) -> "WeightedCollection[T]":
        """Equally weighted collection (weight 1 each, as in Lemma 2)."""
        return cls(items, [0.0] * len(items))

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self):
        return iter(zip(self.items, self.log_weights))

    # -- diagnostics -----------------------------------------------------------

    def normalized_weights(self) -> np.ndarray:
        return _normalized_weights(self.log_weights)

    def log_normalized_weights(self) -> np.ndarray:
        """Normalized weights in log space (``logw_j - logsumexp(logw)``).

        Prefer this over ``log(normalized_weights())`` when combining
        with other log quantities: it never round-trips through ``exp``,
        so particles whose linear weight underflows keep their exact
        log-space mass.
        """
        return _log_normalized_weights(self.log_weights)

    def effective_sample_size(self) -> float:
        return effective_sample_size(self.log_weights)

    def log_mean_weight(self) -> float:
        """``log( (1/M) sum_j exp(logw_j) )``.

        When the input collection came from exact posterior samples of
        ``P`` with weight one, this estimates ``log(Z_Q / Z_P)`` (Lemma 6).
        ``-inf``-weight particles (e.g. ones dropped by the fault-isolated
        SMC loop) contribute zero mass, so the result stays finite and
        NaN-free as long as one particle's weight is.
        """
        return log_sum_exp_array(np.asarray(self.log_weights)) - math.log(len(self))

    # -- estimation (Equation 5) -------------------------------------------------

    def estimate(self, phi: Callable[[T], float]) -> float:
        """Self-normalized estimate of ``E_{u~Q}[phi(u)]`` (Equation 5).

        ``phi`` is only evaluated on particles with nonzero weight:
        zero-weight items contribute nothing to the estimator, and a
        dropped particle may not even be a valid trace of the target
        program (the fault-isolated SMC loop keeps the untranslated
        source trace in the slot), so calling ``phi`` on it could raise
        or return ``NaN`` that would then poison the dot product.
        """
        weights = self.normalized_weights()
        support = np.flatnonzero(weights > 0.0)
        values = np.fromiter(
            (float(phi(self.items[int(i)])) for i in support),
            dtype=float,
            count=len(support),
        )
        return float(weights[support] @ values)

    def estimate_probability(self, event: Callable[[T], bool]) -> float:
        """Estimate ``Pr[event]`` using the indicator of the event."""
        return self.estimate(lambda item: 1.0 if event(item) else 0.0)

    # -- transformation -----------------------------------------------------------

    def map(self, fn: Callable[[T], T]) -> "WeightedCollection[T]":
        return WeightedCollection(
            [fn(item) for item in self.items],
            list(self.log_weights),
            metadata=None if self.metadata is None else list(self.metadata),
        )

    def scaled(self, log_increments: Sequence[float]) -> "WeightedCollection[T]":
        """Multiply weights by per-item increments (``w'_j = w_j * Δw_j``)."""
        if len(log_increments) != len(self):
            raise ValueError("one increment per item is required")
        return WeightedCollection(
            list(self.items),
            [w + float(d) for w, d in zip(self.log_weights, log_increments)],
            metadata=None if self.metadata is None else list(self.metadata),
        )

    def copy(self) -> "WeightedCollection[T]":
        """An independent copy of the collection.

        Items are shared (traces are treated as immutable values), but
        per-particle metadata is **deep-copied**: mutating the copy's
        metadata must never leak into the original — the invariant the
        checkpoint/session layer relies on to keep a resumed collection
        disjoint from the live run.
        """
        return WeightedCollection(
            list(self.items),
            list(self.log_weights),
            metadata=_copy.deepcopy(self.metadata),
        )

    def resample(
        self,
        rng: np.random.Generator,
        size: Optional[int] = None,
        scheme: str = "multinomial",
    ) -> "WeightedCollection[T]":
        """Resample the collection; resulting items all carry weight 1.

        ``resample`` of Algorithm 2 corresponds to the default
        multinomial scheme with ``size == len(self)``.
        """
        if scheme not in RESAMPLING_SCHEMES:
            raise ValueError(
                f"unknown resampling scheme {scheme!r}; "
                f"choose from {sorted(RESAMPLING_SCHEMES)}"
            )
        size = size if size is not None else len(self)
        weights = self.normalized_weights()
        indices = RESAMPLING_SCHEMES[scheme](weights, size, rng)
        metadata = None
        if self.metadata is not None:
            # Each offspring gets its own deep copy: two particles
            # resampled from one parent must not share a mutable dict.
            metadata = [_copy.deepcopy(self.metadata[int(i)]) for i in indices]
        return WeightedCollection(
            [self.items[int(i)] for i in indices], [0.0] * size, metadata=metadata
        )

    def __repr__(self) -> str:
        return (
            f"WeightedCollection(size={len(self)}, "
            f"ess={self.effective_sample_size():.1f})"
        )
