"""Automatic correspondence derivation (ROADMAP item 3).

The graph runtime already derives its correspondence from the program
edit (Section 6); the embedded PPL used to demand a hand-written address
map.  This subsystem closes that gap: given two models,
:func:`derive_correspondence` profiles both address spaces and aligns
them structurally — exact-match fast path, callsite/loop-index-aware
family rules for ``("hidden", i)``-style indexed families, rename
alignment with distribution-support compatibility as the tie-breaker —
and emits a picklable :class:`~repro.core.correspondence.Correspondence`
plus a machine-readable :class:`DerivationReport`.

Entry points, closest to the metal first:

* :func:`derive_correspondence` — the aligner itself;
* :meth:`repro.core.CorrespondenceTranslator.from_derived` — a
  translator whose map was derived (carries ``derivation_report``);
* :func:`derive_sequence_translators` /
  ``infer_sequence(models, correspondence="derive")`` /
  :meth:`repro.store.InferenceSession.sequence` — whole edit chains
  with no user-supplied map;
* ``repro derive OLD NEW`` — the CLI surface;
* :func:`check_derivation` — the derived-equals-handwritten gate run by
  ``repro lint bundled`` and CI.

See ``docs/derivation.md`` for the algorithm and confidence semantics.
"""

from .align import Derivation, derive_correspondence, derive_label_map
from .gate import bundled_derivations, check_derivation
from .report import AddressMatch, DerivationReport
from .sequence import derive_sequence_translators

__all__ = [
    "AddressMatch",
    "Derivation",
    "DerivationReport",
    "bundled_derivations",
    "check_derivation",
    "derive_correspondence",
    "derive_label_map",
    "derive_sequence_translators",
]
