"""Structural alignment of two models' address spaces.

:func:`derive_correspondence` is the subsystem's entry point: it
profiles both models with
:func:`repro.analysis.correspondence.profile_model` (exhaustive trace
enumeration when the model is finite and discrete, seeded forward
simulation otherwise — observations are external constraints, so
profiles contain only *latent* choices) and aligns the two address
spaces in three stages:

1. **Exact fast path** — an address observed in both programs whose
   distribution supports are compatible is matched to itself.  Supports
   that can *never* be equal (disjoint support types, e.g. a ``flip``
   address that became a ``gauss``) block the match: reuse would be
   impossible anyway (Section 5.1), so the address is left fresh and the
   rejection recorded in the report's notes.
2. **Family rules** — indexed families like ``("hidden", i)`` whose
   observed members all matched exactly get an open identity rule, so
   the derived map keeps covering new indices when the observation
   window grows (the paper's Section 5.4 loop-indexing scheme, C3-style
   callsite/loop-index awareness).
3. **Rename alignment** — leftover addresses are grouped into families
   (head + index arity) and greedily matched across heads, requiring
   support-type compatibility and preferring supports that were observed
   equal, then closer family cardinality, then larger index overlap.
   Each source family is consumed at most once, so the result stays
   injective.  A matched indexed family contributes both per-index
   pairs and an open head-rename rule.

The result is a picklable :class:`~repro.core.correspondence.Correspondence`
(its forward/backward callables are the module-level :class:`_DerivedMap`,
never closures, so translators built on it survive the ``process``
executor's pickling pre-flight) plus the
:class:`~repro.derive.report.DerivationReport` evidence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Tuple

import numpy as np

from ..analysis.correspondence import (
    DEFAULT_SAMPLES,
    AddressProfile,
    _supports_compatible,
    profile_model,
)
from ..core.address import Address
from ..core.correspondence import Correspondence
from ..core.model import Model
from .report import AddressMatch, DerivationReport, match_confidence, sort_key

__all__ = ["Derivation", "derive_correspondence", "derive_label_map"]


class _DerivedMap:
    """Exact pairs first, then open head-rename rules for indexed tails.

    Module-level (not a closure) so derived correspondences — and any
    translator holding them — stay picklable for the ``process``
    particle executor.
    """

    __slots__ = ("pairs", "heads")

    def __init__(self, pairs: Dict[Address, Address], heads: Dict[Hashable, Hashable]):
        self.pairs = pairs
        self.heads = heads

    def __call__(self, address: Address) -> Optional[Address]:
        hit = self.pairs.get(address)
        if hit is not None:
            return hit
        # Family rules only cover indexed addresses: a bare head is
        # either an exact pair or outside the correspondence.
        if len(address) > 1:
            mapped = self.heads.get(address[0])
            if mapped is not None:
                return (mapped,) + tuple(address[1:])
        return None


@dataclass
class Derivation:
    """What :func:`derive_correspondence` returns."""

    correspondence: Correspondence
    report: DerivationReport


def _family_key(address: Address) -> Tuple[Hashable, int]:
    """Group addresses by head and index arity (``("hidden", i)`` -> 1)."""
    return (address[0] if address else None, max(len(address) - 1, 0))


def _group_families(
    addresses: List[Address],
) -> Dict[Tuple[Hashable, int], List[Address]]:
    families: Dict[Tuple[Hashable, int], List[Address]] = {}
    for address in addresses:
        families.setdefault(_family_key(address), []).append(address)
    return families


def _family_supports(profile: AddressProfile, members: List[Address]) -> List[Any]:
    supports: List[Any] = []
    for address in members:
        for support in profile.supports.get(address, []):
            if support not in supports:
                supports.append(support)
    return supports


def _tails(members: List[Address]) -> set:
    return {address[1:] for address in members}


def derive_correspondence(
    old_model: Model,
    new_model: Model,
    *,
    observations: Optional[Dict[Any, Any]] = None,
    rng: Optional[np.random.Generator] = None,
    num_samples: int = DEFAULT_SAMPLES,
    profile_method: str = "auto",
) -> Derivation:
    """Derive the address correspondence from ``old_model`` to ``new_model``.

    ``old_model`` is the old program ``P``, ``new_model`` the new
    program ``Q``; the derived map is the forward bijection ``f : F_Q ->
    F_P`` a :class:`~repro.core.corr_translator.CorrespondenceTranslator`
    consumes.  ``observations`` optionally conditions the new model
    before profiling (a convenience for deriving against data that has
    not been attached yet); ``rng`` seeds the profiling simulations when
    enumeration is impossible (a fixed seed when omitted, so derivation
    is deterministic).  ``profile_method`` is forwarded to
    :func:`~repro.analysis.correspondence.profile_model`: the default
    ``"auto"`` profiles statically (deterministic, zero RNG draws)
    whenever the abstract interpreter closes both models, and the
    alignment consumes only the profiles, so a static derivation is
    byte-identical to a sampled one whenever their profiles agree.
    """
    if observations:
        new_model = new_model.condition(observations)
    rng = rng if rng is not None else np.random.default_rng(0)
    p_profile = profile_model(old_model, rng, num_samples, method=profile_method)
    q_profile = profile_model(new_model, rng, num_samples, method=profile_method)

    report = DerivationReport(
        source_name=p_profile.name,
        target_name=q_profile.name,
        source_complete=p_profile.complete,
        target_complete=q_profile.complete,
    )
    if p_profile.method or q_profile.method:
        # The codec's $derep field list is closed, so the profiling
        # strategy lands in notes rather than a new report field.
        report.notes.append(
            f"profiles: source={p_profile.method or 'unknown'} "
            f"target={q_profile.method or 'unknown'}"
        )
    pairs: Dict[Address, Address] = {}
    heads: Dict[Hashable, Hashable] = {}
    matched_p: set = set()

    q_addresses = sorted(q_profile.supports, key=sort_key)
    p_addresses = sorted(p_profile.supports, key=sort_key)

    # -- stage 1: exact-address fast path -----------------------------------
    leftover_q: List[Address] = []
    exact_by_family: Dict[Tuple[Hashable, int], int] = {}
    for q_address in q_addresses:
        if q_address not in p_profile:
            leftover_q.append(q_address)
            continue
        ever_equal, types_overlap = _supports_compatible(
            q_profile.supports[q_address], p_profile.supports[q_address]
        )
        if not ever_equal and not types_overlap:
            report.notes.append(
                f"address {q_address!r} occurs in both programs but its "
                f"supports are type-incompatible "
                f"({q_profile.supports[q_address]} vs "
                f"{p_profile.supports[q_address]}); no value could ever be "
                "reused, so it is left out of the correspondence"
            )
            leftover_q.append(q_address)
            continue
        pairs[q_address] = q_address
        matched_p.add(q_address)
        exact_by_family[_family_key(q_address)] = (
            exact_by_family.get(_family_key(q_address), 0) + 1
        )
        report.matches.append(
            AddressMatch(
                target=q_address,
                source=q_address,
                kind="exact",
                confidence=match_confidence("exact", ever_equal),
                evidence=(
                    "same address in both programs; supports "
                    + ("observed equal" if ever_equal else "overlap in type only")
                ),
            )
        )

    # -- stage 2: open identity rules for exactly-matched indexed families --
    # A family whose observed members all matched to themselves behaves
    # like a hand-written identity-by-predicate map: extend it to unseen
    # indices so the correspondence survives window growth.
    q_families_all = _group_families(list(q_profile.supports))
    for (head, arity), count in sorted(exact_by_family.items(), key=repr):
        if arity == 0 or head is None:
            continue
        members = q_families_all[(head, arity)]
        unmatched_members = [a for a in members if a not in pairs]
        cross_matched = [
            a for a in members if a in pairs and pairs[a][0] != head
        ]
        if not cross_matched and not any(
            a in p_profile and a not in matched_p for a in unmatched_members
        ):
            heads[head] = head

    # -- stage 3: rename alignment over the leftovers ------------------------
    leftover_p = [a for a in p_addresses if a not in matched_p]
    q_families = _group_families(
        [a for a in leftover_q if _family_key(a)[0] not in heads]
    )
    p_families = _group_families(leftover_p)
    consumed_p_families: set = set()
    used_p_heads = {p_head for p_head in heads.values()}

    for q_key in sorted(q_families, key=repr):
        q_head, arity = q_key
        q_members = q_families[q_key]
        q_supports = _family_supports(q_profile, q_members)
        q_tails = _tails(q_members)
        best: Optional[Tuple[Tuple, Tuple[Hashable, int], bool]] = None
        for p_key in sorted(p_families, key=repr):
            p_head, p_arity = p_key
            if p_arity != arity or p_key in consumed_p_families:
                continue
            if arity > 0 and p_head in used_p_heads:
                continue
            p_members = p_families[p_key]
            ever_equal, types_overlap = _supports_compatible(
                q_supports, _family_supports(p_profile, p_members)
            )
            if not ever_equal and not types_overlap:
                report.notes.append(
                    f"candidate rename {q_head!r} -> {p_head!r} rejected: "
                    "support types are disjoint, so corresponding values "
                    "could never be reused"
                )
                continue
            overlap = len(q_tails & _tails(p_members))
            score = (
                1 if ever_equal else 0,
                -abs(len(q_members) - len(p_members)),
                overlap,
            )
            # Candidates are visited in sorted-head order and replaced
            # only on a strictly better score, so ties resolve to the
            # smallest head deterministically.
            if best is None or score > best[0]:
                best = (score, p_key, ever_equal)
        if best is None:
            continue
        _score, p_key, ever_equal = best
        p_head = p_key[0]
        consumed_p_families.add(p_key)
        p_members = p_families[p_key]
        p_by_tail = {address[1:]: address for address in p_members}
        shared = 0
        for q_address in sorted(q_members, key=sort_key):
            p_address = p_by_tail.get(q_address[1:])
            if p_address is None:
                continue
            pair_equal, _ = _supports_compatible(
                q_profile.supports[q_address], p_profile.supports[p_address]
            )
            pairs[q_address] = p_address
            matched_p.add(p_address)
            shared += 1
            report.matches.append(
                AddressMatch(
                    target=q_address,
                    source=p_address,
                    kind="rename",
                    confidence=match_confidence("rename", pair_equal),
                    evidence=(
                        f"family {q_head!r} aligned to {p_head!r} "
                        f"(arity {arity}, {len(q_members)} vs {len(p_members)} "
                        "members); supports "
                        + ("observed equal" if pair_equal else "overlap in type only")
                    ),
                )
            )
        if arity > 0 and shared and q_head is not None and p_head is not None:
            heads[q_head] = p_head
            used_p_heads.add(p_head)

    # -- bookkeeping: the unmatched remainder --------------------------------
    forward = _DerivedMap(pairs, heads)
    for q_address in q_addresses:
        if forward(q_address) is None or (
            q_address not in pairs and forward(q_address) not in p_profile
        ):
            report.fresh.append(q_address)
    report.dropped = [a for a in p_addresses if a not in matched_p]
    report.family_rules = dict(heads)

    backward_pairs: Dict[Address, Address] = {}
    for q_address, p_address in pairs.items():
        if p_address in backward_pairs:  # pragma: no cover - aligner defect
            raise ValueError(
                f"derived correspondence is not injective at {p_address!r}"
            )
        backward_pairs[p_address] = q_address
    backward_heads = {p: q for q, p in heads.items()}

    correspondence = Correspondence(
        forward,
        _DerivedMap(backward_pairs, backward_heads),
        description=(
            f"derived({len(pairs)} pairs, {len(heads)} family rules)"
        ),
    )
    return Derivation(correspondence=correspondence, report=report)


def derive_label_map(derivation: Derivation) -> Dict[str, str]:
    """Project a lang-model derivation down to a new->old label map.

    Structured-language run-time addresses are ``(label,
    *loop_indices)``; the derived correspondence's head behaviour is
    therefore exactly a label map, which
    :func:`repro.analysis.validate_label_map` can check statically
    against the two programs' random expressions.
    """
    labels: Dict[str, str] = {}
    for q_head, p_head in derivation.report.family_rules.items():
        if isinstance(q_head, str) and isinstance(p_head, str):
            labels[q_head] = p_head
    for match in derivation.report.matches:
        q_head, p_head = match.target[0], match.source[0]
        if isinstance(q_head, str) and isinstance(p_head, str):
            labels.setdefault(q_head, p_head)
    return labels
