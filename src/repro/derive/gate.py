"""The derived-equals-handwritten gate.

Every bundled target ships a hand-written (or diff-recovered) reference
correspondence; the derive CI job and the ``derive:*`` entries of
``repro lint bundled`` require the *derived* map to (a) validate with
zero errors and (b) agree with the reference on every shared address —
both directions, over both profiled address spaces.  Disagreement is an
``error`` diagnostic (``derive-mismatch``), so the existing strict lint
job gates it.

Imports inside functions keep ``import repro.derive`` light and avoid
loading the experiment models until a gate actually runs.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from .align import Derivation, derive_correspondence

__all__ = [
    "check_derivation",
    "bundled_derivations",
]

PASS_NAME = "derive"


def check_derivation(
    source: Any,
    target: Any,
    reference: Any,
    *,
    rng: Optional[np.random.Generator] = None,
    num_samples: Optional[int] = None,
    derivation: Optional[Derivation] = None,
) -> List[Any]:
    """Gate one model pair: validate the derived map, compare to ``reference``.

    Returns :class:`repro.analysis.Diagnostic` values: the full
    :func:`~repro.analysis.validate_correspondence` findings for the
    derived map, plus one ``derive-mismatch`` error per address where
    the derived and reference maps disagree (forward over the target's
    profiled addresses, backward over the source's).
    """
    from ..analysis.correspondence import (
        DEFAULT_SAMPLES,
        profile_model,
        validate_correspondence,
    )
    from ..analysis.diagnostics import Diagnostic

    num_samples = DEFAULT_SAMPLES if num_samples is None else num_samples
    if derivation is None:
        derivation = derive_correspondence(
            source, target, rng=np.random.default_rng(0), num_samples=num_samples
        )
    derived = derivation.correspondence
    diagnostics = validate_correspondence(
        source, target, derived, rng=np.random.default_rng(0), num_samples=num_samples
    )

    def mismatch(direction: str, address: Any, got: Any, want: Any) -> None:
        diagnostics.append(
            Diagnostic(
                "error",
                f"derived correspondence disagrees with the reference map: "
                f"{direction}({address!r}) = {got!r}, reference says {want!r} "
                f"(derivation: {derivation.report.summary()})",
                code="derive-mismatch",
                pass_name=PASS_NAME,
                address=repr(address),
            )
        )

    profile_rng = np.random.default_rng(0)
    q_profile = profile_model(target, profile_rng, num_samples)
    p_profile = profile_model(source, profile_rng, num_samples)
    for q_address in sorted(q_profile.supports, key=repr):
        got, want = derived.forward(q_address), reference.forward(q_address)
        if got != want:
            mismatch("forward", q_address, got, want)
    for p_address in sorted(p_profile.supports, key=repr):
        got, want = derived.backward(p_address), reference.backward(p_address)
        if got != want:
            mismatch("backward", p_address, got, want)
    return diagnostics


def _hmm_pair() -> Tuple[Any, Any, Any]:
    from ..analysis.targets import _hmm_setup

    return _hmm_setup()


def _regression_pair() -> Tuple[Any, Any, Any]:
    from ..analysis.targets import _regression_setup

    return _regression_setup()


def _gmm_pair(n: int = 6, k: int = 3) -> Tuple[Any, Any, Any]:
    from ..gmm.model import gmm_edit_setup
    from ..graph.diff import diff_correspondence
    from ..lang import lang_model

    setup = gmm_edit_setup(n, k=k)
    source = lang_model(setup.source_program, env=setup.env, name="gmm_old")
    target = lang_model(setup.target_program, env=setup.env, name="gmm_new")
    reference = diff_correspondence(setup.source_program, setup.target_program)
    return source, target, reference


#: name -> thunk returning ``(source_model, target_model, reference_map)``
#: for every bundled pair the derive gate covers.
BUNDLED_PAIRS = {
    "hmm": _hmm_pair,
    "regression": _regression_pair,
    "gmm": _gmm_pair,
}


def bundled_derivations(
    *, num_samples: Optional[int] = None
) -> Dict[str, Derivation]:
    """Derive every bundled pair; the CI derive job's report source."""
    derivations: Dict[str, Derivation] = {}
    for name, thunk in sorted(BUNDLED_PAIRS.items()):
        source, target, _reference = thunk()
        derivations[name] = derive_correspondence(
            source,
            target,
            rng=np.random.default_rng(0),
            num_samples=num_samples if num_samples is not None else 24,
        )
    return derivations
