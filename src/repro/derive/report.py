"""Machine-readable evidence for a derived correspondence.

A :class:`DerivationReport` records everything the aligner decided and
why: one :class:`AddressMatch` per related address pair (with the match
kind, a confidence score, and a human-readable evidence string), the
target addresses left fresh, the source addresses dropped, the open
family rules that extend the map to unseen loop indices, and free-form
notes for pairs the aligner *rejected* (e.g. a support-incompatible
rename).  The report is what the CLI prints, what ``repro lint
--derive`` references from edit findings, and what the CI derive job
uploads as an artifact; it round-trips through the store codec
(``$derep``) so it can be persisted next to the collection it produced.

Confidence semantics (see ``docs/derivation.md``):

* ``1.0`` — exact address match with supports observed equal;
* ``0.75`` — exact address match, support types overlap but were never
  observed equal (values reuse only when the supports happen to agree);
* ``0.6`` — structural rename with supports observed equal;
* ``0.4`` — structural rename on support-type overlap alone.

This module depends only on the standard library and the address type,
so the store codec can import it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple

from ..core.address import Address

__all__ = ["AddressMatch", "DerivationReport"]

#: Confidence assigned to each match kind (``(ever_equal, overlap_only)``).
CONFIDENCE = {
    "exact": (1.0, 0.75),
    "rename": (0.6, 0.4),
}


def _address_doc(address: Address) -> List[Any]:
    """A JSON-friendly rendering of an address tuple."""
    return list(address)


@dataclass(frozen=True)
class AddressMatch:
    """One aligned address pair with its evidence.

    ``target`` is the new program's address (the forward map's domain),
    ``source`` the old program's (its image), matching the orientation
    of :class:`~repro.core.correspondence.Correspondence`.
    """

    target: Address
    source: Address
    #: ``"exact"`` (same address in both programs) or ``"rename"``
    #: (structurally aligned under a different head).
    kind: str
    confidence: float
    evidence: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "target": _address_doc(self.target),
            "source": _address_doc(self.source),
            "kind": self.kind,
            "confidence": self.confidence,
            "evidence": self.evidence,
        }


@dataclass
class DerivationReport:
    """Everything :func:`repro.derive.derive_correspondence` decided.

    ``matches`` covers the addresses observed in both profiles;
    ``family_rules`` extends the map intensionally — a rule ``q_head ->
    p_head`` applies the head rename to *any* indexed address of that
    family, so a derived map keeps working when an observation window
    grows past the profiled indices (the Section 5.4 loop-indexing
    scheme).  ``fresh`` and ``dropped`` list the unmatched remainder of
    each address space; ``notes`` records candidate pairs the aligner
    rejected and why.
    """

    source_name: str
    target_name: str
    matches: List[AddressMatch] = field(default_factory=list)
    #: Target addresses with no usable source counterpart (sampled fresh).
    fresh: List[Address] = field(default_factory=list)
    #: Source addresses with no target counterpart (values discarded).
    dropped: List[Address] = field(default_factory=list)
    #: Open head-rename rules ``{target_head: source_head}`` for indexed
    #: families; identity rules (``h -> h``) make the map total over the
    #: family like a hand-written predicate correspondence.
    family_rules: Dict[Hashable, Hashable] = field(default_factory=dict)
    #: Rejected-candidate explanations (support-incompatible renames, ...).
    notes: List[str] = field(default_factory=list)
    #: Whether each profile came from exhaustive enumeration.
    source_complete: bool = False
    target_complete: bool = False

    # -- queries -------------------------------------------------------------

    @property
    def num_matched(self) -> int:
        return len(self.matches)

    def match_for(self, target_address: Address) -> Optional[AddressMatch]:
        """The match whose target is ``target_address``, if any."""
        for match in self.matches:
            if match.target == target_address:
                return match
        return None

    def confidence(self) -> float:
        """The weakest link: min over per-match confidences (1.0 if none)."""
        if not self.matches:
            return 1.0
        return min(match.confidence for match in self.matches)

    def summary(self) -> str:
        """One line for log messages and lint references."""
        return (
            f"{self.num_matched} matched / {len(self.fresh)} fresh / "
            f"{len(self.dropped)} dropped, min confidence "
            f"{self.confidence():.2f} ({self.source_name!r} -> "
            f"{self.target_name!r})"
        )

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A plain-JSON dict (addresses as lists) for reports/artifacts."""
        return {
            "source": self.source_name,
            "target": self.target_name,
            "matches": [match.to_dict() for match in self.matches],
            "fresh": [_address_doc(a) for a in self.fresh],
            "dropped": [_address_doc(a) for a in self.dropped],
            "family_rules": [
                {"target_head": q, "source_head": p}
                for q, p in sorted(self.family_rules.items(), key=repr)
            ],
            "notes": list(self.notes),
            "source_complete": self.source_complete,
            "target_complete": self.target_complete,
            "min_confidence": self.confidence(),
            "summary": self.summary(),
        }

    def __repr__(self) -> str:
        return f"DerivationReport({self.summary()})"


def match_confidence(kind: str, ever_equal: bool) -> float:
    """The confidence score for a match kind and support evidence."""
    exact, weak = CONFIDENCE[kind]
    return exact if ever_equal else weak


def sort_key(address: Address) -> Tuple[str, ...]:
    """Deterministic address ordering shared by the aligner and report."""
    return tuple(repr(part) for part in address)
