"""Build an edit-chain's translators by derivation alone.

The usability cliff this subsystem removes: running
:func:`repro.core.smc.infer_sequence` over a chain of embedded-PPL
models used to require one hand-written correspondence per edit.
:func:`derive_sequence_translators` derives each adjacent
correspondence instead, so ``infer_sequence(models,
correspondence="derive")`` and :meth:`repro.store.InferenceSession.sequence`
work with no user-supplied map at all.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..core.corr_translator import CorrespondenceTranslator
from ..core.model import Model

__all__ = ["derive_sequence_translators"]


def derive_sequence_translators(
    models: Sequence[Model],
    *,
    rng: Optional[np.random.Generator] = None,
    num_samples: Optional[int] = None,
) -> List[CorrespondenceTranslator]:
    """One derived translator per adjacent model pair of ``models``.

    ``models[k]`` is the program after the ``k``-th edit;
    ``translators[k]`` translates from ``models[k]`` to ``models[k+1]``
    with a correspondence derived by
    :func:`repro.derive.derive_correspondence`.  Each translator carries
    its :class:`~repro.derive.report.DerivationReport` as
    ``translator.derivation_report``.  Derivation profiles with its own
    fixed-seed stream when ``rng`` is omitted, so building the chain
    never perturbs the inference RNG.
    """
    models = list(models)
    if len(models) < 2:
        raise ValueError(
            f"an edit sequence needs at least two models, got {len(models)}"
        )
    for index, model in enumerate(models):
        if not isinstance(model, Model):
            raise TypeError(
                f"models[{index}] is {type(model).__name__}, expected a Model; "
                "pass models (not translators) when deriving correspondences"
            )
    return [
        CorrespondenceTranslator.from_derived(
            models[index], models[index + 1], rng=rng, num_samples=num_samples
        )
        for index in range(len(models) - 1)
    ]
