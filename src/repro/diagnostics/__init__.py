"""Diagnostics: divergences, the exact trace-translator error ε(R)
(Section 4.1 / 5.3) for enumerable programs, and experiment metrics."""

from .error import TranslatorError, output_distribution, translator_error
from .metrics import (
    absolute_error,
    empirical_distribution,
    kl_divergence,
    log_marginal_likelihood,
    total_variation,
)

__all__ = [
    "TranslatorError",
    "output_distribution",
    "translator_error",
    "kl_divergence",
    "total_variation",
    "empirical_distribution",
    "log_marginal_likelihood",
    "absolute_error",
]
