"""Exact trace-translator error ε(R) for enumerable programs.

Section 4.1 defines the error of a trace translator as

    ε(R) = D_KL(Q || η)  +  E_{u~Q}[ D_KL( l(.;u) || l_OPT(.;u) ) ]

where ``η`` is the translator's output distribution and ``l_OPT`` the
optimal backward kernel (Equation 3).  For programs whose latent choices
are finite and discrete, every quantity is computable by enumeration;
this module does so, which lets tests validate the theory (e.g. that a
good correspondence has lower error than an empty one, and that the
number of traces needed scales with the error — Appendix B).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.corr_translator import CorrespondenceTranslator, _BackwardKernelScorer
from ..core.enumerate import enumerate_traces
from ..core.handlers import log_sum_exp
from ..core.trace import Trace

__all__ = ["TranslatorError", "translator_error", "output_distribution"]

NEG_INF = float("-inf")


def _trace_key(trace: Trace) -> Tuple:
    return tuple((address, trace[address]) for address in trace.addresses())


def _posterior(model) -> List[Tuple[Trace, float]]:
    traces = [t for t in enumerate_traces(model) if t.log_prob != NEG_INF]
    log_z = log_sum_exp(t.log_prob for t in traces)
    return [(t, math.exp(t.log_prob - log_z)) for t in traces]


def _forward_kernel_log_prob(
    translator: CorrespondenceTranslator, source_trace: Trace, target_trace: Trace
) -> float:
    """``log k_{P->Q}(u; t)`` scored deterministically by replay."""
    scorer = _BackwardKernelScorer(
        target_trace.to_choice_map(),
        translator.target.observations,
        translator.correspondence.inverse(),
        source_trace,
        translator.forward_proposals,
    )
    translator.target.run(scorer)
    return scorer.backward_log_prob


def _backward_kernel_log_prob(
    translator: CorrespondenceTranslator, source_trace: Trace, target_trace: Trace
) -> float:
    """``log l_{Q->P}(t; u) = log k_{Q->P}(t; u)`` by replay."""
    scorer = _BackwardKernelScorer(
        source_trace.to_choice_map(),
        translator.source.observations,
        translator.correspondence,
        target_trace,
        translator.backward_proposals,
    )
    translator.source.run(scorer)
    return scorer.backward_log_prob


def output_distribution(translator: CorrespondenceTranslator) -> Dict[Tuple, float]:
    """``η(u) = Σ_t Pr[t ~ P] k(u; t)`` over all traces ``u`` of ``Q``.

    Requires both programs to be finite and discrete.  Keys are
    ``((address, value), ...)`` tuples in execution order.
    """
    source_posterior = _posterior(translator.source)
    eta: Dict[Tuple, float] = {}
    for target_trace in enumerate_traces(translator.target):
        key = _trace_key(target_trace)
        total = 0.0
        for source_trace, prob in source_posterior:
            log_k = _forward_kernel_log_prob(translator, source_trace, target_trace)
            if log_k != NEG_INF:
                total += prob * math.exp(log_k)
        if total > 0.0:
            eta[key] = eta.get(key, 0.0) + total
    return eta


@dataclass(frozen=True)
class TranslatorError:
    """The two terms of ε(R) (Equation 4) and their sum."""

    output_divergence: float  # D_KL(Q || η)
    backward_divergence: float  # E_{u~Q} D_KL(l || l_OPT)

    @property
    def total(self) -> float:
        return self.output_divergence + self.backward_divergence


def translator_error(translator: CorrespondenceTranslator) -> TranslatorError:
    """Compute ε(R) exactly by enumeration (finite discrete programs).

    Returns ``inf`` divergences when the support of ``Q`` is not covered
    by ``η`` (the translator can never produce some posterior-possible
    trace — e.g. a correspondence that pins a choice to an impossible
    value).
    """
    source_posterior = _posterior(translator.source)
    target_posterior = _posterior(translator.target)

    # Pre-compute k(u; t) and l(t; u) for all pairs.
    output_divergence = 0.0
    backward_divergence = 0.0
    for target_trace, q_prob in target_posterior:
        forward = [
            (source_trace, p_prob,
             _forward_kernel_log_prob(translator, source_trace, target_trace))
            for source_trace, p_prob in source_posterior
        ]
        eta_u = sum(
            p_prob * math.exp(log_k) for _t, p_prob, log_k in forward if log_k != NEG_INF
        )
        if eta_u <= 0.0:
            return TranslatorError(float("inf"), float("inf"))
        output_divergence += q_prob * math.log(q_prob / eta_u)

        # D_KL( l(.;u) || l_OPT(.;u) ) with l_OPT(t;u) = Pr[t] k(u;t) / η(u).
        divergence_u = 0.0
        for source_trace, p_prob, log_k in forward:
            log_l = _backward_kernel_log_prob(translator, source_trace, target_trace)
            if log_l == NEG_INF:
                continue
            l_prob = math.exp(log_l)
            optimal = p_prob * math.exp(log_k) / eta_u if log_k != NEG_INF else 0.0
            if optimal <= 0.0:
                return TranslatorError(output_divergence, float("inf"))
            divergence_u += l_prob * math.log(l_prob / optimal)
        backward_divergence += q_prob * divergence_u

    return TranslatorError(output_divergence, backward_divergence)
