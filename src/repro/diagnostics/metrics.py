"""Divergence and accuracy metrics used by tests and experiments."""

from __future__ import annotations

import math
from typing import Callable, Dict, Hashable, Sequence

import numpy as np

from ..core import WeightedCollection

__all__ = [
    "kl_divergence",
    "total_variation",
    "empirical_distribution",
    "log_marginal_likelihood",
    "absolute_error",
]


def kl_divergence(p: Dict[Hashable, float], q: Dict[Hashable, float]) -> float:
    """``D_KL(p || q)`` for discrete distributions given as dicts.

    Returns ``inf`` when ``p`` puts mass where ``q`` does not.
    """
    divergence = 0.0
    for key, p_prob in p.items():
        if p_prob <= 0.0:
            continue
        q_prob = q.get(key, 0.0)
        if q_prob <= 0.0:
            return float("inf")
        divergence += p_prob * math.log(p_prob / q_prob)
    return divergence


def total_variation(p: Dict[Hashable, float], q: Dict[Hashable, float]) -> float:
    """Total variation distance ``(1/2) Σ |p - q|``."""
    keys = set(p) | set(q)
    return 0.5 * sum(abs(p.get(k, 0.0) - q.get(k, 0.0)) for k in keys)


def empirical_distribution(
    collection: WeightedCollection, key: Callable
) -> Dict[Hashable, float]:
    """Weighted empirical distribution of ``key(item)`` over a collection."""
    weights = collection.normalized_weights()
    distribution: Dict[Hashable, float] = {}
    for item, weight in zip(collection.items, weights):
        k = key(item)
        distribution[k] = distribution.get(k, 0.0) + float(weight)
    return distribution


def log_marginal_likelihood(collection: WeightedCollection) -> float:
    """``log( (1/M) Σ w_j )`` — estimates ``log(Z_Q / Z_P)`` after one
    Algorithm-2 step whose input weights were one (Lemma 6)."""
    return collection.log_mean_weight()


def absolute_error(estimates: Sequence[float], truth: float) -> float:
    """Mean absolute error of repeated estimates against a reference."""
    return float(np.mean([abs(e - truth) for e in estimates]))
