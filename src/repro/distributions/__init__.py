"""Primitive probability distributions used by both runtimes.

The structured language (:mod:`repro.lang`) and the embedded PPL
(:mod:`repro.core`) both score and sample random choices through the
:class:`~repro.distributions.base.Distribution` interface defined here.
"""

from .base import (
    NEG_INF,
    BinarySupport,
    ContinuousDistribution,
    DiscreteDistribution,
    Distribution,
    FiniteSupport,
    IntegerRange,
    PositiveReals,
    RealInterval,
    RealLine,
    Support,
)
from .continuous import Beta, Exponential, Gamma, LogNormal, Normal, TwoNormals, Uniform
from .discrete import (
    Bernoulli,
    Poisson,
    Categorical,
    Delta,
    Flip,
    Geometric,
    LogCategorical,
    UniformDiscrete,
)

__all__ = [
    "NEG_INF",
    "Distribution",
    "DiscreteDistribution",
    "ContinuousDistribution",
    "Support",
    "FiniteSupport",
    "IntegerRange",
    "BinarySupport",
    "RealLine",
    "RealInterval",
    "PositiveReals",
    "Flip",
    "Bernoulli",
    "UniformDiscrete",
    "Categorical",
    "LogCategorical",
    "Delta",
    "Geometric",
    "Poisson",
    "Exponential",
    "Normal",
    "Uniform",
    "TwoNormals",
    "Gamma",
    "Beta",
    "LogNormal",
]
