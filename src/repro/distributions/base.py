"""Base classes for primitive probability distributions.

Every random expression in the paper's language (``flip``, ``uniform``, ...)
and every random choice in the embedded PPL is backed by a
:class:`Distribution`.  Distributions know how to

* sample a value given a :class:`numpy.random.Generator`,
* score a value (``log_prob``), and
* describe their *support* (:class:`Support`), which the correspondence
  translator of Section 5.1 uses to decide whether a random choice from the
  old trace may be reused for a corresponding choice in the new trace.

Supports compare by structural equality: two choices are reuse-compatible
exactly when their supports are equal (e.g. ``IntegerRange(0, 5)`` equals
``IntegerRange(0, 5)`` but not ``IntegerRange(1, 6)``).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

import numpy as np

__all__ = [
    "Support",
    "FiniteSupport",
    "IntegerRange",
    "BinarySupport",
    "RealLine",
    "RealInterval",
    "PositiveReals",
    "Distribution",
    "DiscreteDistribution",
    "ContinuousDistribution",
    "NEG_INF",
]

NEG_INF = float("-inf")


class Support(ABC):
    """Abstract description of the set of values a distribution can emit."""

    @abstractmethod
    def contains(self, value: Any) -> bool:
        """Return True when ``value`` lies in the support."""

    def is_finite(self) -> bool:
        """Return True when the support is a finite set of values."""
        return False


@dataclass(frozen=True)
class FiniteSupport(Support):
    """A finite, explicitly enumerated support."""

    values: tuple

    def contains(self, value: Any) -> bool:
        return value in self.values

    def is_finite(self) -> bool:
        return True

    def enumerate(self) -> Iterable[Any]:
        return iter(self.values)

    def __len__(self) -> int:
        return len(self.values)


@dataclass(frozen=True)
class IntegerRange(Support):
    """All integers between ``low`` and ``high`` inclusive."""

    low: int
    high: int

    def contains(self, value: Any) -> bool:
        return float(value).is_integer() and self.low <= value <= self.high

    def is_finite(self) -> bool:
        return True

    def enumerate(self) -> Iterable[int]:
        return range(self.low, self.high + 1)

    def __len__(self) -> int:
        return self.high - self.low + 1


#: Support of a Bernoulli / flip choice.  A singleton-style instance is
#: exposed as ``BINARY`` below.
@dataclass(frozen=True)
class BinarySupport(Support):
    def contains(self, value: Any) -> bool:
        return value in (0, 1, 0.0, 1.0, False, True)

    def is_finite(self) -> bool:
        return True

    def enumerate(self) -> Iterable[int]:
        return iter((0, 1))

    def __len__(self) -> int:
        return 2


@dataclass(frozen=True)
class RealLine(Support):
    """The full real line."""

    def contains(self, value: Any) -> bool:
        return math.isfinite(float(value))


@dataclass(frozen=True)
class RealInterval(Support):
    """A real interval ``[low, high]``."""

    low: float
    high: float

    def contains(self, value: Any) -> bool:
        return self.low <= float(value) <= self.high


@dataclass(frozen=True)
class PositiveReals(Support):
    """The strictly positive half line."""

    def contains(self, value: Any) -> bool:
        return float(value) > 0.0


class Distribution(ABC):
    """A primitive distribution over values of a single random choice.

    Subclasses must be immutable value objects: equality of two
    distributions (same class, same parameters) implies equality of the
    induced probability measure, which the translator relies on when
    deciding whether a weight factor cancels.
    """

    #: Whether ``log_prob`` is a pure function of ``(self, value)``, so
    #: its results may be memoized by the translator's log-prob cache
    #: (:mod:`repro.core.corr_translator`).  True for every honest
    #: distribution; wrappers with stateful scoring (e.g. the chaos
    #: harness's :class:`repro.testing.faults.FaultyDistribution`, whose
    #: ``log_prob`` consumes injector decisions) must set it to False so
    #: caching never elides their side effects.
    cacheable_log_prob: bool = True

    @abstractmethod
    def sample(self, rng: np.random.Generator) -> Any:
        """Draw a value using ``rng``."""

    @abstractmethod
    def log_prob(self, value: Any) -> float:
        """Log probability (mass or density) of ``value``.

        Returns ``-inf`` for values outside the support rather than
        raising, so that scoring a constrained trace can detect impossible
        constraints gracefully.
        """

    @abstractmethod
    def support(self) -> Support:
        """The support of the distribution."""

    def prob(self, value: Any) -> float:
        """Probability (mass or density) of ``value``."""
        return math.exp(self.log_prob(value))

    # -- batched API --------------------------------------------------------
    #
    # The columnar SMC path (:mod:`repro.core.columnar`) scores whole
    # particle populations with one call per address.  The base-class
    # implementations below are plain loops over the scalar methods, so
    # third-party Distribution subclasses keep working without changes
    # (the same shim pattern the InferenceConfig migration used); the
    # concrete distributions in continuous.py/discrete.py override them
    # with vectorized implementations that are bitwise identical to the
    # scalar code evaluated per element.

    def log_prob_batch(self, values: np.ndarray) -> np.ndarray:
        """``log_prob`` of each entry of ``values`` as a float64 array.

        Contract: ``log_prob_batch(values)[i]`` is bitwise identical to
        ``log_prob(values[i])``.  The base implementation is the loop
        that makes that trivially true; vectorized overrides must mirror
        the scalar implementation's exact operation order (see
        :mod:`repro.distributions.batch`).  Parameters may themselves be
        per-element arrays in subclass overrides; this fallback supports
        scalar parameters only.
        """
        values = np.asarray(values)
        flat = values.ravel()
        out = np.fromiter(
            (self.log_prob(v) for v in flat.tolist()),
            dtype=np.float64,
            count=flat.size,
        )
        return out.reshape(values.shape)

    def sample_batch(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` values using ``rng``.

        No promise is made that the draws match ``n`` sequential
        ``sample`` calls (vectorized overrides consume the stream
        differently); determinism for a fixed generator state is the
        only guarantee.  The base implementation loops over ``sample``.
        """
        return np.asarray([self.sample(rng) for _ in range(n)])

    def is_discrete(self) -> bool:
        return isinstance(self, DiscreteDistribution)


class DiscreteDistribution(Distribution):
    """Marker base class for distributions with countable support."""

    def enumerate_support(self) -> Sequence[Any]:
        """Enumerate the support (must be finite for this to be called)."""
        support = self.support()
        if not support.is_finite():
            raise ValueError(f"support of {self!r} is not finite")
        return list(support.enumerate())  # type: ignore[attr-defined]


class ContinuousDistribution(Distribution):
    """Marker base class for distributions with a density."""
