"""Exact elementwise math for batched density evaluation.

The batched distribution API (``Distribution.log_prob_batch``) promises
results **bitwise identical** to the scalar ``log_prob`` evaluated
per element.  That promise is what lets the columnar SMC path
(:mod:`repro.core.columnar`) reproduce the object path byte for byte —
and it rules out numpy's array transcendentals: on common builds,
``np.log``/``np.exp``/``np.log1p`` use SIMD kernels whose results differ
from :mod:`math`'s (libm's) scalar results by one ulp on a few percent
of inputs.  Elementwise ``+``, ``-``, ``*``, ``/``, ``np.maximum`` and
``np.sqrt`` are exactly rounded either way, so plain array arithmetic is
safe; only the transcendentals need care.

The helpers here apply the :mod:`math` function element by element
(C-speed via ``map`` over ``tolist``) for arrays, and delegate to
:mod:`math` directly for scalars — so code written against them is
literally the scalar implementation when handed scalars, and its exact
elementwise image when handed arrays.

Throughput is a few tens of nanoseconds per element — orders of
magnitude faster than one Python-level ``log_prob`` call per particle,
which is all the columnar hot path needs.
"""

from __future__ import annotations

import math
from typing import Callable, Union

import numpy as np

__all__ = ["exp", "log", "log1p", "sqrt", "lgamma", "ArrayOrFloat"]

ArrayOrFloat = Union[np.ndarray, float]


def _exact_unary(fn: Callable[[float], float]) -> Callable[[ArrayOrFloat], ArrayOrFloat]:
    """Lift a scalar libm function to an exact elementwise array function."""

    def apply(x: ArrayOrFloat) -> ArrayOrFloat:
        if isinstance(x, np.ndarray):
            flat = np.fromiter(
                map(fn, x.ravel().tolist()), dtype=np.float64, count=x.size
            )
            return flat.reshape(x.shape)
        return fn(x)

    apply.__name__ = fn.__name__
    apply.__doc__ = f"Exact elementwise ``math.{fn.__name__}`` (scalar passthrough)."
    return apply


exp = _exact_unary(math.exp)
log = _exact_unary(math.log)
log1p = _exact_unary(math.log1p)
lgamma = _exact_unary(math.lgamma)

# np.sqrt is correctly rounded (IEEE 754 requires it), so the fast numpy
# kernel is bitwise identical to math.sqrt and can be used directly.
def sqrt(x: ArrayOrFloat) -> ArrayOrFloat:
    """Exact elementwise square root (``np.sqrt`` is correctly rounded)."""
    if isinstance(x, np.ndarray):
        return np.sqrt(x)
    return math.sqrt(x)
