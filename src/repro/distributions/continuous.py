"""Continuous primitive distributions.

The paper treats continuous and discrete random choices uniformly by
multiplying probabilities and densities (Section 3, "Continuous
Distributions"); we follow the same convention: ``log_prob`` of a
continuous distribution is a log *density*.

``TwoNormals`` is the inlier/outlier mixture used by the robust Bayesian
regression program (Listing 2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from . import batch as bmath
from .base import (
    NEG_INF,
    ContinuousDistribution,
    PositiveReals,
    RealInterval,
    RealLine,
    Support,
)

__all__ = [
    "Normal",
    "Exponential",
    "Uniform",
    "TwoNormals",
    "Gamma",
    "Beta",
    "LogNormal",
]

_LOG_SQRT_2PI = 0.5 * math.log(2.0 * math.pi)
_REAL_LINE = RealLine()
_POSITIVE = PositiveReals()


def _normal_log_density(value: float, mean: float, std: float) -> float:
    z = (value - mean) / std
    return -0.5 * z * z - math.log(std) - _LOG_SQRT_2PI


def _normal_log_density_batch(values: np.ndarray, mean, std) -> np.ndarray:
    """Exact elementwise image of :func:`_normal_log_density`.

    ``mean``/``std`` may be scalars or per-element arrays (the columnar
    runtime parameterizes observation distributions with whole latent
    columns).  The expression mirrors the scalar operation order, and
    the only transcendental goes through :mod:`repro.distributions.batch`,
    so each element is bitwise identical to the scalar call.
    """
    z = (values - mean) / std
    return -0.5 * z * z - bmath.log(std) - _LOG_SQRT_2PI


def _any_nonpositive(x) -> bool:
    """Array-aware ``x <= 0`` check for distribution parameters."""
    if isinstance(x, np.ndarray):
        return bool(np.any(x <= 0.0))
    return x <= 0.0


def _masked(param, mask: np.ndarray):
    """Restrict an array-valued parameter to ``mask``; pass scalars through."""
    if isinstance(param, np.ndarray):
        return param[mask]
    return param


@dataclass(frozen=True)
class Normal(ContinuousDistribution):
    """Gaussian with the given ``mean`` and standard deviation ``std``."""

    mean: float
    std: float

    def __post_init__(self) -> None:
        if _any_nonpositive(self.std):
            raise ValueError(f"normal std must be positive, got {self.std}")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.normal(self.mean, self.std))

    def log_prob(self, value) -> float:
        return _normal_log_density(float(value), self.mean, self.std)

    def log_prob_batch(self, values: np.ndarray) -> np.ndarray:
        return _normal_log_density_batch(
            np.asarray(values, dtype=np.float64), self.mean, self.std
        )

    def sample_batch(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.normal(self.mean, self.std, size=n)

    def support(self) -> Support:
        return _REAL_LINE


@dataclass(frozen=True)
class Uniform(ContinuousDistribution):
    """Continuous uniform on ``[low, high]``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.high <= self.low:
            raise ValueError(
                f"uniform(low, high) requires low < high, got ({self.low}, {self.high})"
            )

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def log_prob(self, value) -> float:
        if self.low <= float(value) <= self.high:
            return -math.log(self.high - self.low)
        return NEG_INF

    def log_prob_batch(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        inside = (self.low <= values) & (values <= self.high)
        return np.where(inside, -math.log(self.high - self.low), NEG_INF)

    def sample_batch(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=n)

    def support(self) -> Support:
        return RealInterval(self.low, self.high)


@dataclass(frozen=True)
class TwoNormals(ContinuousDistribution):
    """Mixture of two Gaussians sharing a mean: inlier vs outlier.

    With probability ``prob_outlier`` the value is drawn from
    ``Normal(mean, outlier_std)``, otherwise from ``Normal(mean,
    inlier_std)``.  This is the ``two_normals`` primitive of Listing 2 in
    the paper, which marginalizes the per-point outlier indicator so the
    robust regression trace contains only continuous choices for the data.
    """

    mean: float
    prob_outlier: float
    inlier_std: float
    outlier_std: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.prob_outlier <= 1.0:
            raise ValueError(f"prob_outlier must be in [0, 1], got {self.prob_outlier}")
        if _any_nonpositive(self.inlier_std) or _any_nonpositive(self.outlier_std):
            raise ValueError("mixture component stds must be positive")

    def sample(self, rng: np.random.Generator) -> float:
        std = self.outlier_std if rng.random() < self.prob_outlier else self.inlier_std
        return float(rng.normal(self.mean, std))

    def log_prob(self, value) -> float:
        value = float(value)
        log_in = _normal_log_density(value, self.mean, self.inlier_std)
        log_out = _normal_log_density(value, self.mean, self.outlier_std)
        if self.prob_outlier == 0.0:
            return log_in
        if self.prob_outlier == 1.0:
            return log_out
        log_a = math.log1p(-self.prob_outlier) + log_in
        log_b = math.log(self.prob_outlier) + log_out
        high = max(log_a, log_b)
        return high + math.log(math.exp(log_a - high) + math.exp(log_b - high))

    def log_prob_batch(self, values: np.ndarray) -> np.ndarray:
        # ``mean``/``inlier_std``/``outlier_std`` may be per-element
        # columns; ``prob_outlier`` (the shared mixture weight) must be
        # scalar for the 0/1 shortcuts to mirror the scalar code.
        values = np.asarray(values, dtype=np.float64)
        log_in = _normal_log_density_batch(values, self.mean, self.inlier_std)
        log_out = _normal_log_density_batch(values, self.mean, self.outlier_std)
        if self.prob_outlier == 0.0:
            return log_in
        if self.prob_outlier == 1.0:
            return np.asarray(log_out, dtype=np.float64)
        log_a = math.log1p(-self.prob_outlier) + log_in
        log_b = math.log(self.prob_outlier) + log_out
        high = np.maximum(log_a, log_b)
        return high + bmath.log(bmath.exp(log_a - high) + bmath.exp(log_b - high))

    def sample_batch(self, rng: np.random.Generator, n: int) -> np.ndarray:
        outlier = rng.random(n) < self.prob_outlier
        std = np.where(outlier, self.outlier_std, self.inlier_std)
        return rng.normal(self.mean, std, size=n)

    def support(self) -> Support:
        return _REAL_LINE


@dataclass(frozen=True)
class Gamma(ContinuousDistribution):
    """Gamma distribution with ``shape`` and ``scale`` parameters."""

    shape: float
    scale: float

    def __post_init__(self) -> None:
        if _any_nonpositive(self.shape) or _any_nonpositive(self.scale):
            raise ValueError("gamma shape and scale must be positive")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.gamma(self.shape, self.scale))

    def log_prob(self, value) -> float:
        value = float(value)
        if value <= 0.0:
            return NEG_INF
        return (
            (self.shape - 1.0) * math.log(value)
            - value / self.scale
            - math.lgamma(self.shape)
            - self.shape * math.log(self.scale)
        )

    def log_prob_batch(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        out = np.full(values.shape, NEG_INF)
        mask = values > 0.0
        v = values[mask]
        shape = _masked(self.shape, mask)
        scale = _masked(self.scale, mask)
        out[mask] = (
            (shape - 1.0) * bmath.log(v)
            - v / scale
            - bmath.lgamma(shape)
            - shape * bmath.log(scale)
        )
        return out

    def sample_batch(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.gamma(self.shape, self.scale, size=n)

    def support(self) -> Support:
        return _POSITIVE


@dataclass(frozen=True)
class Beta(ContinuousDistribution):
    """Beta distribution on ``[0, 1]``."""

    alpha: float
    beta: float

    def __post_init__(self) -> None:
        if _any_nonpositive(self.alpha) or _any_nonpositive(self.beta):
            raise ValueError("beta parameters must be positive")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.beta(self.alpha, self.beta))

    def log_prob(self, value) -> float:
        value = float(value)
        if not 0.0 < value < 1.0:
            return NEG_INF
        log_norm = (
            math.lgamma(self.alpha) + math.lgamma(self.beta) - math.lgamma(self.alpha + self.beta)
        )
        return (self.alpha - 1.0) * math.log(value) + (self.beta - 1.0) * math.log1p(-value) - log_norm

    def log_prob_batch(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        out = np.full(values.shape, NEG_INF)
        mask = (0.0 < values) & (values < 1.0)
        v = values[mask]
        alpha = _masked(self.alpha, mask)
        beta = _masked(self.beta, mask)
        log_norm = bmath.lgamma(alpha) + bmath.lgamma(beta) - bmath.lgamma(alpha + beta)
        out[mask] = (alpha - 1.0) * bmath.log(v) + (beta - 1.0) * bmath.log1p(-v) - log_norm
        return out

    def sample_batch(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.beta(self.alpha, self.beta, size=n)

    def support(self) -> Support:
        return RealInterval(0.0, 1.0)


@dataclass(frozen=True)
class LogNormal(ContinuousDistribution):
    """Log-normal: ``exp(Normal(mu, sigma))``."""

    mu: float
    sigma: float

    def __post_init__(self) -> None:
        if _any_nonpositive(self.sigma):
            raise ValueError(f"log-normal sigma must be positive, got {self.sigma}")

    def sample(self, rng: np.random.Generator) -> float:
        return float(math.exp(rng.normal(self.mu, self.sigma)))

    def log_prob(self, value) -> float:
        value = float(value)
        if value <= 0.0:
            return NEG_INF
        return _normal_log_density(math.log(value), self.mu, self.sigma) - math.log(value)

    def log_prob_batch(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        out = np.full(values.shape, NEG_INF)
        mask = values > 0.0
        log_v = bmath.log(values[mask])
        mu = _masked(self.mu, mask)
        sigma = _masked(self.sigma, mask)
        out[mask] = _normal_log_density_batch(log_v, mu, sigma) - log_v
        return out

    def sample_batch(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return bmath.exp(rng.normal(self.mu, self.sigma, size=n))

    def support(self) -> Support:
        return _POSITIVE


@dataclass(frozen=True)
class Exponential(ContinuousDistribution):
    """Exponential distribution with the given ``rate``."""

    rate: float

    def __post_init__(self) -> None:
        if _any_nonpositive(self.rate):
            raise ValueError(f"exponential rate must be positive, got {self.rate}")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(1.0 / self.rate))

    def log_prob(self, value) -> float:
        value = float(value)
        if value < 0.0:
            return NEG_INF
        return math.log(self.rate) - self.rate * value

    def log_prob_batch(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        out = np.full(values.shape, NEG_INF)
        mask = values >= 0.0
        rate = _masked(self.rate, mask)
        out[mask] = bmath.log(rate) - rate * values[mask]
        return out

    def sample_batch(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.exponential(1.0 / self.rate, size=n)

    def support(self) -> Support:
        return _POSITIVE
