"""Continuous primitive distributions.

The paper treats continuous and discrete random choices uniformly by
multiplying probabilities and densities (Section 3, "Continuous
Distributions"); we follow the same convention: ``log_prob`` of a
continuous distribution is a log *density*.

``TwoNormals`` is the inlier/outlier mixture used by the robust Bayesian
regression program (Listing 2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .base import (
    NEG_INF,
    ContinuousDistribution,
    PositiveReals,
    RealInterval,
    RealLine,
    Support,
)

__all__ = [
    "Normal",
    "Exponential",
    "Uniform",
    "TwoNormals",
    "Gamma",
    "Beta",
    "LogNormal",
]

_LOG_SQRT_2PI = 0.5 * math.log(2.0 * math.pi)
_REAL_LINE = RealLine()
_POSITIVE = PositiveReals()


def _normal_log_density(value: float, mean: float, std: float) -> float:
    z = (value - mean) / std
    return -0.5 * z * z - math.log(std) - _LOG_SQRT_2PI


@dataclass(frozen=True)
class Normal(ContinuousDistribution):
    """Gaussian with the given ``mean`` and standard deviation ``std``."""

    mean: float
    std: float

    def __post_init__(self) -> None:
        if self.std <= 0.0:
            raise ValueError(f"normal std must be positive, got {self.std}")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.normal(self.mean, self.std))

    def log_prob(self, value) -> float:
        return _normal_log_density(float(value), self.mean, self.std)

    def support(self) -> Support:
        return _REAL_LINE


@dataclass(frozen=True)
class Uniform(ContinuousDistribution):
    """Continuous uniform on ``[low, high]``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.high <= self.low:
            raise ValueError(
                f"uniform(low, high) requires low < high, got ({self.low}, {self.high})"
            )

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def log_prob(self, value) -> float:
        if self.low <= float(value) <= self.high:
            return -math.log(self.high - self.low)
        return NEG_INF

    def support(self) -> Support:
        return RealInterval(self.low, self.high)


@dataclass(frozen=True)
class TwoNormals(ContinuousDistribution):
    """Mixture of two Gaussians sharing a mean: inlier vs outlier.

    With probability ``prob_outlier`` the value is drawn from
    ``Normal(mean, outlier_std)``, otherwise from ``Normal(mean,
    inlier_std)``.  This is the ``two_normals`` primitive of Listing 2 in
    the paper, which marginalizes the per-point outlier indicator so the
    robust regression trace contains only continuous choices for the data.
    """

    mean: float
    prob_outlier: float
    inlier_std: float
    outlier_std: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.prob_outlier <= 1.0:
            raise ValueError(f"prob_outlier must be in [0, 1], got {self.prob_outlier}")
        if self.inlier_std <= 0.0 or self.outlier_std <= 0.0:
            raise ValueError("mixture component stds must be positive")

    def sample(self, rng: np.random.Generator) -> float:
        std = self.outlier_std if rng.random() < self.prob_outlier else self.inlier_std
        return float(rng.normal(self.mean, std))

    def log_prob(self, value) -> float:
        value = float(value)
        log_in = _normal_log_density(value, self.mean, self.inlier_std)
        log_out = _normal_log_density(value, self.mean, self.outlier_std)
        if self.prob_outlier == 0.0:
            return log_in
        if self.prob_outlier == 1.0:
            return log_out
        log_a = math.log1p(-self.prob_outlier) + log_in
        log_b = math.log(self.prob_outlier) + log_out
        high = max(log_a, log_b)
        return high + math.log(math.exp(log_a - high) + math.exp(log_b - high))

    def support(self) -> Support:
        return _REAL_LINE


@dataclass(frozen=True)
class Gamma(ContinuousDistribution):
    """Gamma distribution with ``shape`` and ``scale`` parameters."""

    shape: float
    scale: float

    def __post_init__(self) -> None:
        if self.shape <= 0.0 or self.scale <= 0.0:
            raise ValueError("gamma shape and scale must be positive")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.gamma(self.shape, self.scale))

    def log_prob(self, value) -> float:
        value = float(value)
        if value <= 0.0:
            return NEG_INF
        return (
            (self.shape - 1.0) * math.log(value)
            - value / self.scale
            - math.lgamma(self.shape)
            - self.shape * math.log(self.scale)
        )

    def support(self) -> Support:
        return _POSITIVE


@dataclass(frozen=True)
class Beta(ContinuousDistribution):
    """Beta distribution on ``[0, 1]``."""

    alpha: float
    beta: float

    def __post_init__(self) -> None:
        if self.alpha <= 0.0 or self.beta <= 0.0:
            raise ValueError("beta parameters must be positive")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.beta(self.alpha, self.beta))

    def log_prob(self, value) -> float:
        value = float(value)
        if not 0.0 < value < 1.0:
            return NEG_INF
        log_norm = (
            math.lgamma(self.alpha) + math.lgamma(self.beta) - math.lgamma(self.alpha + self.beta)
        )
        return (self.alpha - 1.0) * math.log(value) + (self.beta - 1.0) * math.log1p(-value) - log_norm

    def support(self) -> Support:
        return RealInterval(0.0, 1.0)


@dataclass(frozen=True)
class LogNormal(ContinuousDistribution):
    """Log-normal: ``exp(Normal(mu, sigma))``."""

    mu: float
    sigma: float

    def __post_init__(self) -> None:
        if self.sigma <= 0.0:
            raise ValueError(f"log-normal sigma must be positive, got {self.sigma}")

    def sample(self, rng: np.random.Generator) -> float:
        return float(math.exp(rng.normal(self.mu, self.sigma)))

    def log_prob(self, value) -> float:
        value = float(value)
        if value <= 0.0:
            return NEG_INF
        return _normal_log_density(math.log(value), self.mu, self.sigma) - math.log(value)

    def support(self) -> Support:
        return _POSITIVE


@dataclass(frozen=True)
class Exponential(ContinuousDistribution):
    """Exponential distribution with the given ``rate``."""

    rate: float

    def __post_init__(self) -> None:
        if self.rate <= 0.0:
            raise ValueError(f"exponential rate must be positive, got {self.rate}")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(1.0 / self.rate))

    def log_prob(self, value) -> float:
        value = float(value)
        if value < 0.0:
            return NEG_INF
        return math.log(self.rate) - self.rate * value

    def support(self) -> Support:
        return _POSITIVE
