"""Discrete primitive distributions.

These back the random expressions of the paper's language (``flip(E)``,
``uniform(E1, E2)``) and the discrete choices used by the embedded PPL
(categorical hidden states of the HMM experiment, cluster assignments of
the GMM experiment).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence, Tuple

import numpy as np

from . import batch as bmath
from .base import (
    NEG_INF,
    BinarySupport,
    DiscreteDistribution,
    IntegerRange,
    FiniteSupport,
    Support,
)

__all__ = [
    "Flip",
    "Bernoulli",
    "UniformDiscrete",
    "Categorical",
    "LogCategorical",
    "Delta",
    "Geometric",
    "Poisson",
]

_BINARY = BinarySupport()


def _integral_mask(values: np.ndarray) -> np.ndarray:
    """Elementwise image of ``float(value).is_integer()`` for float64."""
    return np.isfinite(values) & (np.floor(values) == values)


@dataclass(frozen=True)
class Flip(DiscreteDistribution):
    """``flip(p)``: 1 with probability ``p``, 0 with probability ``1 - p``."""

    p: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.p <= 1.0:
            raise ValueError(f"flip probability must be in [0, 1], got {self.p}")

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.random() < self.p)

    def log_prob(self, value) -> float:
        if value == 1:
            return math.log(self.p) if self.p > 0.0 else NEG_INF
        if value == 0:
            return math.log1p(-self.p) if self.p < 1.0 else NEG_INF
        return NEG_INF

    def log_prob_batch(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values)
        log_p = math.log(self.p) if self.p > 0.0 else NEG_INF
        log_q = math.log1p(-self.p) if self.p < 1.0 else NEG_INF
        return np.where(values == 1, log_p, np.where(values == 0, log_q, NEG_INF))

    def sample_batch(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return (rng.random(n) < self.p).astype(np.int64)

    def support(self) -> Support:
        return _BINARY


#: Alias matching the conventional name.
Bernoulli = Flip


@dataclass(frozen=True)
class UniformDiscrete(DiscreteDistribution):
    """``uniform(low, high)``: integers in ``[low, high]``, equiprobable."""

    low: int
    high: int

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise ValueError(
                f"uniform(low, high) requires low <= high, got ({self.low}, {self.high})"
            )

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.integers(self.low, self.high + 1))

    def log_prob(self, value) -> float:
        if float(value).is_integer() and self.low <= value <= self.high:
            return -math.log(self.high - self.low + 1)
        return NEG_INF

    def log_prob_batch(self, values: np.ndarray) -> np.ndarray:
        vf = np.asarray(values, dtype=np.float64)
        ok = _integral_mask(vf) & (self.low <= vf) & (vf <= self.high)
        return np.where(ok, -math.log(self.high - self.low + 1), NEG_INF)

    def sample_batch(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.integers(self.low, self.high + 1, size=n)

    def support(self) -> Support:
        return IntegerRange(self.low, self.high)


@dataclass(frozen=True)
class Categorical(DiscreteDistribution):
    """Categorical over ``0..len(probs)-1`` with the given probabilities."""

    probs: Tuple[float, ...]

    def __init__(self, probs: Sequence[float]):
        probs = tuple(float(p) for p in probs)
        if not probs:
            raise ValueError("categorical requires at least one category")
        if any(p < 0 for p in probs):
            raise ValueError("categorical probabilities must be non-negative")
        total = sum(probs)
        if not math.isclose(total, 1.0, rel_tol=1e-9, abs_tol=1e-9):
            if total <= 0:
                raise ValueError("categorical probabilities must sum to a positive value")
            probs = tuple(p / total for p in probs)
        object.__setattr__(self, "probs", probs)

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.choice(len(self.probs), p=np.asarray(self.probs)))

    def log_prob(self, value) -> float:
        if not float(value).is_integer():
            return NEG_INF
        index = int(value)
        if 0 <= index < len(self.probs) and self.probs[index] > 0.0:
            return math.log(self.probs[index])
        return NEG_INF

    def log_prob_batch(self, values: np.ndarray) -> np.ndarray:
        vf = np.asarray(values, dtype=np.float64)
        ok = _integral_mask(vf) & (0.0 <= vf) & (vf < len(self.probs))
        out = np.full(vf.shape, NEG_INF)
        idx = vf[ok].astype(np.int64)
        gathered = np.asarray(self.probs, dtype=np.float64)[idx]
        scores = np.full(idx.shape, NEG_INF)
        pos = gathered > 0.0
        scores[pos] = bmath.log(gathered[pos])
        out[ok] = scores
        return out

    def sample_batch(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.choice(len(self.probs), size=n, p=np.asarray(self.probs))

    def support(self) -> Support:
        return IntegerRange(0, len(self.probs) - 1)


@dataclass(frozen=True)
class LogCategorical(DiscreteDistribution):
    """Categorical parameterized by unnormalized log probabilities.

    Used by the HMM programs (Listings 3-4 work with log transition and
    observation matrices); normalization happens in log space for
    numerical stability.
    """

    log_probs: Tuple[float, ...]
    _log_norm: float = field(init=False, repr=False, compare=False)

    def __init__(self, log_probs: Sequence[float]):
        log_probs = tuple(float(p) for p in log_probs)
        if not log_probs:
            raise ValueError("log-categorical requires at least one category")
        finite = [p for p in log_probs if p != NEG_INF]
        if not finite:
            raise ValueError("log-categorical requires at least one finite log prob")
        high = max(finite)
        log_norm = high + math.log(sum(math.exp(p - high) for p in finite))
        object.__setattr__(self, "log_probs", log_probs)
        object.__setattr__(self, "_log_norm", log_norm)

    def sample(self, rng: np.random.Generator) -> int:
        probs = np.exp(np.asarray(self.log_probs) - self._log_norm)
        probs = probs / probs.sum()
        return int(rng.choice(len(probs), p=probs))

    def log_prob(self, value) -> float:
        if not float(value).is_integer():
            return NEG_INF
        index = int(value)
        if 0 <= index < len(self.log_probs):
            raw = self.log_probs[index]
            return raw - self._log_norm if raw != NEG_INF else NEG_INF
        return NEG_INF

    def log_prob_batch(self, values: np.ndarray) -> np.ndarray:
        vf = np.asarray(values, dtype=np.float64)
        ok = _integral_mask(vf) & (0.0 <= vf) & (vf < len(self.log_probs))
        out = np.full(vf.shape, NEG_INF)
        raw = np.asarray(self.log_probs, dtype=np.float64)[vf[ok].astype(np.int64)]
        out[ok] = np.where(raw != NEG_INF, raw - self._log_norm, NEG_INF)
        return out

    def sample_batch(self, rng: np.random.Generator, n: int) -> np.ndarray:
        probs = np.exp(np.asarray(self.log_probs) - self._log_norm)
        probs = probs / probs.sum()
        return rng.choice(len(probs), size=n, p=probs)

    def support(self) -> Support:
        return IntegerRange(0, len(self.log_probs) - 1)


@dataclass(frozen=True)
class Delta(DiscreteDistribution):
    """Point mass at ``value``; useful for deterministic constraints."""

    value: object

    def sample(self, rng: np.random.Generator):
        return self.value

    def log_prob(self, value) -> float:
        return 0.0 if value == self.value else NEG_INF

    def log_prob_batch(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values)
        eq = values == self.value
        if not isinstance(eq, np.ndarray):
            # Incomparable point mass (e.g. object-valued): scalar semantics
            # give a single truth value for every element.
            eq = np.full(values.shape, bool(eq))
        return np.where(eq, 0.0, NEG_INF)

    def sample_batch(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.asarray([self.value] * n)

    def support(self) -> Support:
        return FiniteSupport((self.value,))


@dataclass(frozen=True)
class Geometric(DiscreteDistribution):
    """Number of successes before the first failure of ``flip(p)``.

    This matches the loop of Figure 6 in the paper: ``n`` starts at one and
    increments while ``flip(p)`` succeeds, so ``n - 1`` is geometric with
    failure probability ``1 - p``.  The support is countably infinite, so
    ``enumerate_support`` raises.
    """

    p: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.p < 1.0:
            raise ValueError(f"geometric success probability must be in [0, 1), got {self.p}")

    def sample(self, rng: np.random.Generator) -> int:
        count = 0
        while rng.random() < self.p:
            count += 1
        return count

    def log_prob(self, value) -> float:
        if not float(value).is_integer() or value < 0:
            return NEG_INF
        count = int(value)
        if count == 0:
            return math.log1p(-self.p)
        if self.p == 0.0:
            return NEG_INF
        return count * math.log(self.p) + math.log1p(-self.p)

    def log_prob_batch(self, values: np.ndarray) -> np.ndarray:
        vf = np.asarray(values, dtype=np.float64)
        ok = _integral_mask(vf) & (vf >= 0.0)
        out = np.full(vf.shape, NEG_INF)
        log1mp = math.log1p(-self.p)
        if self.p == 0.0:
            out[ok & (vf == 0.0)] = log1mp
            return out
        counts = vf[ok]
        out[ok] = np.where(counts == 0.0, log1mp, counts * math.log(self.p) + log1mp)
        return out

    def sample_batch(self, rng: np.random.Generator, n: int) -> np.ndarray:
        # Successes before the first failure: trials to first failure - 1.
        return rng.geometric(1.0 - self.p, size=n) - 1

    def support(self) -> Support:
        return IntegerRange(0, 2**63 - 1)


@dataclass(frozen=True)
class Poisson(DiscreteDistribution):
    """Poisson distribution with the given ``rate``."""

    rate: float

    def __post_init__(self) -> None:
        if self.rate <= 0.0:
            raise ValueError(f"poisson rate must be positive, got {self.rate}")

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.poisson(self.rate))

    def log_prob(self, value) -> float:
        if not float(value).is_integer() or value < 0:
            return NEG_INF
        count = int(value)
        return count * math.log(self.rate) - self.rate - math.lgamma(count + 1)

    def log_prob_batch(self, values: np.ndarray) -> np.ndarray:
        vf = np.asarray(values, dtype=np.float64)
        ok = _integral_mask(vf) & (vf >= 0.0)
        out = np.full(vf.shape, NEG_INF)
        counts = vf[ok]
        out[ok] = counts * math.log(self.rate) - self.rate - bmath.lgamma(counts + 1.0)
        return out

    def sample_batch(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.poisson(self.rate, size=n)

    def support(self) -> Support:
        return IntegerRange(0, 2**63 - 1)
