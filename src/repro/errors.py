"""Structured exception taxonomy for the inference engine.

The paper's Algorithm 2 assumes every trace translation succeeds, but in
practice translation fails in structured ways: a bad correspondence
leaves the backward kernel without a required choice
(:class:`~repro.core.handlers.MissingChoiceError`), supports turn out to
be incompatible in a way that cannot be repaired by fresh sampling
(Section 5.1), the dependency-graph engine hits an evaluation error, or
the arithmetic collapses (``NaN``/``-inf`` weights, total ESS
degeneracy).

This module gives every failure mode a place in one hierarchy rooted at
:class:`ReproError`, so callers — most importantly the fault-isolated
SMC loop in :mod:`repro.core.smc` — can distinguish *recoverable*
per-particle failures from *fatal* collection-level ones:

* :class:`TranslationError` — a single trace translation failed; the
  rest of the particle collection is unaffected.
* :class:`SupportError` — a support incompatibility that the dynamic
  fallback of Section 5.1 cannot absorb (e.g. a Gibbs update over an
  infinite support).
* :class:`ModelExecutionError` — the model program itself raised while
  executing (unbound variable, impossible constraint, division by
  zero in the structured language, ...).
* :class:`NumericalError` — a ``NaN`` or unexpected ``±inf`` appeared in
  a weight or log probability.
* :class:`DegeneracyError` — a weight vector carries no information:
  every entry is zero.  Raised per-particle (e.g. a Gibbs conditional
  with no mass) it is contained like any :class:`NumericalError`;
  raised by the collection-level guard in :mod:`repro.core.smc` it is
  fatal, because no per-particle policy can recover a fully collapsed
  collection.

Several classes also inherit from the builtin exception previously
raised at the same call sites (``ValueError``, ``KeyError``,
``RuntimeError``), so pre-existing ``except`` clauses keep working.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

__all__ = [
    "ReproError",
    "TranslationError",
    "SupportError",
    "ModelExecutionError",
    "NumericalError",
    "DegeneracyError",
    "StoreError",
    "CodecError",
    "SchemaVersionError",
    "CheckpointCorruptionError",
    "SessionError",
    "ValidationError",
    "PicklingError",
    "ServiceError",
    "BadRequestError",
    "QuotaExceededError",
    "OverloadedError",
    "DeadlineExceededError",
    "ServiceUnavailableError",
    "RECOVERABLE_ERRORS",
]


class ReproError(Exception):
    """Root of every structured error raised by this package."""


class TranslationError(ReproError):
    """One trace translation (Algorithm 1) failed.

    Recoverable: the SMC loop can drop or regenerate the affected
    particle without touching the rest of the collection.
    """


class SupportError(ReproError, ValueError):
    """A support incompatibility that cannot be repaired dynamically.

    The Section 5.1 fallback (sample the choice fresh) absorbs support
    *mismatches* between corresponding choices; this error is for the
    cases where no fallback exists — e.g. enumerating an infinite
    support, or a proposal whose support does not cover the prior's.
    """


class ModelExecutionError(ReproError):
    """The model program raised while executing.

    Covers impossible constraints in the embedded PPL and evaluation
    errors (unbound variables, bad indexing, division by zero) in the
    structured language / dependency-graph engine.
    """


class NumericalError(ReproError, ValueError):
    """A ``NaN`` or unexpected ``±inf`` appeared in a weight or log prob.

    ``-inf`` log weights are legitimate (a zero-probability trace);
    ``NaN`` and ``+inf`` never are, and this error stops them from
    silently poisoning normalization and resampling downstream.
    """


class DegeneracyError(NumericalError):
    """Total weight collapse: every particle carries zero weight.

    Attributes
    ----------
    num_particles:
        Size of the degenerate collection, when known.
    step:
        Index of the Algorithm-2 step at which the collapse was
        detected, when raised from :func:`repro.core.smc.infer_sequence`.
    """

    def __init__(
        self,
        message: str,
        *,
        num_particles: Optional[int] = None,
        step: Optional[int] = None,
    ):
        super().__init__(message)
        self.num_particles = num_particles
        self.step = step

    def __str__(self) -> str:
        base = super().__str__()
        if self.step is not None:
            return f"{base} (at SMC step {self.step})"
        return base


class StoreError(ReproError):
    """Root of the persistence layer's failures (:mod:`repro.store`).

    Deliberately *not* in :data:`RECOVERABLE_ERRORS`: a storage failure
    concerns the run's durable state, not one particle, so the
    fault-isolated SMC loop must never swallow it.
    """


class CodecError(StoreError, ValueError):
    """A value could not be serialized or a document could not be decoded."""


class SchemaVersionError(CodecError):
    """A stored document was written by a *newer* library version.

    Older schemas are migrated forward; newer ones are rejected so a
    downgraded library never half-reads state it does not understand.
    """

    def __init__(self, message: str, *, found: Optional[int] = None,
                 supported: Optional[int] = None):
        super().__init__(message)
        self.found = found
        self.supported = supported


class CheckpointCorruptionError(StoreError):
    """A checkpoint file failed its checksum or is truncated.

    ``CheckpointManager.load_latest`` treats this as a skippable
    condition (fall back to the previous checkpoint); loading a specific
    step by hand surfaces it directly.
    """


class SessionError(StoreError):
    """An inference-session operation failed (unknown id, no store, ...)."""


class ValidationError(ReproError):
    """Static pre-flight validation found error-severity diagnostics.

    Raised by the ``InferenceConfig(validate="error")`` pre-flight of
    :func:`repro.core.smc.infer` before any particle work starts.
    Deliberately *not* in :data:`RECOVERABLE_ERRORS`: a bad
    correspondence or config concerns the whole run, not one particle.

    Attributes
    ----------
    diagnostics:
        The :class:`repro.analysis.Diagnostic` findings that triggered
        the failure (errors first).
    """

    def __init__(self, message: str, diagnostics: Sequence[Any] = ()):
        super().__init__(message)
        self.diagnostics = list(diagnostics)

    def __str__(self) -> str:
        base = super().__str__()
        if not self.diagnostics:
            return base
        details = "; ".join(str(d) for d in self.diagnostics[:5])
        more = len(self.diagnostics) - 5
        suffix = f"; ... {more} more" if more > 0 else ""
        return f"{base}: {details}{suffix}"


class PicklingError(ValidationError, RuntimeError):
    """An object graph cannot be shipped to process workers.

    Raised by the :class:`~repro.parallel.ProcessExecutor` pre-flight
    (and the config lint) *before* any chunk is submitted, naming the
    offending attribute path — e.g.
    ``translator.correspondence._forward.predicate`` for a lambda-based
    intensional correspondence.  Inherits ``RuntimeError`` so the
    pre-structured ``except RuntimeError`` call sites keep working.

    Attributes
    ----------
    component:
        Which executor input failed (``"translator"``,
        ``"fault_policy"``, ``"regenerate_fn"``).
    attribute:
        Dotted path of the deepest unpicklable attribute within it
        (empty when the component itself is the failure).
    """

    def __init__(
        self,
        message: str,
        *,
        component: Optional[str] = None,
        attribute: Optional[str] = None,
        diagnostics: Sequence[Any] = (),
    ):
        super().__init__(message, diagnostics)
        self.component = component
        self.attribute = attribute


class ServiceError(ReproError):
    """Root of the multi-tenant inference service's failure taxonomy.

    Every subclass carries the three fields the wire protocol needs to
    return a *structured* rejection instead of a crashed connection:

    Attributes
    ----------
    code:
        Stable wire code (``"quota_exceeded"``, ``"overloaded"``, ...).
        :mod:`repro.service.wire` maps codes back to these classes on
        the client side, so a caller can ``except QuotaExceededError``.
    retryable:
        Whether retrying the identical request can ever succeed.  Quota
        and overload rejections are retryable (capacity frees up);
        poison requests are not.
    retry_after_s:
        Server-suggested backoff before the next attempt, when the
        server can estimate one (queue drain time, in-flight drain).

    Deliberately *not* in :data:`RECOVERABLE_ERRORS`: service errors
    concern a request or a tenant, never one particle, so the SMC fault
    policies must not swallow them.
    """

    code = "internal"
    retryable = False

    def __init__(self, message: str, *, retry_after_s: "Optional[float]" = None):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class BadRequestError(ServiceError, ValueError):
    """A malformed (poison) request: bad frame, unknown op, unparseable
    program, invalid deadline.  Never retryable — the bytes themselves
    are wrong."""

    code = "bad_request"
    retryable = False


class QuotaExceededError(ServiceError):
    """A per-tenant admission limit was hit (live sessions or in-flight
    requests).  Retryable: closing a session or letting requests drain
    frees the quota.

    Attributes
    ----------
    quota:
        Which limit was hit (``"sessions"`` or ``"inflight"``).
    limit:
        The configured ceiling.
    """

    code = "quota_exceeded"
    retryable = True

    def __init__(
        self,
        message: str,
        *,
        quota: str = "",
        limit: "Optional[int]" = None,
        retry_after_s: "Optional[float]" = None,
    ):
        super().__init__(message, retry_after_s=retry_after_s)
        self.quota = quota
        self.limit = limit


class OverloadedError(ServiceError):
    """Backpressure: the target shard's bounded queue is full, or the
    degradation ladder is shedding this tenant's priority class.
    Always retryable, always with a ``retry_after_s`` estimate."""

    code = "overloaded"
    retryable = True


class DeadlineExceededError(ServiceError):
    """The request's deadline expired — on the queue, or mid-translation
    (the in-flight work is cancelled at a particle boundary and the
    session is rolled back, so the state is *not* corrupted)."""

    code = "deadline_exceeded"
    retryable = True


class ServiceUnavailableError(ServiceError):
    """The server cannot be reached, hung up mid-request, or is
    shutting down.  Retryable from the client's perspective (the server
    may restart and recover)."""

    code = "unavailable"
    retryable = True


#: Failure classes the SMC loop may contain to a single particle.  The
#: collection-level :class:`DegeneracyError` raised by the degeneracy
#: guard is emitted *outside* any per-particle containment, so it always
#: propagates even though the class inherits from ``NumericalError``.
RECOVERABLE_ERRORS = (TranslationError, SupportError, ModelExecutionError, NumericalError)
