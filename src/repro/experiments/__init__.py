"""Runnable reproductions of the paper's figures.

* :mod:`repro.experiments.burglary` — Figure 1 (overview numbers);
* :mod:`repro.experiments.fig8` — robust Bayesian regression;
* :mod:`repro.experiments.fig9` — higher-order HMM typo correction;
* :mod:`repro.experiments.fig10` — GMM translation-time scaling.

Each module exposes ``run_*`` returning structured rows and printing the
same series the paper plots; each is also executable as a script
(``python -m repro.experiments.fig8``).

Submodules are imported lazily so ``python -m repro.experiments.figN``
does not trigger the double-import RuntimeWarning.
"""

import importlib
from typing import Any

__all__ = [
    "burglary_original",
    "burglary_refined",
    "burglary_correspondence",
    "figure1_rows",
    "run_figure1",
    "Fig8Config",
    "Fig8Result",
    "gold_standard_slope",
    "run_fig8",
    "Fig9Config",
    "Fig9Result",
    "run_fig9",
    "Fig10Config",
    "Fig10Result",
    "run_fig10",
    "run_fig8_session",
    "run_fig10_session",
    "SESSION_WORKFLOWS",
    "Row",
    "median_time",
    "print_table",
    "timed",
]

_LOCATIONS = {
    "burglary_original": "burglary",
    "burglary_refined": "burglary",
    "burglary_correspondence": "burglary",
    "figure1_rows": "burglary",
    "run_figure1": "burglary",
    "Fig8Config": "fig8",
    "Fig8Result": "fig8",
    "gold_standard_slope": "fig8",
    "run_fig8": "fig8",
    "Fig9Config": "fig9",
    "Fig9Result": "fig9",
    "run_fig9": "fig9",
    "Fig10Config": "fig10",
    "Fig10Result": "fig10",
    "run_fig10": "fig10",
    "run_fig8_session": "session_demo",
    "run_fig10_session": "session_demo",
    "SESSION_WORKFLOWS": "session_demo",
    "Row": "harness",
    "median_time": "harness",
    "print_table": "harness",
    "timed": "harness",
}


def __getattr__(name: str) -> Any:
    module_name = _LOCATIONS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    module = importlib.import_module(f".{module_name}", __name__)
    return getattr(module, name)


def __dir__():
    return sorted(__all__)
