"""Run every figure reproduction in sequence.

Usage::

    python -m repro.experiments            # full configurations
    python -m repro.experiments --quick    # reduced sizes (a few minutes)
"""

from __future__ import annotations

import argparse


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="reduced configurations for a fast pass"
    )
    args = parser.parse_args()

    from .burglary import run_figure1
    from .fig8 import Fig8Config, run_fig8
    from .fig9 import Fig9Config, run_fig9
    from .fig10 import Fig10Config, run_fig10

    print("=" * 72)
    run_figure1(num_traces=5000 if args.quick else 20000)

    print("\n" + "=" * 72)
    if args.quick:
        run_fig8(
            Fig8Config(
                repetitions=3,
                trace_counts=(10, 100),
                mcmc_iterations=(30, 300),
                gold_iterations=8000,
            )
        )
    else:
        run_fig8()

    print("\n" + "=" * 72)
    if args.quick:
        run_fig9(Fig9Config(num_train_words=2500, num_test_words=6, gibbs_sweeps=(1, 3)))
    else:
        run_fig9()

    print("\n" + "=" * 72)
    if args.quick:
        run_fig10(Fig10Config(num_points=(10, 100, 1000), repetitions=3))
    else:
        run_fig10()


if __name__ == "__main__":
    main()
