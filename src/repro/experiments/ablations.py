"""Ablations for the design choices called out in DESIGN.md.

Three studies, each printing one table:

1. **Resampling scheme** — iterate Algorithm 2 across a drifting
   sequence of programs with ``resample="always"`` under each scheme;
   report the final-estimate error against exact enumeration and the
   ESS just before the final resample.  Lower-variance schemes
   (systematic/stratified/residual) should match or beat multinomial.

2. **Correspondence quality** — translate the burglary pair with the
   full identity correspondence, a partial one, and the empty one;
   report the exact translator error ε(R) (Section 5.3) and the
   estimate error at a fixed number of traces.  More correspondence →
   lower ε(R) → lower error, the paper's central efficiency claim.

3. **Forward-kernel proposal** — prior sampling of non-corresponding
   choices (the paper's choice) vs the exact conditional (the paper's
   future-work suggestion); report ε(R), the effective sample size of
   the translated collection, and the estimate error.  The conditional
   proposal eliminates weight degeneracy (ε(R) and ESS improve
   sharply); note that for a *single* test function the flat prior
   proposal can still estimate rare events competitively — ε(R) bounds
   worst-case behaviour over all queries, not each individual one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core import (
    Correspondence,
    CorrespondenceTranslator,
    InferenceConfig,
    Model,
    WeightedCollection,
    exact_choice_marginal,
    exact_posterior_sampler,
    infer_sequence,
)
from ..core.weighted import RESAMPLING_SCHEMES
from ..diagnostics import translator_error
from ..distributions import Flip
from .burglary import burglary_correspondence, burglary_original, burglary_refined
from .harness import Row, print_table

__all__ = ["AblationConfig", "run_ablations"]


@dataclass
class AblationConfig:
    seed: int = 2018
    num_particles: int = 300
    sequence_length: int = 8
    repetitions: int = 20
    fixed_traces: int = 200


def _drifting_models(length: int) -> List[Model]:
    """A chain of observed-flip programs whose parameters drift."""

    def make(p_x: float, p_obs: float) -> Model:
        def fn(t):
            x = t.sample(Flip(p_x), "x")
            t.observe(Flip(p_obs if x else 1 - p_obs), 1, "o")
            return x

        return Model(fn, name=f"drift({p_x:.2f})")

    return [
        make(0.5 - 0.03 * i, 0.7 + 0.02 * i)
        for i in range(length)
    ]


def _resampling_ablation(config: AblationConfig, rng) -> List[Row]:
    models = _drifting_models(config.sequence_length)
    translators = [
        CorrespondenceTranslator(models[i], models[i + 1], Correspondence.identity(["x"]))
        for i in range(len(models) - 1)
    ]
    truth = exact_choice_marginal(models[-1], "x")[1]
    sampler = exact_posterior_sampler(models[0])

    rows = []
    for scheme in sorted(RESAMPLING_SCHEMES):
        errors, final_ess = [], []
        for _ in range(config.repetitions):
            initial = WeightedCollection.uniform(
                [sampler(rng) for _ in range(config.num_particles)]
            )
            steps = infer_sequence(
                translators,
                initial,
                rng,
                config=InferenceConfig(resample="always", resampling_scheme=scheme),
            )
            final = steps[-1].collection
            errors.append(
                abs(final.estimate_probability(lambda u: u["x"] == 1) - truth)
            )
            final_ess.append(steps[-1].stats.ess_before_resample)
        rows.append(
            Row(
                scheme,
                {
                    "avg_error": float(np.mean(errors)),
                    "avg_ess_before_resample": float(np.mean(final_ess)),
                },
            )
        )
    return rows


def _correspondence_ablation(config: AblationConfig, rng) -> List[Row]:
    p = burglary_original()
    q = burglary_refined()
    truth = exact_choice_marginal(q, "burglary")[1]
    sampler = exact_posterior_sampler(p)

    variants = [
        ("identity {burglary, alarm}", burglary_correspondence()),
        ("partial {burglary}", Correspondence.identity(["burglary"])),
        ("empty", Correspondence.empty()),
    ]
    rows = []
    for name, correspondence in variants:
        translator = CorrespondenceTranslator(p, q, correspondence)
        epsilon = translator_error(translator)
        errors = []
        for _ in range(config.repetitions):
            traces, weights = [], []
            for _ in range(config.fixed_traces):
                result = translator.translate(rng, sampler(rng))
                traces.append(result.trace)
                weights.append(result.log_weight)
            collection = WeightedCollection(traces, weights)
            errors.append(
                abs(
                    collection.estimate_probability(lambda u: u["burglary"] == 1)
                    - truth
                )
            )
        rows.append(
            Row(
                name,
                {
                    "translator_error": epsilon.total,
                    "avg_error": float(np.mean(errors)),
                },
            )
        )
    return rows


def _proposal_ablation(config: AblationConfig, rng) -> List[Row]:
    def p_fn(t):
        x = t.sample(Flip(0.5), "x")
        t.observe(Flip(0.9 if x else 0.2), 1, "o1")
        return x

    def q_fn(t):
        x = t.sample(Flip(0.5), "x")
        y = t.sample(Flip(0.6 if x else 0.4), "y")
        t.observe(Flip(0.9 if x else 0.2), 1, "o1")
        t.observe(Flip(0.98 if y else 0.02), 1, "o2")
        return x

    def optimal_y(partial_trace, _prior):
        x = partial_trace["x"]
        prior_y1 = 0.6 if x else 0.4
        unnorm1 = prior_y1 * 0.98
        unnorm0 = (1 - prior_y1) * 0.02
        return Flip(unnorm1 / (unnorm1 + unnorm0))

    p, q = Model(p_fn), Model(q_fn)
    correspondence = Correspondence.identity(["x"])
    truth = exact_choice_marginal(q, "y")[1]
    sampler = exact_posterior_sampler(p)

    variants = [
        ("prior (paper default)", None),
        ("exact conditional (future work)", {"y": optimal_y}),
    ]
    rows = []
    for name, proposals in variants:
        translator = CorrespondenceTranslator(
            p, q, correspondence, forward_proposals=proposals
        )
        epsilon = translator_error(translator)
        errors, ess_values = [], []
        for _ in range(config.repetitions):
            traces, weights = [], []
            for _ in range(config.fixed_traces):
                result = translator.translate(rng, sampler(rng))
                traces.append(result.trace)
                weights.append(result.log_weight)
            collection = WeightedCollection(traces, weights)
            ess_values.append(collection.effective_sample_size())
            errors.append(
                abs(collection.estimate_probability(lambda u: u["y"] == 1) - truth)
            )
        rows.append(
            Row(
                name,
                {
                    "translator_error": epsilon.total,
                    "avg_ess": float(np.mean(ess_values)),
                    "avg_error": float(np.mean(errors)),
                },
            )
        )
    return rows


@dataclass
class AblationResult:
    resampling: List[Row]
    correspondence: List[Row]
    proposal: List[Row]


def run_ablations(config: Optional[AblationConfig] = None, quiet: bool = False) -> AblationResult:
    """Run all three ablations and print their tables."""
    config = config or AblationConfig()
    rng = np.random.default_rng(config.seed)
    resampling = _resampling_ablation(config, rng)
    correspondence = _correspondence_ablation(config, rng)
    proposal = _proposal_ablation(config, rng)
    if not quiet:
        print_table(resampling, title="Ablation 1: resampling scheme across an 8-step program sequence")
        print()
        print_table(correspondence, title="Ablation 2: correspondence quality (burglary pair)")
        print()
        print_table(proposal, title="Ablation 3: forward-kernel proposal for non-corresponding choices")
    return AblationResult(resampling, correspondence, proposal)


if __name__ == "__main__":
    run_ablations()
