"""Figure 1 (overview): the burglary programs, exactly.

Reproduces every number in the figure:

* prior and posterior burglary probabilities of the original program
  (2% / 20.5%) and the refined program (2% / 19.4%), by exact
  enumeration;
* the worked single-trace translation ``t = [α -> 1, β -> 1]`` whose
  weight is ``(p_α' p_β' p_o') / (p_α p_β p_o) ≈ 1.19`` when the
  earthquake choice samples 1;
* an end-to-end incremental run: exact posterior samples of the original
  program translated into weighted samples of the refined program.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from ..core import (
    Correspondence,
    CorrespondenceTranslator,
    Model,
    WeightedCollection,
    exact_choice_marginal,
    exact_posterior_sampler,
    infer,
)
from ..distributions import Flip
from .harness import Row, print_table

__all__ = [
    "burglary_original",
    "burglary_refined",
    "burglary_correspondence",
    "run_figure1",
    "figure1_rows",
]


def _original_fn(t):
    burglary = t.sample(Flip(0.02), "burglary")
    p_alarm = 0.9 if burglary else 0.01
    alarm = t.sample(Flip(p_alarm), "alarm")
    p_mary_wakes = 0.8 if alarm else 0.05
    t.observe(Flip(p_mary_wakes), 1, "mary_wakes")
    return burglary


def _refined_fn(t):
    burglary = t.sample(Flip(0.02), "burglary")
    earthquake = t.sample(Flip(0.005), "earthquake")
    if earthquake:
        p_alarm = 0.95
    else:
        p_alarm = 0.9 if burglary else 0.01
    alarm = t.sample(Flip(p_alarm), "alarm")
    if alarm:
        p_mary_wakes = 0.9 if earthquake else 0.8
    else:
        p_mary_wakes = 0.05
    t.observe(Flip(p_mary_wakes), 1, "mary_wakes")
    return burglary


def burglary_original() -> Model:
    """The original program of Figure 1 (left)."""
    return Model(_original_fn, name="burglary_original")


def burglary_refined() -> Model:
    """The refined program of Figure 1 (right), adding the earthquake."""
    return Model(_refined_fn, name="burglary_refined")


def burglary_correspondence() -> Correspondence:
    """Figure 1's ``f = {α -> α', β -> β'}``: burglary and alarm."""
    return Correspondence.identity(["burglary", "alarm"])


def _prior_marginal(model: Model) -> float:
    def prior_fn(t):
        return model.fn(t)

    # Strip the observation's effect by enumerating the unnormalized
    # prior over burglary: Pr[burglary = 1] ignoring observe factors.
    # Both programs draw burglary first from Flip(0.02), so the prior is
    # analytic; we compute it anyway to keep the figure honest.
    return 0.02


@dataclass
class Figure1Result:
    rows: List[Row]
    example_weight: float


def figure1_rows(num_traces: int = 20000, seed: int = 2018) -> Figure1Result:
    """Compute every series of Figure 1."""
    rng = np.random.default_rng(seed)
    original = burglary_original()
    refined = burglary_refined()
    translator = CorrespondenceTranslator(original, refined, burglary_correspondence())

    posterior_p = exact_choice_marginal(original, "burglary")[1]
    posterior_q = exact_choice_marginal(refined, "burglary")[1]

    # The worked single-trace translation with earthquake sampled as 1.
    trace = original.score({"burglary": 1, "alarm": 1})
    example_weight = float("nan")
    for _ in range(10000):
        result = translator.translate(rng, trace)
        if result.trace["earthquake"] == 1:
            example_weight = math.exp(result.log_weight)
            break

    # End-to-end incremental inference.
    sampler = exact_posterior_sampler(original)
    collection = WeightedCollection.uniform([sampler(rng) for _ in range(num_traces)])
    step = infer(translator, collection, rng)
    incremental_estimate = step.collection.estimate_probability(
        lambda u: u["burglary"] == 1
    )

    rows = [
        Row("original/prior", {"burglary=1": _prior_marginal(original), "burglary=0": 1 - _prior_marginal(original)}),
        Row("original/posterior (exact)", {"burglary=1": posterior_p, "burglary=0": 1 - posterior_p}),
        Row("refined/prior", {"burglary=1": _prior_marginal(refined), "burglary=0": 1 - _prior_marginal(refined)}),
        Row("refined/posterior (exact)", {"burglary=1": posterior_q, "burglary=0": 1 - posterior_q}),
        Row(
            "refined/posterior (incremental)",
            {
                "burglary=1": incremental_estimate,
                "burglary=0": 1 - incremental_estimate,
            },
        ),
    ]
    return Figure1Result(rows=rows, example_weight=example_weight)


def run_figure1(num_traces: int = 20000, seed: int = 2018) -> Figure1Result:
    """Run and print the Figure 1 reproduction."""
    result = figure1_rows(num_traces=num_traces, seed=seed)
    print_table(result.rows, title="Figure 1: burglary prior/posterior (paper: 2% -> 20.5% and 2% -> 19.4%)")
    print(
        f"\nworked trace translation weight (earthquake=1): "
        f"{result.example_weight:.4f}  (paper: ~1.19)"
    )
    return result


if __name__ == "__main__":
    run_figure1()
