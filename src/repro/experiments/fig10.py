"""Figure 10: GMM trace-translation time, baseline vs optimized
(Section 7.4).

Translates traces of the Listing 5 Gaussian mixture model across a
hyper-parameter edit (the prior std of the cluster centers), measuring
translation time as the number of data points ``N`` grows:

* **Baseline** — the Section 5 algorithm: a full re-execution of the new
  program plus a full replay of the old one (O(N + K) per translation),
  via the embedded-PPL bridge and the diff-derived correspondence;
* **Optimized** — the Section 6 algorithm: incremental change
  propagation over the dependency-record trace (O(K), independent of N).

Besides wall-clock time the runner reports the number of statements the
optimized engine visited — the deterministic work measure that makes the
asymptotic claim checkable without timing noise.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..gmm import gmm_edit_setup
from ..graph import GraphTranslator, baseline_lang_translator, graph_trace_to_choice_map
from .harness import Row, print_table

__all__ = ["Fig10Config", "Fig10Result", "run_fig10"]


@dataclass
class Fig10Config:
    seed: int = 2018
    num_points: Sequence[int] = (1, 3, 10, 32, 100, 316, 1000)
    k: int = 10
    sigma_old: float = 2.0
    sigma_new: float = 3.0
    repetitions: int = 5
    #: When set, add a "Baseline (parallel batch)" series: a batch of
    #: ``executor_batch`` baseline translations dispatched through the
    #: named repro.parallel backend ("thread" recommended here — the
    #: lang-bridge translator is deepcopy-friendly but not guaranteed
    #: picklable for "process") with per-particle SeedSequence streams.
    executor: Optional[str] = None
    workers: Optional[int] = None
    executor_batch: int = 8


@dataclass
class Fig10Result:
    rows: List[Row]


def run_fig10(config: Optional[Fig10Config] = None, quiet: bool = False) -> Fig10Result:
    """Run the Figure 10 experiment and print its series."""
    config = config or Fig10Config()
    rng = np.random.default_rng(config.seed)
    rows: List[Row] = []

    for n in config.num_points:
        setup = gmm_edit_setup(
            n, k=config.k, sigma_old=config.sigma_old, sigma_new=config.sigma_new
        )

        optimized = GraphTranslator(
            setup.source_program, setup.target_program, source_env=setup.env
        )
        graph_trace = optimized.initial_trace(rng)

        baseline = baseline_lang_translator(
            setup.source_program, setup.target_program, source_env=setup.env
        )
        flat_trace = baseline.source.score(graph_trace_to_choice_map(graph_trace))

        baseline_times, optimized_times = [], []
        visited = 0
        for _ in range(config.repetitions):
            start = time.perf_counter()
            baseline_result = baseline.translate(rng, flat_trace)
            baseline_times.append(time.perf_counter() - start)

            start = time.perf_counter()
            optimized_result = optimized.translate(rng, graph_trace)
            optimized_times.append(time.perf_counter() - start)
            visited = optimized_result.components["visited_statements"]

            # Sanity: same deterministic weight from both algorithms.
            if abs(baseline_result.log_weight - optimized_result.log_weight) > 1e-6:
                raise AssertionError(
                    "baseline and optimized translators disagree on the weight"
                )

        rows.append(
            Row(
                "Baseline",
                {"n": n, "translation_time_s": float(np.median(baseline_times))},
            )
        )
        rows.append(
            Row(
                "Optimized",
                {
                    "n": n,
                    "translation_time_s": float(np.median(optimized_times)),
                    "visited_statements": visited,
                },
            )
        )

        if config.executor is not None:
            from ..core.config import FaultPolicy
            from ..parallel import resolve_executor, spawn_particle_rngs

            executor = resolve_executor(config.executor, config.workers)
            batch = [flat_trace] * config.executor_batch
            seeds = spawn_particle_rngs(rng, len(batch))
            start = time.perf_counter()
            executor.map_translate(baseline, batch, seeds, FaultPolicy(), None)
            elapsed = time.perf_counter() - start
            rows.append(
                Row(
                    "Baseline (parallel batch)",
                    {"n": n, "translation_time_s": elapsed / len(batch)},
                )
            )

    if not quiet:
        print_table(
            rows,
            columns=["n", "translation_time_s", "visited_statements"],
            title=(
                "Figure 10: GMM translation time vs number of data points "
                "(paper: baseline grows as O(N + K), optimized stays O(K))"
            ),
        )
    return Fig10Result(rows=rows)


if __name__ == "__main__":
    run_fig10()
