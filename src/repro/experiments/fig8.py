"""Figure 8: robust Bayesian linear regression (Section 7.2).

Estimates the posterior mean of the slope in the robust model ``Q``
(Listing 2) and plots average estimate error against median runtime per
estimate for three methods:

* **MCMC** — a cycle of independent (prior-proposal) Metropolis updates
  to each latent variable of ``Q``, run from scratch;
* **Incremental** — Algorithm 2: exact conjugate posterior samples of
  the non-robust model ``P`` (Listing 1), translated with the
  slope/intercept correspondence; no MCMC after translation;
* **Incremental (no weights)** — the same, discarding the weight
  estimates (converges to the wrong value, as the paper shows).

The gold-standard reference is a long hand-tuned random-walk chain, as
in the paper ("using a hand-optimized MCMC algorithm as the
gold-standard").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core import CorrespondenceTranslator, InferenceConfig, WeightedCollection, infer
from ..core.mcmc import chain, cycle, independent_mh_site, random_walk_mh_site
from ..observability import NULL_METRICS, MetricsRegistry, Tracer
from ..regression import (
    ADDR_INTERCEPT,
    ADDR_OUTLIER_LOG_VAR,
    ADDR_SLOPE,
    NoOutlierModelParams,
    OutlierModelParams,
    coefficient_correspondence,
    conjugate_posterior,
    exact_regression_trace,
    hospital_like_dataset,
    no_outlier_model,
    outlier_model,
)
from .harness import Row, print_table

__all__ = ["Fig8Config", "Fig8Result", "run_fig8", "gold_standard_slope"]


@dataclass
class Fig8Config:
    num_points: int = 305
    seed: int = 2018
    #: Incremental trace counts (one plotted point each).
    trace_counts: Sequence[int] = (3, 10, 30, 100, 300)
    #: MCMC iteration budgets (one plotted point each).
    mcmc_iterations: Sequence[int] = (10, 30, 100, 300, 1000)
    #: Estimates per point for the error average.
    repetitions: int = 8
    p_params: NoOutlierModelParams = field(
        default_factory=lambda: NoOutlierModelParams(prior_std=10.0, std=0.5)
    )
    q_params: OutlierModelParams = field(
        default_factory=lambda: OutlierModelParams(
            prior_std=10.0, prob_outlier=0.1, inlier_std=0.5
        )
    )
    gold_iterations: int = 20000
    #: Particle-execution backend for the incremental series (None = the
    #: inline loop; "serial"/"thread"/"process" dispatch through
    #: repro.parallel) and its worker count.
    executor: Optional[str] = None
    workers: Optional[int] = None
    #: Memoize density evaluations in the translator.  Off by default:
    #: the cache costs more than these Gaussian densities save (see
    #: docs/performance.md); True for the cache-ablation series.
    log_prob_cache: bool = False
    #: Particle-population representation: "object" (one Trace per
    #: particle) or "columnar" (address-major arrays, vectorized step).
    collection: str = "object"


@dataclass
class Fig8Result:
    rows: List[Row]
    gold_slope: float
    #: The tracer the run reported into (span tree exportable as JSON).
    tracer: Optional[Tracer] = None


def gold_standard_slope(q_model, q_params, posterior, rng, iterations: int) -> float:
    """Long, well-initialized random-walk chain on ``Q``."""
    kernel = cycle(
        [
            random_walk_mh_site(q_model, ADDR_SLOPE, 0.03),
            random_walk_mh_site(q_model, ADDR_INTERCEPT, 0.03),
            random_walk_mh_site(q_model, ADDR_OUTLIER_LOG_VAR, 0.3),
        ]
    )
    initial = q_model.score(
        {
            ADDR_SLOPE: posterior.slope_mean,
            ADDR_INTERCEPT: posterior.intercept_mean,
            ADDR_OUTLIER_LOG_VAR: q_params.outlier_log_var_mu,
        }
    )
    states = chain(
        q_model, kernel, rng, initial=initial, iterations=iterations, burn_in=iterations // 4
    )
    return float(np.mean([t[ADDR_SLOPE] for t in states]))


def run_fig8(
    config: Optional[Fig8Config] = None,
    quiet: bool = False,
    *,
    tracer: Optional[Tracer] = None,
    metrics: MetricsRegistry = NULL_METRICS,
) -> Fig8Result:
    """Run the Figure 8 experiment and print its series.

    All runtimes are read from ``tracer`` spans (``fig8.incremental``
    per estimate, ``fig8.mcmc`` per chain); a fresh tracer is created
    when none is passed, and is returned on the result for export.
    """
    config = config or Fig8Config()
    tracer = tracer if tracer is not None else Tracer()
    inference = InferenceConfig(
        tracer=tracer,
        metrics=metrics,
        executor=config.executor,
        workers=config.workers,
        collection=config.collection,
    )
    rng = np.random.default_rng(config.seed)
    data = hospital_like_dataset(rng, num_points=config.num_points)
    p_model = no_outlier_model(config.p_params, data.xs, data.ys)
    q_model = outlier_model(config.q_params, data.xs, data.ys)
    posterior = conjugate_posterior(config.p_params, data.xs, data.ys)
    translator = CorrespondenceTranslator(
        p_model,
        q_model,
        coefficient_correspondence(),
        log_prob_cache=config.log_prob_cache,
    )

    gold = gold_standard_slope(q_model, config.q_params, posterior, rng, config.gold_iterations)
    rows: List[Row] = []

    def incremental_estimate(num_traces: int, use_weights: bool) -> Tuple[float, float]:
        with tracer.span("fig8.incremental") as span:
            traces = [
                exact_regression_trace(posterior, rng, p_model) for _ in range(num_traces)
            ]
            step = infer(
                translator,
                WeightedCollection.uniform(traces),
                rng,
                config=inference.replace(use_weights=use_weights),
            )
            estimate = step.collection.estimate(lambda u: u[ADDR_SLOPE])
        return estimate, span.duration

    for use_weights, series in [(True, "Incremental"), (False, "Incremental (no weights)")]:
        for num_traces in config.trace_counts:
            estimates, durations = [], []
            for _ in range(config.repetitions):
                estimate, seconds = incremental_estimate(num_traces, use_weights)
                estimates.append(estimate)
                durations.append(seconds)
            rows.append(
                Row(
                    series,
                    {
                        "param": num_traces,
                        "median_runtime_s": float(np.median(durations)),
                        "avg_error": float(np.mean([abs(e - gold) for e in estimates])),
                    },
                )
            )

    mcmc_kernel = cycle(
        [
            independent_mh_site(q_model, ADDR_SLOPE),
            independent_mh_site(q_model, ADDR_INTERCEPT),
            independent_mh_site(q_model, ADDR_OUTLIER_LOG_VAR),
        ]
    )
    for iterations in config.mcmc_iterations:
        estimates, durations = [], []
        for _ in range(config.repetitions):
            with tracer.span("fig8.mcmc") as span:
                states = chain(
                    q_model,
                    mcmc_kernel,
                    rng,
                    iterations=iterations,
                    burn_in=iterations // 4,
                )
            estimates.append(float(np.mean([t[ADDR_SLOPE] for t in states])))
            durations.append(span.duration)
        rows.append(
            Row(
                "MCMC",
                {
                    "param": iterations,
                    "median_runtime_s": float(np.median(durations)),
                    "avg_error": float(np.mean([abs(e - gold) for e in estimates])),
                },
            )
        )

    if not quiet:
        print_table(
            rows,
            columns=["param", "median_runtime_s", "avg_error"],
            title=(
                "Figure 8: robust regression — error vs runtime "
                f"(gold slope = {gold:.4f}; paper: incremental 0.031 error @ 0.043 s, "
                "MCMC 0.19 error @ 0.53 s)"
            ),
        )
    return Fig8Result(rows=rows, gold_slope=gold, tracer=tracer)


if __name__ == "__main__":
    run_fig8()
