"""Figure 9: higher-order HMM typo correction (Section 7.3).

Posterior inference over hidden (true) characters of typed words under a
second-order character HMM ``Q``, starting from exact posterior samples
of a first-order model ``P`` (obtained by FFBS dynamic programming).
Accuracy is the log of the average per-character posterior probability
of the ground-truth characters on held-out words; runtime is the median
per-word inference time.

Series:

* **Incremental** — FFBS samples of ``P`` translated to ``Q`` with the
  hidden-state correspondence, no MCMC (varying the number of traces);
* **Incremental (no weights)** — ablation converging to ``P``'s
  posterior instead of ``Q``'s;
* **Gibbs** — sweeps of exact single-site Gibbs updates on ``Q`` from a
  prior initialization (varying the number of sweeps).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core import CorrespondenceTranslator, InferenceConfig, WeightedCollection, infer
from ..core.mcmc import chain, gibbs_sweep, repeat
from ..observability import NULL_METRICS, MetricsRegistry, Tracer
from ..hmm import (
    encode,
    exact_first_order_trace,
    first_order_model,
    generate_corpus,
    ground_truth_posterior_probability,
    hidden_state_correspondence,
    second_order_model,
    train_first_order,
    train_second_order,
)
from .harness import Row, print_table

__all__ = ["Fig9Config", "Fig9Result", "run_fig9"]


@dataclass
class Fig9Config:
    seed: int = 2018
    num_train_words: int = 4000
    num_test_words: int = 12
    trace_counts: Sequence[int] = (1, 3, 10, 30)
    gibbs_sweeps: Sequence[int] = (1, 3, 10)
    gibbs_chains: int = 5
    #: Extension beyond the paper (which used no MCMC after translation):
    #: also run incremental + N Gibbs rejuvenation sweeps when > 0.
    rejuvenation_sweeps: int = 0
    #: Include the exact pair-state DP reference row (O(L * S^3) per word).
    include_exact: bool = True
    #: Particle-execution backend for the incremental series (None = the
    #: inline loop) and its worker count; see repro.parallel.
    executor: Optional[str] = None
    workers: Optional[int] = None
    #: Memoize density evaluations in the per-word translators (off by
    #: default; see docs/performance.md).
    log_prob_cache: bool = False


@dataclass
class Fig9Result:
    rows: List[Row]
    test_words: List[Tuple[str, str]]
    #: The tracer the run reported into (span tree exportable as JSON).
    tracer: Optional[Tracer] = None


def _per_word_incremental(
    p_params,
    q_params,
    typed,
    rng,
    num_traces,
    use_weights,
    rejuvenation_sweeps=0,
    inference=None,
    tracer=None,
    log_prob_cache=False,
):
    observations = encode(typed)
    p_model = first_order_model(p_params, observations)
    q_model = second_order_model(q_params, observations)
    translator = CorrespondenceTranslator(
        p_model, q_model, hidden_state_correspondence(), log_prob_cache=log_prob_cache
    )
    kernel = None
    if rejuvenation_sweeps > 0:
        addresses = [("hidden", i) for i in range(len(observations))]
        kernel = repeat(gibbs_sweep(q_model, addresses), rejuvenation_sweeps)
    tracer = tracer if tracer is not None else Tracer()
    inference = inference if inference is not None else InferenceConfig(tracer=tracer)
    with tracer.span("fig9.incremental") as span:
        traces = [
            exact_first_order_trace(p_params, observations, rng, p_model)
            for _ in range(num_traces)
        ]
        step = infer(
            translator,
            WeightedCollection.uniform(traces),
            rng,
            mcmc_kernel=kernel,
            config=inference.replace(
                resample="always" if kernel is not None else "never",
                use_weights=use_weights,
            ),
        )
    return step.collection, span.duration


def _per_word_gibbs(q_params, typed, rng, num_sweeps, num_chains, tracer=None):
    observations = encode(typed)
    q_model = second_order_model(q_params, observations)
    addresses = [("hidden", i) for i in range(len(observations))]
    kernel = gibbs_sweep(q_model, addresses)
    tracer = tracer if tracer is not None else Tracer()
    with tracer.span("fig9.gibbs") as span:
        states = []
        for _ in range(num_chains):
            states.extend(chain(q_model, kernel, rng, iterations=num_sweeps))
    return WeightedCollection.uniform(states), span.duration


def run_fig9(
    config: Optional[Fig9Config] = None,
    quiet: bool = False,
    *,
    tracer: Optional[Tracer] = None,
    metrics: MetricsRegistry = NULL_METRICS,
) -> Fig9Result:
    """Run the Figure 9 experiment and print its series.

    All runtimes are read from ``tracer`` spans (``fig9.incremental``,
    ``fig9.gibbs``, ``fig9.exact`` — one per per-word run); a fresh
    tracer is created when none is passed, and is returned on the result
    for export.
    """
    config = config or Fig9Config()
    tracer = tracer if tracer is not None else Tracer()
    inference = InferenceConfig(
        tracer=tracer,
        metrics=metrics,
        executor=config.executor,
        workers=config.workers,
    )
    rng = np.random.default_rng(config.seed)
    corpus = generate_corpus(
        rng,
        num_train_words=config.num_train_words,
        num_test_words=config.num_test_words,
    )
    p_params = train_first_order(corpus.train)
    q_params = train_second_order(corpus.train)

    rows: List[Row] = []

    variants = [(True, 0, "Incremental"), (False, 0, "Incremental (no weights)")]
    if config.rejuvenation_sweeps > 0:
        variants.append(
            (True, config.rejuvenation_sweeps, "Incremental + Gibbs rejuvenation")
        )
    for use_weights, sweeps, series in variants:
        for num_traces in config.trace_counts:
            accuracies, durations = [], []
            for typed, truth in corpus.test:
                collection, seconds = _per_word_incremental(
                    p_params,
                    q_params,
                    typed,
                    rng,
                    num_traces,
                    use_weights,
                    sweeps,
                    inference=inference,
                    tracer=tracer,
                    log_prob_cache=config.log_prob_cache,
                )
                accuracies.append(
                    ground_truth_posterior_probability(collection, encode(truth))
                )
                durations.append(seconds)
            rows.append(
                Row(
                    series,
                    {
                        "param": num_traces,
                        "median_runtime_s": float(np.median(durations)),
                        "avg_truth_probability": float(np.mean(accuracies)),
                        "log_truth_probability": float(np.log(np.mean(accuracies))),
                    },
                )
            )

    if config.include_exact:
        import numpy as _np

        from ..hmm import second_order_posterior_marginals

        accuracies, durations = [], []
        for typed, truth in corpus.test:
            observations = encode(typed)
            truth_indices = encode(truth)
            with tracer.span("fig9.exact") as span:
                marginals = second_order_posterior_marginals(q_params, observations)
            durations.append(span.duration)
            accuracies.append(
                float(
                    _np.mean(
                        [marginals[i, s] for i, s in enumerate(truth_indices)]
                    )
                )
            )
        rows.append(
            Row(
                "Exact (pair-state DP)",
                {
                    "param": 0,
                    "median_runtime_s": float(np.median(durations)),
                    "avg_truth_probability": float(np.mean(accuracies)),
                    "log_truth_probability": float(np.log(np.mean(accuracies))),
                },
            )
        )

    for num_sweeps in config.gibbs_sweeps:
        accuracies, durations = [], []
        for typed, truth in corpus.test:
            collection, seconds = _per_word_gibbs(
                q_params, typed, rng, num_sweeps, config.gibbs_chains, tracer=tracer
            )
            accuracies.append(
                ground_truth_posterior_probability(collection, encode(truth))
            )
            durations.append(seconds)
        rows.append(
            Row(
                "Gibbs",
                {
                    "param": num_sweeps,
                    "median_runtime_s": float(np.median(durations)),
                    "avg_truth_probability": float(np.mean(accuracies)),
                    "log_truth_probability": float(np.log(np.mean(accuracies))),
                },
            )
        )

    if not quiet:
        print_table(
            rows,
            columns=[
                "param",
                "median_runtime_s",
                "avg_truth_probability",
                "log_truth_probability",
            ],
            title=(
                "Figure 9: typo correction — ground-truth posterior probability vs runtime "
                "(paper: incremental 0.41 @ 0.013 s with 30 traces; Gibbs 0.18 @ 0.14 s; "
                "incremental-no-weights 0.38 @ 0.14 s)"
            ),
        )
    return Fig9Result(rows=rows, test_words=list(corpus.test), tracer=tracer)


if __name__ == "__main__":
    run_fig9()
