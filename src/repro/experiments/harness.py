"""Shared experiment utilities: timing, result rows, table printing.

Every experiment runner returns a list of :class:`Row` objects and can
print them as an aligned table, one row per plotted point, so the output
directly mirrors the paper's figures.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Row", "print_table", "median_time", "timed", "rows_to_json", "save_rows"]


@dataclass
class Row:
    """One plotted point: a method/series name plus named values."""

    series: str
    values: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.values[key]


def timed(fn: Callable[[], Any]) -> Tuple[Any, float]:
    """Run ``fn`` once; return ``(result, seconds)``."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def median_time(fn: Callable[[], Any], repetitions: int = 5) -> float:
    """Median wall-clock seconds of ``fn`` over several repetitions."""
    durations = []
    for _ in range(repetitions):
        _result, seconds = timed(fn)
        durations.append(seconds)
    return float(np.median(durations))


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        if value != 0 and (abs(value) < 1e-3 or abs(value) >= 1e5):
            return f"{value:.3e}"
        return f"{value:.4f}"
    return str(value)


def print_table(rows: Sequence[Row], columns: Optional[List[str]] = None, title: str = "") -> str:
    """Format rows as an aligned text table and print it."""
    if not rows:
        return ""
    if columns is None:
        columns = []
        for row in rows:
            for key in row.values:
                if key not in columns:
                    columns.append(key)
    header = ["series"] + columns
    body = [[row.series] + [_format_value(row.values.get(c, "")) for c in columns] for row in rows]
    widths = [max(len(str(cell)) for cell in [header[i]] + [r[i] for r in body]) for i in range(len(header))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row_cells in body:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row_cells, widths)))
    output = "\n".join(lines)
    print(output)
    return output


def _json_safe(value: Any) -> Any:
    """Convert a value into something every JSON parser accepts.

    Python's ``json.dumps`` emits bare ``NaN``/``Infinity`` tokens by
    default, which are not JSON and crash strict parsers (browsers,
    ``jq``, most plotting stacks).  Experiment rows legitimately contain
    such values — a degenerate run's ESS, a ``-inf`` log weight — so
    NaN maps to ``null`` and the infinities to explicit strings that
    survive a round trip unambiguously.
    """
    if isinstance(value, (np.floating, np.integer)):
        value = value.item()
    if isinstance(value, float):
        if math.isnan(value):
            return None
        if value == math.inf:
            return "Infinity"
        if value == -math.inf:
            return "-Infinity"
        return value
    if isinstance(value, dict):
        return {str(key): _json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if isinstance(value, np.ndarray):
        return [_json_safe(item) for item in value.tolist()]
    return value


def rows_to_json(rows: Sequence[Row]) -> str:
    """Serialize rows to a strict-JSON array (one object per point).

    Non-finite floats are sanitized by :func:`_json_safe`;
    ``allow_nan=False`` guarantees the output never contains the bare
    ``NaN``/``Infinity`` tokens that strict parsers reject.
    """
    import json

    return json.dumps(
        [_json_safe({"series": row.series, **row.values}) for row in rows],
        indent=2,
        allow_nan=False,
    )


def save_rows(rows: Sequence[Row], path: str) -> None:
    """Write rows as JSON, for downstream plotting or regression tracking."""
    with open(path, "w") as handle:
        handle.write(rows_to_json(rows))
        handle.write("\n")
