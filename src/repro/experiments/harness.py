"""Shared experiment utilities: timing, result rows, table printing.

Every experiment runner returns a list of :class:`Row` objects and can
print them as an aligned table, one row per plotted point, so the output
directly mirrors the paper's figures.

Timing goes through the span tracer of :mod:`repro.observability`
(:func:`timed` opens a span and reads its duration), so experiment
runtimes and the inference engine's own ``SMCStats`` timings come from
one clock and one mechanism — and passing a shared tracer into
:func:`timed` makes experiment phases show up in the exported trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..observability import Tracer, json_safe, to_json

__all__ = ["Row", "print_table", "median_time", "timed", "rows_to_json", "save_rows"]


@dataclass
class Row:
    """One plotted point: a method/series name plus named values."""

    series: str
    values: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.values[key]


def timed(
    fn: Callable[[], Any], tracer: Optional[Tracer] = None, label: str = "timed"
) -> Tuple[Any, float]:
    """Run ``fn`` once inside a tracer span; return ``(result, seconds)``.

    With no ``tracer``, a throwaway one is used (pure timing); passing a
    shared tracer additionally records the run as a ``label`` span in
    its exported trace.
    """
    with (tracer or Tracer()).span(label) as span:
        result = fn()
    return result, span.duration


def median_time(
    fn: Callable[[], Any],
    repetitions: int = 5,
    tracer: Optional[Tracer] = None,
    label: str = "timed",
) -> float:
    """Median wall-clock seconds of ``fn`` over several repetitions."""
    durations = []
    for _ in range(repetitions):
        _result, seconds = timed(fn, tracer=tracer, label=label)
        durations.append(seconds)
    return float(np.median(durations))


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        if value != 0 and (abs(value) < 1e-3 or abs(value) >= 1e5):
            return f"{value:.3e}"
        return f"{value:.4f}"
    return str(value)


def print_table(rows: Sequence[Row], columns: Optional[List[str]] = None, title: str = "") -> str:
    """Format rows as an aligned text table and print it."""
    if not rows:
        return ""
    if columns is None:
        columns = []
        for row in rows:
            for key in row.values:
                if key not in columns:
                    columns.append(key)
    header = ["series"] + columns
    body = [[row.series] + [_format_value(row.values.get(c, "")) for c in columns] for row in rows]
    widths = [max(len(str(cell)) for cell in [header[i]] + [r[i] for r in body]) for i in range(len(header))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row_cells in body:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row_cells, widths)))
    output = "\n".join(lines)
    print(output)
    return output


#: Strict-JSON sanitizer, now shared with the observability exporters
#: (kept under its historical name for existing importers).
_json_safe = json_safe


def rows_to_json(rows: Sequence[Row]) -> str:
    """Serialize rows to a strict-JSON array (one object per point).

    Non-finite floats are sanitized by
    :func:`repro.observability.json_safe`; ``allow_nan=False`` guarantees
    the output never contains the bare ``NaN``/``Infinity`` tokens that
    strict parsers reject.
    """
    return to_json([{"series": row.series, **row.values} for row in rows])


def save_rows(rows: Sequence[Row], path: str) -> None:
    """Write rows as JSON, for downstream plotting or regression tracking."""
    with open(path, "w") as handle:
        handle.write(rows_to_json(rows))
        handle.write("\n")
