"""Multi-edit inference-session workflows on the paper's models.

The paper's motivating use case is *interactive* model development: a
user edits a probabilistic program several times, and every edit reuses
the previous posterior via trace translation instead of restarting
inference.  This module scripts two such workflows through the
:mod:`repro.store` session layer, one per supported trace
representation:

* :func:`run_fig8_session` — the Section 7.2 robust-regression story on
  the embedded PPL: start from plain Bayesian linear regression
  (Listing 1), switch to the outlier mixture model (Listing 2), then
  tune its hyper-parameters over two more edits.  Coefficients are
  carried across edits by :func:`repro.regression.coefficient_correspondence`.
* :func:`run_fig10_session` — the Section 7.4 GMM on the structured
  language with the Section 6 dependency-graph runtime: a chain of
  hyper-parameter edits to the cluster-center prior std, each applied
  with a :class:`~repro.graph.GraphTranslator` (incremental change
  propagation, O(K) work per edit).

Both return a serializable report: the per-edit history the session
recorded, the session's metrics snapshot, and a few posterior summaries
— what ``repro session`` prints and ``--metrics-out`` persists.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from ..core import CorrespondenceTranslator, WeightedCollection, cycle, repeat, single_site_mh
from ..core.importance import importance_sampling
from ..core.mcmc import random_walk_mh_site
from ..gmm import gmm_conditioned_source
from ..graph import GraphTranslator, replace_constant, run_initial
from ..lang import parse_program
from ..regression import (
    ADDR_INTERCEPT,
    ADDR_SLOPE,
    NoOutlierModelParams,
    OutlierModelParams,
    coefficient_correspondence,
    no_outlier_model,
    outlier_model,
)
from ..store import SessionManager

__all__ = ["run_fig8_session", "run_fig10_session", "SESSION_WORKFLOWS"]

#: The Figure 8 dataset of the quick experiments: a line with one outlier.
_FIG8_XS = (-2.0, -1.0, 0.0, 1.0, 2.0, 3.0, 4.0)
_FIG8_YS = (-4.1, -2.2, 0.1, 1.8, 4.2, 6.1, -20.0)


def _report(manager: SessionManager, session, summaries: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "session_id": session.session_id,
        "num_edits": session.num_edits,
        "history": list(session.history),
        "session_metrics": session.metrics_snapshot(),
        "manager_metrics": manager.metrics_snapshot(),
        "summaries": summaries,
    }


def run_fig8_session(
    num_particles: int = 200,
    seed: int = 0,
    store_dir: Optional[str] = None,
    quiet: bool = False,
) -> Dict[str, Any]:
    """Robust-regression model exploration as a session (3 edits).

    Edit sequence: Listing 1 → Listing 2 (``prob_outlier=0.1``) →
    ``prob_outlier=0.2`` → tighter ``inlier_std=0.3``.  The slope
    posterior mean is reported after every edit; on this dataset (one
    gross outlier at ``x=4``) the switch to the mixture model moves the
    slope towards the inlier trend, which is the Figure 8 effect.
    """
    xs, ys = _FIG8_XS, _FIG8_YS
    rng = np.random.default_rng(seed)
    programs = [
        no_outlier_model(NoOutlierModelParams(), xs, ys),
        outlier_model(OutlierModelParams(prob_outlier=0.1), xs, ys),
        outlier_model(OutlierModelParams(prob_outlier=0.2), xs, ys),
        outlier_model(OutlierModelParams(prob_outlier=0.2, inlier_std=0.3), xs, ys),
    ]
    edits = [
        "listing1 -> listing2(prob_outlier=0.1)",
        "prob_outlier: 0.1 -> 0.2",
        "inlier_std: 0.5 -> 0.3",
    ]

    manager = SessionManager(store_dir)
    initial = importance_sampling(programs[0], rng, num_particles).resample(rng)
    session = manager.create("fig8-regression", initial, seed=seed + 1)

    def slope_mean() -> float:
        return float(session.estimate(lambda t: t[ADDR_SLOPE]))

    slopes = [slope_mean()]
    for index, (previous, current) in enumerate(zip(programs, programs[1:])):
        translator = CorrespondenceTranslator(
            previous, current, coefficient_correspondence()
        )
        # Rejuvenate after each translation: likelihood weighting from a
        # wide prior is degenerate, and the paper's workflow interleaves
        # translation with MCMC over the current program.
        kernel = repeat(
            cycle([
                random_walk_mh_site(current, ADDR_SLOPE, 0.5),
                random_walk_mh_site(current, ADDR_INTERCEPT, 0.5),
                single_site_mh(current),
            ]),
            25,
        )
        step = session.submit(translator, kernel)
        slopes.append(slope_mean())
        if not quiet:
            print(
                f"edit {index}: {edits[index]:<38}  "
                f"ess={step.stats.ess_after:7.1f}  slope_mean={slopes[-1]:+.3f}"
            )

    summaries = {"edits": edits, "slope_mean_by_edit": slopes}
    if store_dir is not None:
        manager.close(session.session_id)
    return _report(manager, session, summaries)


def run_fig10_session(
    num_particles: int = 50,
    seed: int = 0,
    store_dir: Optional[str] = None,
    quiet: bool = False,
    num_points: int = 40,
    k: int = 5,
) -> Dict[str, Any]:
    """GMM hyper-parameter tuning as a session over graph traces (3 edits).

    The Listing 5 mixture program's ``sigma`` (cluster-center prior std)
    is edited along ``2.0 → 3.0 → 2.5 → 4.0``; every edit runs through a
    :class:`~repro.graph.GraphTranslator`, so only the O(K) statements
    that depend on ``sigma`` are revisited.  The report records the
    per-edit visited-statement counts next to the trace size, making the
    incrementality visible in the session history.
    """
    sigmas = [2.0, 3.0, 2.5, 4.0]
    base = parse_program(gmm_conditioned_source(k=k, sigma=sigmas[0]))
    programs = [base] + [
        replace_constant(base, "sigma", value) for value in sigmas[1:]
    ]
    edits = [f"sigma: {a} -> {b}" for a, b in zip(sigmas, sigmas[1:])]

    rng = np.random.default_rng(seed)
    # Observed points from two well-separated clusters, so the center
    # posterior actually depends on the prior std being edited.
    data_rng = np.random.default_rng(seed + 1000)
    ys = [
        float(data_rng.normal(-3.0 if i % 2 == 0 else 3.0, 1.0))
        for i in range(num_points)
    ]
    env = {"n": int(num_points), "ys": ys}
    traces = [run_initial(programs[0], rng, env=env) for _ in range(num_particles)]
    initial = WeightedCollection(
        traces, [trace.observation_log_prob for trace in traces]
    ).resample(rng)

    manager = SessionManager(store_dir)
    session = manager.create("fig10-gmm", initial, seed=seed + 1)

    visited_by_edit = []
    for index, (previous, current) in enumerate(zip(programs, programs[1:])):
        translator = GraphTranslator(previous, current, source_env=env)
        step = session.submit(translator)
        visited = [trace.visited_statements for trace in step.collection.items]
        visited_by_edit.append(max(visited))
        if not quiet:
            print(
                f"edit {index}: {edits[index]:<18}  ess={step.stats.ess_after:7.1f}  "
                f"visited<= {visited_by_edit[-1]} statements (n={num_points}, k={k})"
            )

    summaries = {
        "edits": edits,
        "num_points": num_points,
        "k": k,
        "max_visited_statements_by_edit": visited_by_edit,
    }
    if store_dir is not None:
        manager.close(session.session_id)
    return _report(manager, session, summaries)


#: Name → runner, as dispatched by ``repro session NAME``.
SESSION_WORKFLOWS = {
    "fig8": run_fig8_session,
    "fig10": run_fig10_session,
}
