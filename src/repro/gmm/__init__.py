"""Gaussian mixture model substrate for the Figure 10 experiment."""

from .model import (
    GMMExperimentSetup,
    gmm_conditioned_source,
    gmm_edit_setup,
    gmm_generative_source,
)

__all__ = [
    "GMMExperimentSetup",
    "gmm_generative_source",
    "gmm_conditioned_source",
    "gmm_edit_setup",
]
