"""The finite Gaussian mixture model of Listing 5 (Section 7.4).

The Figure 10 experiment edits a hyper-parameter of the GMM program —
the prior standard deviation of the cluster centers — and measures
trace-translation time as the number of data points ``N`` grows, for
the baseline (Section 5, O(N + K)) and optimized (Section 6, O(K))
algorithms.

The hyper-parameter is expressed as a leading assignment ``sigma = v;``
so the edit machinery of :mod:`repro.graph.edits` applies directly; the
number of data points ``n`` is an environment parameter, as in
Listing 5's ``main(sigma, n)`` signature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..graph.edits import replace_constant
from ..lang.ast import Stmt
from ..lang.parser import parse_program

__all__ = [
    "gmm_generative_source",
    "gmm_conditioned_source",
    "GMMExperimentSetup",
    "gmm_edit_setup",
]


def gmm_generative_source(k: int = 10, sigma: float = 2) -> str:
    """Listing 5 with the center-prior std inlined as ``sigma = ...;``."""
    return f"""
sigma = {sigma};
k = {k};
centers = array(k, 0);
for i in [0 .. k) {{
    centers[i] = gauss(0, sigma);
}}
data = array(n, 0);
for i in [0 .. n) {{
    data[i] = gauss(centers[uniform(0, k - 1)], 1);
}}
return data;
"""


def gmm_conditioned_source(k: int = 10, sigma: float = 2) -> str:
    """A conditioned GMM: observed data drawn from the mixture.

    ``ys`` (the observed points) is an environment parameter; cluster
    assignments remain latent.  Used by examples and tests that do
    posterior inference over centers in the structured language.
    """
    return f"""
sigma = {sigma};
k = {k};
centers = array(k, 0);
for i in [0 .. k) {{
    centers[i] = gauss(0, sigma);
}}
for i in [0 .. n) {{
    z = uniform(0, k - 1);
    observe(gauss(centers[z], 1) == ys[i]);
}}
return centers;
"""


@dataclass(frozen=True)
class GMMExperimentSetup:
    """Everything needed to run one Figure 10 translation at size ``n``."""

    source_program: Stmt
    target_program: Stmt
    env: Dict[str, int]
    k: int
    n: int


def gmm_edit_setup(
    n: int, k: int = 10, sigma_old: float = 2, sigma_new: float = 3
) -> GMMExperimentSetup:
    """Build the Listing 5 program and its hyper-parameter edit.

    The target program shares every unchanged subtree with the source,
    as the Section 6 algorithm requires.
    """
    source = parse_program(gmm_generative_source(k=k, sigma=sigma_old))
    target = replace_constant(source, "sigma", sigma_new)
    return GMMExperimentSetup(
        source_program=source,
        target_program=target,
        env={"n": int(n)},
        k=k,
        n=int(n),
    )
