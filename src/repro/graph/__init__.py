"""Dependency-tracking runtime and optimized trace translation (Section 6).

* :mod:`repro.graph.records` — traces as dependency-record trees (``G_t``);
* :mod:`repro.graph.engine` — initial recording run and incremental
  change propagation;
* :mod:`repro.graph.edits` — structured program edits with maximal
  subtree sharing (the source of the syntactic correspondence);
* :mod:`repro.graph.diff` — recovering a correspondence from two program
  texts by tree alignment;
* :mod:`repro.graph.translate` — the optimized translator and the
  Section 5 baseline it is compared against in Figure 10.
"""

from .dot import to_dot
from .diff import (
    align_labels,
    diff_correspondence,
    flatten_seq,
    label_correspondence,
    lcs_pairs,
)
from .edits import (
    Edit,
    apply_edit,
    assignment_path,
    replace_constant,
    statement_path,
    statements,
    subtree_at,
)
from .engine import PropagationResult, propagate, run_initial, visited_top_level
from .records import GraphTrace, StmtRecord
from .translate import GraphTranslator, baseline_lang_translator, graph_trace_to_choice_map

__all__ = [
    "GraphTrace",
    "to_dot",
    "StmtRecord",
    "run_initial",
    "propagate",
    "PropagationResult",
    "Edit",
    "apply_edit",
    "subtree_at",
    "statements",
    "statement_path",
    "assignment_path",
    "replace_constant",
    "align_labels",
    "label_correspondence",
    "flatten_seq",
    "lcs_pairs",
    "visited_top_level",
    "diff_correspondence",
    "GraphTranslator",
    "baseline_lang_translator",
    "graph_trace_to_choice_map",
]
