"""Syntactic correspondence from two program texts (Section 6).

When the edit is not available as a structured operation — only the old
and new sources are — a correspondence between random expressions can
still be recovered by aligning the two ASTs.  The alignment is a
standard tree diff specialized to the language:

* identical subtrees (modulo labels) match wholesale, pairing their
  random expressions in pre-order;
* sequences align their statement lists by a longest-common-subsequence
  over equality-modulo-labels, then recurse into the unmatched gaps
  pairwise;
* same-kind nodes recurse field by field.

The result is a map from new labels to old labels, convertible into an
address :class:`~repro.core.correspondence.Correspondence` via
:func:`label_correspondence`.  This is the paper's "informed heuristic":
soundness never depends on it (Lemma 2 holds for any correspondence),
only efficiency does.
"""

from __future__ import annotations

from dataclasses import fields
from typing import Dict, List, Tuple

from ..core.correspondence import Correspondence
from ..lang.analysis import equal_modulo_labels, random_expressions
from ..lang.ast import Node, RandomExpr, Seq, Stmt

__all__ = [
    "diff_correspondence",
    "label_correspondence",
    "align_labels",
    "flatten_seq",
    "lcs_pairs",
]


def flatten_seq(stmt: Stmt) -> List[Stmt]:
    """Top-level statement list of a (right-nested) ``Seq`` spine."""
    result: List[Stmt] = []
    node = stmt
    while isinstance(node, Seq):
        result.append(node.first)
        node = node.second
    result.append(node)
    return result


def lcs_pairs(old: List[Stmt], new: List[Stmt]) -> List[Tuple[int, int]]:
    """Indices of a longest common subsequence under equality-modulo-labels."""
    n, m = len(old), len(new)
    lengths = [[0] * (m + 1) for _ in range(n + 1)]
    for i in range(n - 1, -1, -1):
        for j in range(m - 1, -1, -1):
            if equal_modulo_labels(old[i], new[j]):
                lengths[i][j] = 1 + lengths[i + 1][j + 1]
            else:
                lengths[i][j] = max(lengths[i + 1][j], lengths[i][j + 1])
    pairs: List[Tuple[int, int]] = []
    i = j = 0
    while i < n and j < m:
        if equal_modulo_labels(old[i], new[j]):
            pairs.append((i, j))
            i += 1
            j += 1
        elif lengths[i + 1][j] >= lengths[i][j + 1]:
            i += 1
        else:
            j += 1
    return pairs


def align_labels(old: Node, new: Node) -> Dict[str, str]:
    """Map new-program random-expression labels to old-program labels."""
    mapping: Dict[str, str] = {}
    _align(old, new, mapping)
    return mapping


def _match_wholesale(old: Node, new: Node, mapping: Dict[str, str]) -> None:
    for old_random, new_random in zip(random_expressions(old), random_expressions(new)):
        mapping[new_random.label] = old_random.label


def _align(old: Node, new: Node, mapping: Dict[str, str]) -> None:
    if equal_modulo_labels(old, new):
        _match_wholesale(old, new, mapping)
        return
    if isinstance(old, Seq) or isinstance(new, Seq):
        old_list = flatten_seq(old) if isinstance(old, Stmt) else [old]
        new_list = flatten_seq(new) if isinstance(new, Stmt) else [new]
        matched = lcs_pairs(old_list, new_list)
        for i, j in matched:
            # Matched statements are equal modulo labels: pair their
            # random expressions in pre-order.
            _match_wholesale(old_list[i], new_list[j], mapping)
        # Recurse into the gaps pairwise: statements between matches are
        # plausibly edits of each other.
        boundaries = [(-1, -1)] + matched + [(len(old_list), len(new_list))]
        for (i0, j0), (i1, j1) in zip(boundaries, boundaries[1:]):
            gap_old = old_list[i0 + 1 : i1]
            gap_new = new_list[j0 + 1 : j1]
            for old_stmt, new_stmt in zip(gap_old, gap_new):
                _align(old_stmt, new_stmt, mapping)
        return
    if type(old) is type(new):
        # Same node kind: if both are random expressions of the same kind,
        # they correspond; either way recurse into aligned fields.
        if isinstance(old, RandomExpr) and isinstance(new, RandomExpr):
            mapping[new.label] = old.label
        for field_info in fields(old):
            if field_info.name == "label":
                continue
            old_child = getattr(old, field_info.name)
            new_child = getattr(new, field_info.name)
            if isinstance(old_child, Node) and isinstance(new_child, Node):
                _align(old_child, new_child, mapping)
        return
    # Different kinds: no correspondence below this point.


class _LabelHeadMap:
    """Apply a label map to an address head, preserving loop indices.

    Module-level (not a closure) so diff-derived correspondences — and
    the lang translators built on them — stay picklable for the
    ``process`` particle executor.
    """

    __slots__ = ("labels",)

    def __init__(self, labels: Dict[str, str]):
        self.labels = labels

    def __call__(self, address):
        label, rest = address[0], address[1:]
        mapped = self.labels.get(label)
        return (mapped,) + rest if mapped is not None else None


def label_correspondence(label_map: Dict[str, str]) -> Correspondence:
    """Lift a new-label -> old-label map to an address correspondence.

    Run-time addresses are ``(label, *loop_indices)``; corresponding
    choices keep their loop indices (the Section 5.4 scheme), so the
    address map applies the label map to the head and preserves the
    tail.
    """
    inverse = {}
    for new_label, old_label in label_map.items():
        if old_label in inverse:
            raise ValueError(
                f"label map is not injective: {old_label!r} is the image of both "
                f"{inverse[old_label]!r} and {new_label!r}"
            )
        inverse[old_label] = new_label

    return Correspondence(
        _LabelHeadMap(dict(label_map)),
        _LabelHeadMap(inverse),
        description=f"labels({len(label_map)})",
    )


def diff_correspondence(old: Stmt, new: Stmt) -> Correspondence:
    """End-to-end: align two programs, return the address correspondence."""
    return label_correspondence(align_labels(old, new))
