"""Graphviz DOT export of dependency-record traces.

Renders a :class:`~repro.graph.records.GraphTrace` in the style of the
paper's Figure 7: one node per statement record, labelled with its
pretty-printed statement (choices and observations annotated), and edges
for the record tree plus the variable reads each statement consumed.
When an old trace is supplied, nodes shared with it (skipped during
propagation) are drawn dashed — making the partial re-execution visible.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..lang.ast import Seq
from ..lang.pretty import pretty
from .records import GraphTrace, StmtRecord

__all__ = ["to_dot"]


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _statement_summary(record: StmtRecord, max_length: int = 40) -> str:
    if isinstance(record.stmt, Seq):
        text = "…;"
    else:
        text = pretty(record.stmt).split("\n")[0].strip()
    if len(text) > max_length:
        text = text[: max_length - 1] + "…"
    annotations: List[str] = []
    for address, choice in record.choices.items():
        annotations.append(f"{address[0]} -> {choice.value!r}")
    for address, observation in record.observations.items():
        annotations.append(f"obs {address[0]}: {observation.log_prob:.2f}")
    if annotations:
        text += "\\n" + "\\n".join(annotations[:3])
    return text


def to_dot(trace: GraphTrace, old: Optional[GraphTrace] = None) -> str:
    """Render the trace as a DOT digraph string.

    ``old`` marks records shared by reference with a previous trace
    (i.e. skipped by propagation) with dashed borders.
    """
    shared = set()
    if old is not None:
        stack = [old.root]
        while stack:
            record = stack.pop()
            shared.add(id(record))
            stack.extend(record.children.values())

    lines = ["digraph trace {", '  node [shape=box, fontname="monospace"];']
    counter = [0]
    writer_of: Dict[Tuple[str, int], str] = {}

    def visit(record: StmtRecord, parent: Optional[str]) -> None:
        counter[0] += 1
        node_id = f"n{counter[0]}"
        style = "dashed" if id(record) in shared else "solid"
        lines.append(
            f'  {node_id} [label="{_escape(_statement_summary(record))}", style={style}];'
        )
        if parent is not None:
            lines.append(f"  {parent} -> {node_id};")
        # Dataflow edges: reads resolved to the writer node, when known.
        for name, version in record.reads.items():
            writer = writer_of.get((name, version))
            if writer is not None:
                lines.append(
                    f'  {writer} -> {node_id} [style=dotted, label="{_escape(name)}"];'
                )
        for name, (_value, version) in record.writes.items():
            writer_of[(name, version)] = node_id
        for key in sorted(record.children, key=repr):
            visit(record.children[key], node_id)

    visit(trace.root, None)
    lines.append("}")
    return "\n".join(lines)
