"""Structured program edits (Section 6).

An :class:`Edit` replaces the subtree at a *path* with a new subtree.
Applying an edit rebuilds only the nodes along the path; every other
subtree of the program is **shared by reference** with the original.
The incremental engine exploits this: its unchanged-subtree test is an
``is`` check on shared nodes, and random expressions in shared subtrees
keep their labels — which *is* the syntactic correspondence the paper
derives from an edit (random expressions that correspond syntactically
are placed in semantic correspondence).

Paths are tuples of dataclass field names, e.g.
``("second", "first", "expr")`` reaches the right-hand side of the
second statement of a program.  Helpers locate common targets:
:func:`statement_path` (the i-th statement of a sequence spine) and
:func:`assignment_path` (the statement assigning a given variable).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, Tuple

from ..lang.ast import Assign, Node, Seq, Stmt

__all__ = [
    "Edit",
    "apply_edit",
    "subtree_at",
    "statement_path",
    "assignment_path",
    "statements",
    "replace_constant",
]

Path = Tuple[str, ...]


@dataclass(frozen=True)
class Edit:
    """Replace the subtree at ``path`` with ``replacement``."""

    path: Path
    replacement: Node

    def apply(self, program: Stmt) -> Stmt:
        return apply_edit(program, self.path, self.replacement)


def subtree_at(node: Node, path: Path) -> Node:
    """The subtree reached by following ``path`` from ``node``."""
    for name in path:
        if not hasattr(node, name):
            raise KeyError(f"node {type(node).__name__} has no field {name!r}")
        node = getattr(node, name)
        if not isinstance(node, Node):
            raise KeyError(f"path component {name!r} does not lead to an AST node")
    return node


def apply_edit(program: Stmt, path: Path, replacement: Node) -> Stmt:
    """Rebuild ``program`` with ``replacement`` at ``path``.

    All subtrees off the path are shared by reference with ``program``.
    """
    if not path:
        if not isinstance(replacement, type(program)) and not isinstance(replacement, Node):
            raise TypeError("replacement must be an AST node")
        return replacement  # type: ignore[return-value]
    head, rest = path[0], path[1:]
    child = subtree_at(program, (head,))
    rebuilt_child = apply_edit(child, rest, replacement)  # type: ignore[arg-type]
    return replace(program, **{head: rebuilt_child})


def statements(program: Stmt) -> Iterator[Tuple[Path, Stmt]]:
    """The statements of a right-nested sequence spine, with their paths."""
    path: Path = ()
    node: Stmt = program
    while isinstance(node, Seq):
        yield path + ("first",), node.first
        path = path + ("second",)
        node = node.second
    yield path, node


def statement_path(program: Stmt, index: int) -> Path:
    """Path to the ``index``-th statement of the top-level sequence."""
    for i, (path, _stmt) in enumerate(statements(program)):
        if i == index:
            return path
    raise IndexError(f"program has fewer than {index + 1} statements")


def assignment_path(program: Stmt, name: str) -> Path:
    """Path to the first top-level assignment to ``name``."""
    for path, stmt in statements(program):
        if isinstance(stmt, Assign) and stmt.name == name:
            return path
    raise KeyError(f"no top-level assignment to {name!r}")


def replace_constant(program: Stmt, name: str, value) -> Stmt:
    """Edit ``name = <const>;`` to ``name = value;`` (e.g. Figure 7's
    ``a = 1`` -> ``a = 2``, or the GMM's hyper-parameter change)."""
    from ..lang.ast import Const

    path = assignment_path(program, name)
    assignment = subtree_at(program, path)
    assert isinstance(assignment, Assign)
    return apply_edit(program, path + ("expr",), Const(value))
