"""The incremental execution engine (Section 6).

Two entry points:

* :func:`run_initial` executes a program while recording the dependency
  structure ``G_t`` of Figure 7: per-statement records with external
  reads (variable versions consumed), writes (versions produced), and
  the random choices / observations made.

* :func:`propagate` re-executes an *edited* program against an old
  :class:`~repro.graph.records.GraphTrace`, visiting only statements
  whose code or inputs changed.  A statement whose AST subtree is
  unchanged and whose external reads carry the same versions as before
  is **skipped** in time proportional to its read/write set: its record
  (including all random choices below it) is shared with the new trace.

Change propagation implements the paper's two key behaviours:

* a re-executed random choice whose address exists in the old trace
  (the syntactic correspondence induced by the edit) *reuses* the old
  value and contributes the factor ``p_Q(u_i) / p_P(t_i)`` to the
  weight estimate — and because the reused value is unchanged, an
  assignment that receives it keeps its old version, so the change does
  not propagate further (Figure 7: ``b = flip(a/3)`` reuses ``b -> 1``
  and ``d = flip(b/2)`` is never revisited);

* observations visited during propagation contribute
  ``p_Q(obs)`` to the numerator and, when they replace an old
  observation, ``p_P(obs)`` to the denominator; observations deleted by
  the edit contribute their old probability to the denominator
  (Section 6, "Efficient Weight Estimate Evaluation").  All other
  factors cancel, exactly as in Equation 8.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..core.trace import ChoiceRecord, ObservationRecord
from ..distributions import Distribution
from ..errors import NumericalError
from ..lang.ast import (
    ArrayExpr,
    Assign,
    Binary,
    Const,
    Expr,
    For,
    If,
    Index,
    IndexAssign,
    Observe,
    RandomExpr,
    Return,
    Seq,
    Skip,
    Stmt,
    Ternary,
    Unary,
    Var,
    While,
)
from ..lang.interp import EvalError, choice_address, distribution_of
from ..observability import NULL_METRICS, NULL_TRACER, MetricsRegistry, Tracer
from .records import GraphTrace, StmtRecord

__all__ = ["run_initial", "propagate", "PropagationResult", "visited_top_level"]


def _truthy(value: Any) -> bool:
    return value != 0


@dataclass
class _Frame:
    """One statement record under construction."""

    record: StmtRecord
    old: Optional[StmtRecord]
    shadowed: set = field(default_factory=set)


@dataclass
class PropagationResult:
    """Output of one incremental run."""

    trace: GraphTrace
    log_weight: float
    #: Statements re-executed (the paper's propagation work measure).
    visited_statements: int
    #: Statements skipped by the unchanged-inputs test.
    skipped_statements: int


class _Engine:
    """Shared machinery of the initial and incremental runs."""

    def __init__(
        self,
        rng: Optional[np.random.Generator],
        env_in: Dict[str, Tuple[Any, int]],
        next_version: int,
    ):
        self._rng = rng
        self.env: Dict[str, Tuple[Any, int]] = dict(env_in)
        self.env_in = dict(env_in)
        self._frames: List[_Frame] = []
        self._loop_indices: List[int] = []
        self._next_version = next_version
        self.log_weight = 0.0
        self.visited = 0
        self.skipped = 0

    # -- versions -----------------------------------------------------------

    def _fresh_version(self) -> int:
        self._next_version += 1
        return self._next_version

    @property
    def next_version(self) -> int:
        return self._next_version

    # -- environment with read/write registration ------------------------------

    def _read(self, name: str) -> Any:
        if name not in self.env:
            raise EvalError(f"unbound variable {name!r}")
        value, version = self.env[name]
        self._register_read(name, version)
        return value

    def _register_read(self, name: str, version: int) -> None:
        for frame in reversed(self._frames):
            if name in frame.shadowed:
                break  # internal to this frame and every enclosing one
            frame.record.reads.setdefault(name, version)

    def _write(self, name: str, value: Any, version: int) -> None:
        self.env[name] = (value, version)
        for frame in self._frames:
            frame.shadowed.add(name)
            frame.record.writes[name] = (value, version)

    def _version_for_write(self, name: str, value: Any, old: Optional[StmtRecord]) -> int:
        """Reuse the old version when the written value is unchanged.

        This is what stops change propagation at unchanged values: a
        downstream statement whose reads all carry old versions skips.
        """
        if old is not None and name in old.writes:
            old_value, old_version = old.writes[name]
            if old_value == value:
                return old_version
        return self._fresh_version()

    # -- random choices and observations ----------------------------------------

    def _sample(self, dist: Distribution, address: Tuple, old: Optional[StmtRecord]) -> Any:
        frame_record = self._frames[-1].record
        old_choice = old.choices.get(address) if old is not None else None
        if old_choice is not None and dist.support() == old_choice.dist.support():
            value = old_choice.value
            log_prob = dist.log_prob(value)
            # Weight factor for a reused corresponding choice (Eq. 8):
            # p_Q(u_i) in the numerator, p_P(t_{f(i)}) in the denominator.
            self.log_weight += log_prob - old_choice.log_prob
        else:
            if self._rng is None:
                raise EvalError(
                    f"fresh random choice at {address!r} requires a random source"
                )
            value = dist.sample(self._rng)
            log_prob = dist.log_prob(value)
            # Freshly sampled: the forward-kernel factor cancels with the
            # trace-probability factor, so no weight contribution.
        frame_record.choices[address] = ChoiceRecord(address, dist, value, log_prob)
        return value

    def _observe(
        self, dist: Distribution, value: Any, address: Tuple, old: Optional[StmtRecord]
    ) -> None:
        frame_record = self._frames[-1].record
        log_prob = dist.log_prob(value)
        self.log_weight += log_prob
        if old is not None and address in old.observations:
            self.log_weight -= old.observations[address].log_prob
        frame_record.observations[address] = ObservationRecord(address, dist, value, log_prob)

    # -- expression evaluation -----------------------------------------------------

    def _eval(self, expr: Expr, old: Optional[StmtRecord]) -> Any:
        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, Var):
            return self._read(expr.name)
        if isinstance(expr, Unary):
            operand = self._eval(expr.operand, old)
            if expr.op == "-":
                return -operand
            if expr.op == "!":
                return 0 if _truthy(operand) else 1
            raise EvalError(f"unknown unary operator {expr.op!r}")
        if isinstance(expr, Binary):
            return self._eval_binary(expr, old)
        if isinstance(expr, Ternary):
            if _truthy(self._eval(expr.cond, old)):
                return self._eval(expr.then, old)
            return self._eval(expr.otherwise, old)
        if isinstance(expr, Index):
            array = self._eval(expr.array, old)
            index = int(self._eval(expr.index, old))
            if not isinstance(array, list):
                raise EvalError(f"indexing a non-array value {array!r}")
            if not 0 <= index < len(array):
                raise EvalError(f"index {index} out of bounds for array of size {len(array)}")
            return array[index]
        if isinstance(expr, ArrayExpr):
            size = int(self._eval(expr.size, old))
            if size < 0:
                raise EvalError(f"negative array size {size}")
            fill = self._eval(expr.fill, old)
            return [fill] * size
        if isinstance(expr, RandomExpr):
            dist = distribution_of(expr, lambda sub: self._eval(sub, old))
            address = choice_address(expr.label, tuple(self._loop_indices))
            return self._sample(dist, address, old)
        raise EvalError(f"unknown expression {expr!r}")

    def _eval_binary(self, expr: Binary, old: Optional[StmtRecord]) -> Any:
        op = expr.op
        if op == "&&":
            if not _truthy(self._eval(expr.left, old)):
                return 0
            return 1 if _truthy(self._eval(expr.right, old)) else 0
        if op == "||":
            if _truthy(self._eval(expr.left, old)):
                return 1
            return 1 if _truthy(self._eval(expr.right, old)) else 0
        left = self._eval(expr.left, old)
        right = self._eval(expr.right, old)
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise EvalError("division by zero")
            return left / right
        if op == "==":
            return 1 if left == right else 0
        if op == "!=":
            return 1 if left != right else 0
        if op == "<":
            return 1 if left < right else 0
        if op == "<=":
            return 1 if left <= right else 0
        if op == ">":
            return 1 if left > right else 0
        if op == ">=":
            return 1 if left >= right else 0
        raise EvalError(f"unknown binary operator {op!r}")

    # -- statement execution with skipping -------------------------------------------

    def _can_skip(self, stmt: Stmt, old: Optional[StmtRecord]) -> bool:
        if old is None:
            return False
        if old.stmt is not stmt and old.stmt != stmt:
            return False
        for name, version in old.reads.items():
            binding = self.env.get(name)
            if binding is None or binding[1] != version:
                return False
        return True

    def _replay_skipped(self, old: StmtRecord) -> None:
        """Adopt a skipped record: register its reads, apply its writes."""
        self.skipped += 1
        for name, version in old.reads.items():
            self._register_read(name, version)
        for name, (value, version) in old.writes.items():
            self._write(name, value, version)

    def _exec(self, stmt: Stmt, old: Optional[StmtRecord]) -> StmtRecord:
        if self._can_skip(stmt, old):
            self._replay_skipped(old)
            return old  # shared, immutable

        self.visited += 1
        record = StmtRecord(stmt=stmt)
        frame = _Frame(record, old)
        self._frames.append(frame)
        try:
            self._dispatch(stmt, record, old)
        finally:
            self._frames.pop()

        if old is not None:
            # Observations that existed here before but were not re-created
            # were removed by the edit: factor them into the denominator.
            for address, observation in old.observations.items():
                if address not in record.observations:
                    self.log_weight -= observation.log_prob
            # Entire child subtrees that disappeared (branch flips, loops
            # that shrank) remove their observations too; their choices
            # cancel against the backward kernel and contribute nothing.
            for key, old_child in old.children.items():
                if key not in record.children:
                    self.log_weight -= old_child.subtree_obs_log_prob

        record.finalize()
        return record

    def _exec_child(self, record: StmtRecord, key: Any, stmt: Stmt, old: Optional[StmtRecord]) -> StmtRecord:
        old_child = old.children.get(key) if old is not None else None
        child = self._exec(stmt, old_child)
        record.children[key] = child
        if child.returned:
            record.returned = True
            record.return_value = child.return_value
        return child

    def _dispatch(self, stmt: Stmt, record: StmtRecord, old: Optional[StmtRecord]) -> None:
        if isinstance(stmt, Skip):
            return
        if isinstance(stmt, Assign):
            value = self._eval(stmt.expr, old)
            version = self._version_for_write(stmt.name, value, old)
            self._write(stmt.name, value, version)
            return
        if isinstance(stmt, IndexAssign):
            if stmt.name not in self.env:
                raise EvalError(f"unbound variable {stmt.name!r}")
            array = self._read(stmt.name)
            if not isinstance(array, list):
                raise EvalError(f"index-assigning a non-array variable {stmt.name!r}")
            index = int(self._eval(stmt.index, old))
            if not 0 <= index < len(array):
                raise EvalError(f"index {index} out of bounds for array of size {len(array)}")
            value = self._eval(stmt.expr, old)
            updated = list(array)
            updated[index] = value
            version = self._version_for_write(stmt.name, updated, old)
            self._write(stmt.name, updated, version)
            return
        if isinstance(stmt, Seq):
            first = self._exec_child(record, "first", stmt.first, old)
            if first.returned:
                return
            self._exec_child(record, "second", stmt.second, old)
            return
        if isinstance(stmt, If):
            branch = _truthy(self._eval(stmt.cond, old))
            body = stmt.then if branch else stmt.otherwise
            self._exec_child(record, ("branch", branch), body, old)
            return
        if isinstance(stmt, Observe):
            dist = distribution_of(stmt.random, lambda sub: self._eval(sub, old))
            value = self._eval(stmt.value, old)
            address = choice_address(stmt.random.label, tuple(self._loop_indices))
            self._observe(dist, value, address, old)
            return
        if isinstance(stmt, For):
            low = int(self._eval(stmt.low, old))
            high = int(self._eval(stmt.high, old))
            for i in range(low, high):
                version = self._loop_var_version(stmt.var, i, old, key=i)
                self._write(stmt.var, i, version)
                self._loop_indices.append(i)
                try:
                    child = self._exec_child(record, i, stmt.body, old)
                finally:
                    self._loop_indices.pop()
                if child.returned:
                    return
            return
        if isinstance(stmt, While):
            iteration = 0
            while True:
                self._loop_indices.append(iteration)
                try:
                    condition = _truthy(self._eval(stmt.cond, old))
                    if not condition:
                        break
                    child = self._exec_child(record, iteration, stmt.body, old)
                finally:
                    self._loop_indices.pop()
                if child.returned:
                    return
                iteration += 1
            return
        if isinstance(stmt, Return):
            record.returned = True
            record.return_value = self._eval(stmt.expr, old)
            return
        raise EvalError(f"unknown statement {stmt!r}")

    def _loop_var_version(
        self, var: str, value: int, old: Optional[StmtRecord], key: Any
    ) -> int:
        """Reuse the loop variable's old version for an aligned iteration.

        The old ``For`` record only stores the *final* loop-variable
        binding, so per-iteration versions are recovered from the aligned
        child's recorded reads (any read of the variable inside iteration
        ``key`` saw that iteration's version).
        """
        if old is not None:
            old_child = old.children.get(key)
            if old_child is not None and var in old_child.reads:
                return old_child.reads[var]
        return self._fresh_version()


def _stamp_env(
    env: Optional[Dict[str, Any]],
    old: Optional[GraphTrace],
    engine_versions_start: int,
) -> Tuple[Dict[str, Tuple[Any, int]], int]:
    """Assign version stamps to the initial environment.

    Parameters whose values match the old trace's inputs keep their old
    versions (their readers can skip); changed or new parameters get
    fresh versions.
    """
    stamped: Dict[str, Tuple[Any, int]] = {}
    next_version = engine_versions_start
    for name, value in (env or {}).items():
        old_binding = old.env_in.get(name) if old is not None else None
        if old_binding is not None and old_binding[0] == value:
            stamped[name] = (value, old_binding[1])
        else:
            next_version += 1
            stamped[name] = (value, next_version)
    return stamped, next_version


def run_initial(
    program: Stmt,
    rng: Optional[np.random.Generator] = None,
    env: Optional[Dict[str, Any]] = None,
    *,
    tracer: Tracer = NULL_TRACER,
    metrics: MetricsRegistry = NULL_METRICS,
) -> GraphTrace:
    """Execute ``program`` from scratch, recording its dependency graph."""
    env_in, next_version = _stamp_env(env, None, 0)
    engine = _Engine(rng, env_in, next_version)
    with tracer.span("graph.run_initial") as span:
        root = engine._exec(program, None)
        span.count("statements.visited", engine.visited)
    if metrics.enabled:
        metrics.counter("graph.initial_runs").inc()
        metrics.counter("graph.statements_visited").inc(engine.visited)
    return GraphTrace(root, engine.env_in, dict(engine.env), engine.next_version, engine.visited)


def propagate(
    program: Stmt,
    old: GraphTrace,
    rng: Optional[np.random.Generator] = None,
    env: Optional[Dict[str, Any]] = None,
    *,
    tracer: Tracer = NULL_TRACER,
    metrics: MetricsRegistry = NULL_METRICS,
) -> PropagationResult:
    """Incrementally re-execute an edited ``program`` against ``old``.

    ``env`` defaults to the old trace's input environment.  Returns the
    new trace and the log weight estimate of the induced trace
    translation (Section 6) — equal to what the baseline
    correspondence translator (Section 5) would compute for the same
    reuse decisions, but obtained by visiting only affected statements.
    """
    if env is None:
        env = {name: value for name, (value, _v) in old.env_in.items()}
    env_in, next_version = _stamp_env(env, old, old.next_version)
    engine = _Engine(rng, env_in, next_version)
    with tracer.span("graph.propagate") as span:
        root = engine._exec(program, old.root)
        span.count("statements.visited", engine.visited)
        span.count("statements.skipped", engine.skipped)
    if metrics.enabled:
        metrics.counter("graph.propagations").inc()
        metrics.counter("graph.statements_visited").inc(engine.visited)
        metrics.counter("graph.statements_skipped").inc(engine.skipped)
    trace = GraphTrace(root, engine.env_in, dict(engine.env), engine.next_version, engine.visited)
    if math.isnan(engine.log_weight):
        raise NumericalError(
            "change propagation produced a NaN weight estimate "
            f"(visited {engine.visited} statements)"
        )
    return PropagationResult(trace, engine.log_weight, engine.visited, engine.skipped)


def visited_top_level(
    program: Stmt, old: GraphTrace, new: GraphTrace
) -> List[bool]:
    """Which top-level statements were re-executed by a propagation.

    ``new`` must be the trace :func:`propagate` produced for ``program``
    against ``old``.  Skipped statements share their :class:`StmtRecord`
    *by identity* with the old trace (``_exec`` returns the old record
    unchanged), so a top-level statement was visited exactly when its
    record object is absent from the old record tree.  This is the
    runtime ground truth the edit-soundness pass of :mod:`repro.analysis`
    cross-checks against its statically derived invalidation set.
    """
    old_ids = set()
    stack = [old.root]
    while stack:
        record = stack.pop()
        if id(record) in old_ids:
            continue
        old_ids.add(id(record))
        stack.extend(record.children.values())

    def spine_length(node: Stmt) -> int:
        length = 1
        while isinstance(node, Seq):
            length += 1
            node = node.second
        return length

    visited: List[bool] = []
    node: Stmt = program
    record: Optional[StmtRecord] = new.root
    while isinstance(node, Seq):
        if record is None or id(record) in old_ids:
            # The whole remaining spine was reused from the old trace.
            visited.extend([False] * spine_length(node))
            return visited
        first = record.children.get("first")
        visited.append(first is not None and id(first) not in old_ids)
        node = node.second
        record = record.children.get("second")
    visited.append(record is not None and id(record) not in old_ids)
    return visited
