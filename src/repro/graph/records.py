"""Record structures of the dependency-tracking runtime (Section 6).

A :class:`GraphTrace` is the paper's graph data structure ``G_t``: every
statement occurrence evaluated during a run owns a :class:`StmtRecord`
holding

* the statement's AST (shared by reference with the program),
* its *external reads* — variable versions it consumed from outside,
* its *writes* — final variable versions it produced,
* the random choices and observations its directly evaluated
  expressions made, and
* child records for sub-statements, keyed so a later incremental run can
  align them (``"first"``/``"second"`` for sequences, the branch taken
  for conditionals, iteration indices for loops).

Records cache subtree aggregates (total choice/observation log
probability) so skipped subtrees contribute to the trace score in O(1).
Because unchanged subtrees are shared between the old and new traces,
the cost of an incremental run is proportional to the region affected by
the edit, not to the size of the trace — the asymptotic claim of
Figure 10.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Optional, Tuple

from ..core.trace import ChoiceRecord, ObservationRecord
from ..lang.ast import Stmt

__all__ = ["StmtRecord", "GraphTrace"]

Address = Tuple


@dataclass
class StmtRecord:
    """Execution record of one statement occurrence."""

    stmt: Stmt
    #: External reads: variable name -> version consumed.
    reads: Dict[str, int] = field(default_factory=dict)
    #: Final writes: variable name -> (value, version).
    writes: Dict[str, Tuple[Any, int]] = field(default_factory=dict)
    #: Random choices made by directly evaluated expressions.
    choices: Dict[Address, ChoiceRecord] = field(default_factory=dict)
    #: Observations discharged by this statement directly.
    observations: Dict[Address, ObservationRecord] = field(default_factory=dict)
    #: Aligned children: Seq -> "first"/"second"; If -> ("branch", bool);
    #: For/While -> iteration index.
    children: Dict[Any, "StmtRecord"] = field(default_factory=dict)
    #: Set when a ``return`` fired inside this record.
    returned: bool = False
    return_value: Any = None
    #: Cached subtree aggregates (direct + children).
    subtree_choice_log_prob: float = 0.0
    subtree_obs_log_prob: float = 0.0
    subtree_num_choices: int = 0

    def finalize(self) -> None:
        """Recompute subtree aggregates from direct entries and children."""
        choice_sum = math.fsum(r.log_prob for r in self.choices.values())
        obs_sum = math.fsum(r.log_prob for r in self.observations.values())
        count = len(self.choices)
        for child in self.children.values():
            choice_sum += child.subtree_choice_log_prob
            obs_sum += child.subtree_obs_log_prob
            count += child.subtree_num_choices
        self.subtree_choice_log_prob = choice_sum
        self.subtree_obs_log_prob = obs_sum
        self.subtree_num_choices = count

    def iter_choices(self) -> Iterator[ChoiceRecord]:
        """All choice records in the subtree (O(subtree))."""
        yield from self.choices.values()
        for child in self.children.values():
            yield from child.iter_choices()

    def iter_observations(self) -> Iterator[ObservationRecord]:
        yield from self.observations.values()
        for child in self.children.values():
            yield from child.iter_observations()

    def find_choice(self, address: Address) -> Optional[ChoiceRecord]:
        """Search the subtree for a choice record (O(subtree); used by
        tests and estimation, not by the propagation fast path)."""
        if address in self.choices:
            return self.choices[address]
        for child in self.children.values():
            found = child.find_choice(address)
            if found is not None:
                return found
        return None


class GraphTrace:
    """A trace represented as a dependency-record tree (``G_t``)."""

    def __init__(
        self,
        root: StmtRecord,
        env_in: Dict[str, Tuple[Any, int]],
        env_out: Dict[str, Tuple[Any, int]],
        next_version: int,
        visited_statements: int,
    ):
        self.root = root
        #: Initial environment with version stamps (program parameters).
        self.env_in = env_in
        #: Final environment with version stamps.
        self.env_out = env_out
        #: Version counter to continue from in the next incremental run.
        self.next_version = next_version
        #: Number of statement records (re-)executed to build this trace —
        #: the work measure plotted in Figure 10.
        self.visited_statements = visited_statements

    @property
    def return_value(self) -> Any:
        if self.root.returned:
            return self.root.return_value
        return {name: value for name, (value, _version) in self.env_out.items()}

    @property
    def log_prob(self) -> float:
        """``log P̃r[t ~ P]`` — subtree choices plus observations."""
        return self.root.subtree_choice_log_prob + self.root.subtree_obs_log_prob

    @property
    def choice_log_prob(self) -> float:
        return self.root.subtree_choice_log_prob

    @property
    def observation_log_prob(self) -> float:
        return self.root.subtree_obs_log_prob

    def __len__(self) -> int:
        return self.root.subtree_num_choices

    def __contains__(self, address) -> bool:
        return self.root.find_choice(tuple(address) if isinstance(address, tuple) else (address,)) is not None

    def __getitem__(self, address) -> Any:
        record = self.root.find_choice(
            tuple(address) if isinstance(address, tuple) else (address,)
        )
        if record is None:
            raise KeyError(address)
        return record.value

    def choices(self) -> Dict[Address, ChoiceRecord]:
        """All choices as a flat map (O(trace); for tests/estimation)."""
        return {record.address: record for record in self.root.iter_choices()}

    def observations(self) -> Dict[Address, ObservationRecord]:
        return {record.address: record for record in self.root.iter_observations()}

    def __repr__(self) -> str:
        return (
            f"GraphTrace(choices={len(self)}, log_prob={self.log_prob:.4f}, "
            f"visited={self.visited_statements})"
        )
