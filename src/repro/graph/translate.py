"""Optimized trace translation via dependency tracking (Section 6).

:class:`GraphTranslator` is the Section 6 counterpart of
:class:`~repro.core.corr_translator.CorrespondenceTranslator`: both
implement Algorithm 1 for the syntactic correspondence induced by a
program edit, but the graph translator performs a *partial execution* of
the new program by change propagation, so its cost scales with the
region affected by the edit instead of with the trace size (the O(K) vs
O(N + K) contrast of Figure 10).

:func:`baseline_lang_translator` builds the Section 5 baseline for the
same pair of structured-language programs: a full re-execution
translator over the embedded bridge, using the label correspondence
recovered by the tree diff.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from ..core.corr_translator import CorrespondenceTranslator
from ..core.model import Model
from ..core.trace import ChoiceMap
from ..core.translator import TraceTranslator, TranslationResult
from ..lang.ast import Stmt
from ..lang.interp import lang_model
from .diff import diff_correspondence
from .engine import propagate, run_initial
from .records import GraphTrace

__all__ = ["GraphTranslator", "baseline_lang_translator", "graph_trace_to_choice_map"]


class GraphTranslator(TraceTranslator[GraphTrace]):
    """Trace translator for a program edit, via incremental propagation.

    Parameters
    ----------
    source_program / target_program:
        The old and new structured-language programs.  The target should
        share unchanged subtrees with the source (apply the edit with
        :mod:`repro.graph.edits`); the engine also accepts structurally
        equal subtrees from independent parses, at the cost of deep
        comparisons along re-executed paths.
    source_env / target_env:
        Initial environments (program parameters).  ``target_env``
        defaults to the source trace's environment, so a pure code edit
        needs no environment plumbing; an environment-only change (e.g.
        new data) is itself a valid edit.
    """

    def __init__(
        self,
        source_program: Stmt,
        target_program: Stmt,
        source_env: Optional[Dict[str, Any]] = None,
        target_env: Optional[Dict[str, Any]] = None,
    ):
        self._source_program = source_program
        self._target_program = target_program
        self.source_env = dict(source_env) if source_env else {}
        self.target_env = dict(target_env) if target_env is not None else None
        self.last_result = None  # PropagationResult of the latest translate

    @property
    def source(self) -> Stmt:
        return self._source_program

    @property
    def target(self) -> Stmt:
        return self._target_program

    def initial_trace(self, rng: np.random.Generator) -> GraphTrace:
        """Run the source program from scratch, recording ``G_t``."""
        return run_initial(self._source_program, rng, self.source_env)

    def regenerate(self, rng: np.random.Generator):
        """Importance-sample a fresh target trace from the prior.

        Fallback for the ``regenerate`` fault policy of
        :func:`repro.core.smc.infer`: a from-scratch run of the target
        program weighted by its observation likelihood is a properly
        weighted importance sample for the target posterior.  Returns
        ``(trace, log_weight)``.
        """
        env = self.target_env if self.target_env is not None else self.source_env
        trace = run_initial(self._target_program, rng, env)
        return trace, trace.observation_log_prob

    def translate(self, rng: np.random.Generator, trace: GraphTrace) -> TranslationResult:
        result = propagate(
            self._target_program,
            trace,
            rng,
            env=self.target_env,
            tracer=self.tracer,
            metrics=self.metrics,
        )
        self.last_result = result
        components = {
            "visited_statements": result.visited_statements,
            "skipped_statements": result.skipped_statements,
            "target_log_prob": result.trace.log_prob,
            "source_log_prob": trace.log_prob,
        }
        return TranslationResult(result.trace, result.log_weight, components)


def graph_trace_to_choice_map(trace: GraphTrace) -> ChoiceMap:
    """Flatten a graph trace into an address -> value map (O(trace))."""
    return ChoiceMap({address: record.value for address, record in trace.choices().items()})


def baseline_lang_translator(
    source_program: Stmt,
    target_program: Stmt,
    source_env: Optional[Dict[str, Any]] = None,
    target_env: Optional[Dict[str, Any]] = None,
) -> CorrespondenceTranslator:
    """The Section 5 baseline translator for two structured programs.

    Uses the tree-diff label correspondence and the embedded-PPL bridge;
    every translation fully re-executes both programs, visiting every
    element of the trace (O(N + K) for the GMM of Figure 10).
    """
    source = lang_model(source_program, env=source_env, name="source")
    target = lang_model(
        target_program,
        env=target_env if target_env is not None else source_env,
        name="target",
    )
    correspondence = diff_correspondence(source_program, target_program)
    return CorrespondenceTranslator(source, target, correspondence)
