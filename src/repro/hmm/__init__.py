"""Hidden Markov model substrate for the typo-correction experiment
(Section 7.3): model parameterizations, exact first-order inference
(forward algorithm / FFBS), exact second-order marginals for validation,
supervised training, the probabilistic programs of Listings 3-4, and the
synthetic typo corpus.
"""

from .forward import (
    ffbs_sample,
    forward_filter,
    log_likelihood,
    posterior_marginals,
    second_order_ffbs_sample,
    second_order_log_likelihood,
    second_order_posterior_marginals,
)
from .model import FirstOrderParams, SecondOrderParams
from .programs import (
    exact_first_order_trace,
    first_order_model,
    ground_truth_posterior_probability,
    hidden_sequence,
    hidden_state_correspondence,
    log_ground_truth_probability,
    second_order_model,
)
from .train import train_first_order, train_observation_model, train_second_order
from .viterbi import viterbi, viterbi_second_order
from .typos import (
    ALPHABET,
    NUM_CHARS,
    QWERTY_NEIGHBOURS,
    TypoChannel,
    TypoCorpus,
    decode,
    encode,
    generate_corpus,
)

__all__ = [
    "FirstOrderParams",
    "SecondOrderParams",
    "forward_filter",
    "log_likelihood",
    "ffbs_sample",
    "posterior_marginals",
    "second_order_log_likelihood",
    "second_order_posterior_marginals",
    "second_order_ffbs_sample",
    "viterbi",
    "viterbi_second_order",
    "train_first_order",
    "train_second_order",
    "train_observation_model",
    "first_order_model",
    "second_order_model",
    "hidden_state_correspondence",
    "exact_first_order_trace",
    "hidden_sequence",
    "ground_truth_posterior_probability",
    "log_ground_truth_probability",
    "ALPHABET",
    "NUM_CHARS",
    "QWERTY_NEIGHBOURS",
    "TypoChannel",
    "TypoCorpus",
    "encode",
    "decode",
    "generate_corpus",
]
