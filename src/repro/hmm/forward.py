"""Forward filtering, backward sampling, and exact marginals.

The first-order algorithms are the "dynamic programming" exact inference
the paper uses to obtain posterior samples of ``P`` (Section 7.3);
forward-filtering backward-sampling (FFBS) draws i.i.d. exact samples of
the hidden sequence given the observations.

A pair-state dynamic program over the *second-order* model provides
exact marginals for the experiment's ground-truth metric and for
validating the Gibbs and incremental samplers on small instances.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from .model import FirstOrderParams, SecondOrderParams

__all__ = [
    "forward_filter",
    "log_likelihood",
    "ffbs_sample",
    "posterior_marginals",
    "second_order_log_likelihood",
    "second_order_posterior_marginals",
    "second_order_ffbs_sample",
]


def _logsumexp(values: np.ndarray, axis=None) -> np.ndarray:
    high = np.max(values, axis=axis, keepdims=True)
    high = np.where(np.isfinite(high), high, 0.0)
    out = np.log(np.sum(np.exp(values - high), axis=axis, keepdims=True)) + high
    return np.squeeze(out, axis=axis) if axis is not None else float(out)


def forward_filter(
    params: FirstOrderParams, observations: Sequence[int]
) -> Tuple[np.ndarray, float]:
    """Forward algorithm in log space.

    Returns ``(alphas, log_likelihood)`` where ``alphas[i, s]`` is the
    joint ``log P(y_1..y_i, x_i = s)``.
    """
    observations = list(observations)
    if not observations:
        raise ValueError("observation sequence must be non-empty")
    length = len(observations)
    alphas = np.zeros((length, params.num_states))
    alphas[0] = params.log_initial + params.log_observation[:, observations[0]]
    for i in range(1, length):
        # alpha[i, s'] = logsum_s alpha[i-1, s] + T[s, s'] + O[s', y_i]
        alphas[i] = (
            _logsumexp(alphas[i - 1][:, None] + params.log_transition, axis=0)
            + params.log_observation[:, observations[i]]
        )
    return alphas, float(_logsumexp(alphas[-1], axis=0))


def log_likelihood(params: FirstOrderParams, observations: Sequence[int]) -> float:
    """``log P(y_1..y_L)`` under the first-order model."""
    _alphas, total = forward_filter(params, observations)
    return total


def ffbs_sample(
    params: FirstOrderParams,
    observations: Sequence[int],
    rng: np.random.Generator,
) -> List[int]:
    """One exact posterior sample of the hidden sequence (FFBS)."""
    alphas, _total = forward_filter(params, observations)
    length = alphas.shape[0]
    states = [0] * length
    log_final = alphas[-1] - _logsumexp(alphas[-1], axis=0)
    states[-1] = int(rng.choice(params.num_states, p=np.exp(log_final)))
    for i in range(length - 2, -1, -1):
        log_cond = alphas[i] + params.log_transition[:, states[i + 1]]
        log_cond = log_cond - _logsumexp(log_cond, axis=0)
        states[i] = int(rng.choice(params.num_states, p=np.exp(log_cond)))
    return states


def posterior_marginals(
    params: FirstOrderParams, observations: Sequence[int]
) -> np.ndarray:
    """Exact smoothing marginals ``P(x_i = s | y_1..y_L)`` (forward-backward)."""
    observations = list(observations)
    alphas, total = forward_filter(params, observations)
    length = len(observations)
    betas = np.zeros((length, params.num_states))
    for i in range(length - 2, -1, -1):
        betas[i] = _logsumexp(
            params.log_transition
            + params.log_observation[:, observations[i + 1]][None, :]
            + betas[i + 1][None, :],
            axis=1,
        )
    log_marginals = alphas + betas - total
    return np.exp(log_marginals)


# -- exact second-order inference over pair states ----------------------------------


def _second_order_forward(
    params: SecondOrderParams, observations: Sequence[int]
) -> Tuple[np.ndarray, float]:
    """Forward DP over pair states ``(x_{i-1}, x_i)``.

    ``alphas[i, a, b] = log P(y_1..y_i, x_{i-1} = a, x_i = b)`` for
    ``i >= 1``; sequences of length one fall back to the initial model.
    """
    observations = list(observations)
    length = len(observations)
    num_states = params.num_states
    if length == 1:
        single = params.log_initial + params.log_observation[:, observations[0]]
        return single[None, :, None], float(_logsumexp(single, axis=0))
    alphas = np.full((length, num_states, num_states), -np.inf)
    alphas[1] = (
        params.log_initial[:, None]
        + params.log_observation[:, observations[0]][:, None]
        + params.log_first_transition
        + params.log_observation[:, observations[1]][None, :]
    )
    for i in range(2, length):
        # alpha[i, b, c] = logsum_a alpha[i-1, a, b] + T2[a, b, c] + O[c, y_i]
        alphas[i] = (
            _logsumexp(alphas[i - 1][:, :, None] + params.log_transition, axis=0)
            + params.log_observation[:, observations[i]][None, :]
        )
    return alphas, float(_logsumexp(alphas[-1], axis=(0, 1)))


def second_order_log_likelihood(
    params: SecondOrderParams, observations: Sequence[int]
) -> float:
    """``log P(y_1..y_L)`` under the second-order model."""
    _alphas, total = _second_order_forward(params, observations)
    return total


def second_order_posterior_marginals(
    params: SecondOrderParams, observations: Sequence[int]
) -> np.ndarray:
    """Exact smoothing marginals under the second-order model.

    Runs forward-backward over pair states; O(L * S^3).  Used as ground
    truth for the experiment metric and for validating approximate
    samplers on small instances.
    """
    observations = list(observations)
    length = len(observations)
    num_states = params.num_states
    if length == 1:
        single = params.log_initial + params.log_observation[:, observations[0]]
        single = single - _logsumexp(single, axis=0)
        return np.exp(single)[None, :]

    alphas, total = _second_order_forward(params, observations)
    betas = np.zeros((length, num_states, num_states))
    for i in range(length - 2, 0, -1):
        # beta[i, a, b] = logsum_c T2[a, b, c] + O[c, y_{i+1}] + beta[i+1, b, c]
        betas[i] = _logsumexp(
            params.log_transition
            + params.log_observation[:, observations[i + 1]][None, None, :]
            + betas[i + 1][None, :, :],
            axis=2,
        )

    marginals = np.zeros((length, num_states))
    for i in range(1, length):
        log_joint = alphas[i] + betas[i] - total
        marginals[i] = np.exp(_logsumexp(log_joint, axis=0))
    # Position 0's marginal from the pair at position 1.
    log_joint1 = alphas[1] + betas[1] - total
    marginals[0] = np.exp(_logsumexp(log_joint1, axis=1))
    return marginals


def second_order_ffbs_sample(
    params: SecondOrderParams,
    observations: Sequence[int],
    rng: np.random.Generator,
) -> List[int]:
    """One exact posterior sample of the hidden sequence under the
    *second-order* model, by FFBS over pair states.

    O(L * S^3) like the marginals; used as the exact reference for the
    typo-correction experiment and to validate the approximate samplers.
    """
    observations = list(observations)
    length = len(observations)
    num_states = params.num_states
    if length == 1:
        single = params.log_initial + params.log_observation[:, observations[0]]
        probs = np.exp(single - _logsumexp(single, axis=0))
        return [int(rng.choice(num_states, p=probs / probs.sum()))]

    alphas, _total = _second_order_forward(params, observations)

    # Sample the final pair (x_{L-2}, x_{L-1}).
    flat = alphas[-1].reshape(-1)
    flat = np.exp(flat - _logsumexp(flat, axis=0))
    flat = flat / flat.sum()
    index = int(rng.choice(flat.shape[0], p=flat))
    previous, last = divmod(index, num_states)
    states = [0] * length
    states[-1] = last
    states[-2] = previous

    # Backwards: P(x_{i-2} = a | x_{i-1} = b, x_i = c, y_{1:i})
    #   ∝ alpha[i-1, a, b] + T2[a, b, c].
    for i in range(length - 1, 1, -1):
        b, c = states[i - 1], states[i]
        log_cond = alphas[i - 1][:, b] + params.log_transition[:, b, c]
        probs = np.exp(log_cond - _logsumexp(log_cond, axis=0))
        probs = probs / probs.sum()
        states[i - 2] = int(rng.choice(num_states, p=probs))
    return states
