"""Hidden Markov model parameterizations (Section 7.3).

The typo-correction experiment uses a first-order HMM ``P`` (exactly
solvable by dynamic programming) and a second-order HMM ``Q`` (whose
longer dependencies impede exact inference).  Parameters are stored as
log-probability matrices, matching the ``log_transition_model`` /
``log_observation_model`` fields of Listings 3-4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["FirstOrderParams", "SecondOrderParams", "validate_log_matrix"]


def validate_log_matrix(matrix: np.ndarray, name: str) -> np.ndarray:
    """Check that the last axis of ``matrix`` holds normalized log probs."""
    matrix = np.asarray(matrix, dtype=float)
    sums = np.exp(matrix).sum(axis=-1)
    if not np.allclose(sums, 1.0, atol=1e-8):
        raise ValueError(f"{name} rows must be normalized distributions")
    return matrix


@dataclass(frozen=True)
class FirstOrderParams:
    """First-order HMM: the model of Listing 3.

    Attributes
    ----------
    log_initial:
        ``(S,)`` log probabilities of the initial hidden state.  Listing 3
        uses a uniform initial state; :meth:`uniform_initial` builds one.
    log_transition:
        ``(S, S)``; ``log_transition[s, s']`` is ``log P(x_i = s' | x_{i-1} = s)``.
    log_observation:
        ``(S, O)``; ``log_observation[s, y]`` is ``log P(y_i = y | x_i = s)``.
    """

    log_initial: np.ndarray
    log_transition: np.ndarray
    log_observation: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "log_initial", validate_log_matrix(self.log_initial, "log_initial")
        )
        object.__setattr__(
            self, "log_transition", validate_log_matrix(self.log_transition, "log_transition")
        )
        object.__setattr__(
            self,
            "log_observation",
            validate_log_matrix(self.log_observation, "log_observation"),
        )
        if self.log_initial.ndim != 1:
            raise ValueError("log_initial must be a vector")
        num_states = self.num_states
        if self.log_transition.shape != (num_states, num_states):
            raise ValueError("log_transition must be (S, S)")
        if self.log_observation.shape[0] != num_states:
            raise ValueError("log_observation must be (S, O)")

    @property
    def num_states(self) -> int:
        return self.log_initial.shape[0]

    @property
    def num_observations(self) -> int:
        return self.log_observation.shape[1]

    @staticmethod
    def uniform_initial(num_states: int) -> np.ndarray:
        return np.full(num_states, -np.log(num_states))


@dataclass(frozen=True)
class SecondOrderParams:
    """Second-order HMM: the model of Listing 4.

    The first hidden state is uniform, the second uses a first-order
    transition, and subsequent states condition on the two previous
    states via ``log_transition[s_prev2, s_prev1, s]``.
    """

    log_initial: np.ndarray
    log_first_transition: np.ndarray
    log_transition: np.ndarray
    log_observation: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "log_initial", validate_log_matrix(self.log_initial, "log_initial")
        )
        object.__setattr__(
            self,
            "log_first_transition",
            validate_log_matrix(self.log_first_transition, "log_first_transition"),
        )
        object.__setattr__(
            self, "log_transition", validate_log_matrix(self.log_transition, "log_transition")
        )
        object.__setattr__(
            self,
            "log_observation",
            validate_log_matrix(self.log_observation, "log_observation"),
        )
        num_states = self.num_states
        if self.log_first_transition.shape != (num_states, num_states):
            raise ValueError("log_first_transition must be (S, S)")
        if self.log_transition.shape != (num_states, num_states, num_states):
            raise ValueError("log_transition must be (S, S, S)")
        if self.log_observation.shape[0] != num_states:
            raise ValueError("log_observation must be (S, O)")

    @property
    def num_states(self) -> int:
        return self.log_initial.shape[0]

    @property
    def num_observations(self) -> int:
        return self.log_observation.shape[1]

