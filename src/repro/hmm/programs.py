"""The HMM probabilistic programs of Listings 3-4, and experiment glue.

Hidden states live at addresses ``("hidden", i)`` and observations at
``("y", i)``, mirroring ``addr_hidden(i)`` / ``addr_y(i)`` in the paper.
Conditioning on a typed word constrains the ``("y", i)`` addresses
(observations are external constraints in the lightweight design,
Section 7.1).  The incremental-inference correspondence places each
hidden state in correspondence across the two programs —
:func:`hidden_state_correspondence` — exactly as in Section 7.3 ("we
placed each hidden state in correspondence ... there are no other
latent random choices in either P or Q").
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from ..core import Correspondence, Model, Trace, WeightedCollection
from ..distributions import LogCategorical
from .forward import ffbs_sample
from .model import FirstOrderParams, SecondOrderParams

__all__ = [
    "first_order_model",
    "second_order_model",
    "hidden_state_correspondence",
    "exact_first_order_trace",
    "hidden_sequence",
    "ground_truth_posterior_probability",
    "log_ground_truth_probability",
]


def _first_order_fn(t, params: FirstOrderParams, num_steps: int) -> List[int]:
    """Listing 3: first-order hidden Markov model."""
    states: List[int] = []
    if num_steps >= 1:
        states.append(t.sample(LogCategorical(params.log_initial), ("hidden", 0)))
    for i in range(1, num_steps):
        states.append(
            t.sample(LogCategorical(params.log_transition[states[i - 1]]), ("hidden", i))
        )
    for i in range(num_steps):
        t.sample(LogCategorical(params.log_observation[states[i]]), ("y", i))
    return states


def _second_order_fn(t, params: SecondOrderParams, num_steps: int) -> List[int]:
    """Listing 4: second-order hidden Markov model."""
    states: List[int] = []
    if num_steps >= 1:
        states.append(t.sample(LogCategorical(params.log_initial), ("hidden", 0)))
    if num_steps >= 2:
        states.append(
            t.sample(
                LogCategorical(params.log_first_transition[states[0]]), ("hidden", 1)
            )
        )
    for i in range(2, num_steps):
        states.append(
            t.sample(
                LogCategorical(params.log_transition[states[i - 2], states[i - 1]]),
                ("hidden", i),
            )
        )
    for i in range(num_steps):
        t.sample(LogCategorical(params.log_observation[states[i]]), ("y", i))
    return states


def _observation_map(observations: Sequence[int]):
    return {("y", i): int(obs) for i, obs in enumerate(observations)}


def first_order_model(
    params: FirstOrderParams, observations: Optional[Sequence[int]] = None
) -> Model:
    """The conditioned first-order program ``P``."""
    num_steps = len(observations) if observations is not None else 0
    model = Model(_first_order_fn, args=(params, num_steps), name="first_order_hmm")
    if observations is not None:
        model = model.condition(_observation_map(observations))
    return model


def second_order_model(
    params: SecondOrderParams, observations: Optional[Sequence[int]] = None
) -> Model:
    """The conditioned second-order program ``Q``."""
    num_steps = len(observations) if observations is not None else 0
    model = Model(_second_order_fn, args=(params, num_steps), name="second_order_hmm")
    if observations is not None:
        model = model.condition(_observation_map(observations))
    return model


def _is_hidden_address(address) -> bool:
    # Module-level (not a lambda) so the correspondence — and any
    # translator holding it — stays picklable for the process executor.
    return address[0] == "hidden"


def hidden_state_correspondence() -> Correspondence:
    """Identity correspondence over all ``("hidden", i)`` addresses."""
    return Correspondence.identity_by_predicate(_is_hidden_address)


def exact_first_order_trace(
    params: FirstOrderParams,
    observations: Sequence[int],
    rng: np.random.Generator,
    model: Optional[Model] = None,
) -> Trace:
    """One exact posterior trace of ``P`` via FFBS (Section 7.3's
    dynamic-programming exact sampler), materialized as a model trace."""
    states = ffbs_sample(params, observations, rng)
    if model is None:
        model = first_order_model(params, observations)
    return model.score({("hidden", i): s for i, s in enumerate(states)})


def hidden_sequence(trace: Trace) -> List[int]:
    """Extract the hidden state sequence from a trace."""
    states = []
    i = 0
    while ("hidden", i) in trace:
        states.append(trace[("hidden", i)])
        i += 1
    return states


def ground_truth_posterior_probability(
    collection: WeightedCollection, truth: Sequence[int]
) -> float:
    """Average per-character posterior probability of the ground truth.

    The Figure 9 accuracy metric: for each character position, the
    weighted fraction of traces whose hidden state equals the ground
    truth, averaged over positions.
    """
    truth = list(truth)
    if not truth:
        raise ValueError("ground truth sequence must be non-empty")
    per_character = [
        collection.estimate_probability(
            lambda trace, i=i: trace[("hidden", i)] == truth[i]
        )
        for i in range(len(truth))
    ]
    return float(np.mean(per_character))


def log_ground_truth_probability(
    collection: WeightedCollection, truth: Sequence[int], floor: float = 1e-6
) -> float:
    """Log of the average ground-truth posterior probability (Figure 9's
    y-axis).  Probabilities are floored to keep the log finite when no
    sampled trace matches a character."""
    return math.log(max(ground_truth_posterior_probability(collection, truth), floor))
