"""Supervised training of the typo-correction HMMs (Section 7.3).

The paper trains a first-order and a second-order hidden Markov model on
a corpus of words-with-typos and ground truth.  With supervision the
maximum-likelihood parameters are normalized counts; add-δ smoothing
keeps every transition and emission possible (so the support of each
hidden-state choice is the full alphabet, which is what makes the hidden
states of the two programs reuse-compatible in the trace translation).
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np

from .model import FirstOrderParams, SecondOrderParams
from .typos import NUM_CHARS, encode

__all__ = ["train_first_order", "train_second_order", "train_observation_model"]


def _normalize_log(counts: np.ndarray) -> np.ndarray:
    counts = np.asarray(counts, dtype=float)
    totals = counts.sum(axis=-1, keepdims=True)
    return np.log(counts / totals)


def train_observation_model(
    pairs: Iterable[Tuple[str, str]],
    num_states: int = NUM_CHARS,
    smoothing: float = 0.1,
) -> np.ndarray:
    """Emission model ``log P(typed | true)`` from aligned word pairs."""
    counts = np.full((num_states, num_states), smoothing)
    for typed, truth in pairs:
        if len(typed) != len(truth):
            raise ValueError(
                f"typed word {typed!r} and truth {truth!r} must have equal length"
            )
        for typed_char, true_char in zip(encode(typed), encode(truth)):
            counts[true_char, typed_char] += 1
    return _normalize_log(counts)


def train_first_order(
    pairs: Sequence[Tuple[str, str]],
    num_states: int = NUM_CHARS,
    smoothing: float = 0.1,
) -> FirstOrderParams:
    """First-order character HMM (the program ``P`` of Listing 3)."""
    initial = np.full(num_states, smoothing)
    transition = np.full((num_states, num_states), smoothing)
    for _typed, truth in pairs:
        chars = encode(truth)
        initial[chars[0]] += 1
        for previous, current in zip(chars, chars[1:]):
            transition[previous, current] += 1
    return FirstOrderParams(
        log_initial=_normalize_log(initial),
        log_transition=_normalize_log(transition),
        log_observation=train_observation_model(pairs, num_states, smoothing),
    )


def train_second_order(
    pairs: Sequence[Tuple[str, str]],
    num_states: int = NUM_CHARS,
    smoothing: float = 0.1,
) -> SecondOrderParams:
    """Second-order character HMM (the program ``Q`` of Listing 4)."""
    initial = np.full(num_states, smoothing)
    first_transition = np.full((num_states, num_states), smoothing)
    transition = np.full((num_states, num_states, num_states), smoothing)
    for _typed, truth in pairs:
        chars = encode(truth)
        initial[chars[0]] += 1
        if len(chars) >= 2:
            first_transition[chars[0], chars[1]] += 1
        for i in range(2, len(chars)):
            transition[chars[i - 2], chars[i - 1], chars[i]] += 1
    return SecondOrderParams(
        log_initial=_normalize_log(initial),
        log_first_transition=_normalize_log(first_transition),
        log_transition=_normalize_log(transition),
        log_observation=train_observation_model(pairs, num_states, smoothing),
    )
