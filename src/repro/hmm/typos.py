"""Synthetic typo corpus (substitute for the paper's 29,056-word set).

The paper trains on a proprietary corpus of words-with-typos and ground
truth.  We generate an equivalent synthetic corpus: true words are drawn
from a built-in list of common English words, and typed versions pass
each character through a QWERTY-adjacency noise channel (a typo replaces
a character with one of its keyboard neighbours, occasionally with a
uniformly random letter).  The channel exercises exactly the same code
paths: training a first- and second-order character HMM on
(typed, truth) pairs and correcting held-out typed words.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .wordlist import COMMON_WORDS

__all__ = [
    "ALPHABET",
    "NUM_CHARS",
    "QWERTY_NEIGHBOURS",
    "encode",
    "decode",
    "TypoChannel",
    "TypoCorpus",
    "generate_corpus",
]

ALPHABET = "abcdefghijklmnopqrstuvwxyz"
NUM_CHARS = len(ALPHABET)
_CHAR_TO_INDEX = {ch: i for i, ch in enumerate(ALPHABET)}

#: Physical adjacency on a QWERTY layout (same row and neighbouring rows).
QWERTY_NEIGHBOURS: Dict[str, str] = {
    "q": "wa",
    "w": "qeas",
    "e": "wrsd",
    "r": "etdf",
    "t": "ryfg",
    "y": "tugh",
    "u": "yihj",
    "i": "uojk",
    "o": "ipkl",
    "p": "ol",
    "a": "qwsz",
    "s": "awedxz",
    "d": "serfcx",
    "f": "drtgvc",
    "g": "ftyhbv",
    "h": "gyujnb",
    "j": "huikmn",
    "k": "jiolm",
    "l": "kop",
    "z": "asx",
    "x": "zsdc",
    "c": "xdfv",
    "v": "cfgb",
    "b": "vghn",
    "n": "bhjm",
    "m": "njk",
}


def encode(word: str) -> List[int]:
    """Word -> list of character indices (raises on non a-z characters)."""
    try:
        return [_CHAR_TO_INDEX[ch] for ch in word]
    except KeyError as error:
        raise ValueError(f"word {word!r} contains a non a-z character") from error


def decode(indices: Sequence[int]) -> str:
    """Character indices -> word."""
    return "".join(ALPHABET[i] for i in indices)


@dataclass(frozen=True)
class TypoChannel:
    """Noise channel that maps a true character to a typed character.

    With probability ``1 - typo_prob`` the character is typed correctly;
    otherwise, with probability ``neighbour_prob`` (given a typo) one of
    its QWERTY neighbours is typed, else a uniformly random letter.
    """

    typo_prob: float = 0.1
    neighbour_prob: float = 0.85

    def __post_init__(self) -> None:
        if not 0.0 <= self.typo_prob <= 1.0:
            raise ValueError("typo_prob must be in [0, 1]")
        if not 0.0 <= self.neighbour_prob <= 1.0:
            raise ValueError("neighbour_prob must be in [0, 1]")

    def corrupt(self, word: str, rng: np.random.Generator) -> str:
        typed = []
        for ch in word:
            if rng.random() < self.typo_prob:
                if rng.random() < self.neighbour_prob:
                    neighbours = QWERTY_NEIGHBOURS[ch]
                    typed.append(neighbours[rng.integers(len(neighbours))])
                else:
                    typed.append(ALPHABET[rng.integers(NUM_CHARS)])
            else:
                typed.append(ch)
        return "".join(typed)


@dataclass
class TypoCorpus:
    """Pairs of (typed word, true word), split into train and test."""

    train: List[Tuple[str, str]]
    test: List[Tuple[str, str]]

    @property
    def train_character_count(self) -> int:
        return sum(len(truth) for _typed, truth in self.train)


def generate_corpus(
    rng: np.random.Generator,
    num_train_words: int = 2000,
    num_test_words: int = 100,
    channel: TypoChannel = TypoChannel(),
    min_length: int = 3,
    max_length: int = 10,
) -> TypoCorpus:
    """Sample a corpus of typed/true word pairs from the built-in list."""
    words = [w for w in COMMON_WORDS if min_length <= len(w) <= max_length]
    if not words:
        raise ValueError("no words in the requested length range")

    def sample_pairs(count: int) -> List[Tuple[str, str]]:
        pairs = []
        for _ in range(count):
            truth = words[rng.integers(len(words))]
            pairs.append((channel.corrupt(truth, rng), truth))
        return pairs

    return TypoCorpus(train=sample_pairs(num_train_words), test=sample_pairs(num_test_words))
