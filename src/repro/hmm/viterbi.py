"""Viterbi decoding: most probable hidden sequences.

Used by the typo-correction example to produce a single best correction,
and as a deterministic reference point for the sampling-based methods.
Both the first-order and the second-order (pair-state) decoders are
provided.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from .model import FirstOrderParams, SecondOrderParams

__all__ = ["viterbi", "viterbi_second_order"]


def viterbi(
    params: FirstOrderParams, observations: Sequence[int]
) -> Tuple[List[int], float]:
    """MAP hidden sequence and its joint log probability (first order)."""
    observations = list(observations)
    if not observations:
        raise ValueError("observation sequence must be non-empty")
    length = len(observations)
    num_states = params.num_states

    scores = np.zeros((length, num_states))
    back = np.zeros((length, num_states), dtype=int)
    scores[0] = params.log_initial + params.log_observation[:, observations[0]]
    for i in range(1, length):
        candidate = scores[i - 1][:, None] + params.log_transition
        back[i] = np.argmax(candidate, axis=0)
        scores[i] = (
            np.max(candidate, axis=0) + params.log_observation[:, observations[i]]
        )

    path = [int(np.argmax(scores[-1]))]
    for i in range(length - 1, 0, -1):
        path.append(int(back[i, path[-1]]))
    path.reverse()
    return path, float(np.max(scores[-1]))


def viterbi_second_order(
    params: SecondOrderParams, observations: Sequence[int]
) -> Tuple[List[int], float]:
    """MAP hidden sequence under the second-order model.

    Dynamic program over pair states ``(x_{i-1}, x_i)``; O(L * S^3).
    """
    observations = list(observations)
    if not observations:
        raise ValueError("observation sequence must be non-empty")
    length = len(observations)
    num_states = params.num_states

    if length == 1:
        single = params.log_initial + params.log_observation[:, observations[0]]
        best = int(np.argmax(single))
        return [best], float(single[best])

    scores = np.full((length, num_states, num_states), -np.inf)
    back = np.zeros((length, num_states, num_states), dtype=int)
    scores[1] = (
        params.log_initial[:, None]
        + params.log_observation[:, observations[0]][:, None]
        + params.log_first_transition
        + params.log_observation[:, observations[1]][None, :]
    )
    for i in range(2, length):
        # candidate[a, b, c] = scores[i-1, a, b] + T2[a, b, c]
        candidate = scores[i - 1][:, :, None] + params.log_transition
        back[i] = np.argmax(candidate, axis=0)
        scores[i] = (
            np.max(candidate, axis=0)
            + params.log_observation[:, observations[i]][None, :]
        )

    flat = int(np.argmax(scores[-1]))
    prev, last = divmod(flat, num_states)
    path = [last, prev]
    for i in range(length - 1, 1, -1):
        prev2 = int(back[i, path[-1], path[-2]])
        path.append(prev2)
    path.reverse()
    return path, float(scores[-1, prev, last])
