"""The paper's structured probabilistic language (Section 3).

Concrete syntax, AST, big-step interpretation (bridged to the embedded
runtime, so all inference machinery applies), literal small-step
semantics (Figure 2), a pretty-printer, and static analyses.
"""

from .analysis import (
    assigned_variables,
    children,
    equal_modulo_labels,
    free_variables,
    random_expressions,
    random_labels,
    relabel,
    walk,
)
from .ast import (
    ArrayExpr,
    Call,
    FuncDef,
    Assign,
    Binary,
    Const,
    Expr,
    FlipExpr,
    For,
    GaussExpr,
    If,
    Index,
    IndexAssign,
    Node,
    Observe,
    RandomExpr,
    Return,
    Seq,
    Skip,
    Stmt,
    Ternary,
    Unary,
    UniformExpr,
    Var,
    While,
    seq,
)
from .check import Diagnostic, check_program
from .types import ARRAY, SCALAR, UNKNOWN, check_kinds
from .optimize import fold_constants, fold_expr
from .interp import EvalError, choice_address, distribution_of, interpret, lang_model
from .lexer import LexError, Token, tokenize
from .parser import ParseError, parse_expr, parse_program
from .pretty import pretty, pretty_expr
from .smallstep import (
    ChoiceSource,
    Config,
    RandomSource,
    ReplaySource,
    RunResult,
    Step,
    run,
    step,
)

__all__ = [
    # ast
    "Node",
    "Expr",
    "Const",
    "Var",
    "Unary",
    "Binary",
    "Ternary",
    "Index",
    "ArrayExpr",
    "RandomExpr",
    "FlipExpr",
    "UniformExpr",
    "GaussExpr",
    "Stmt",
    "Skip",
    "Assign",
    "IndexAssign",
    "Seq",
    "If",
    "Observe",
    "For",
    "While",
    "Return",
    "FuncDef",
    "Call",
    "seq",
    # lexer / parser
    "Token",
    "LexError",
    "tokenize",
    "ParseError",
    "parse_expr",
    "parse_program",
    # interpretation
    "EvalError",
    "interpret",
    "lang_model",
    "choice_address",
    "distribution_of",
    # small-step semantics
    "ChoiceSource",
    "RandomSource",
    "ReplaySource",
    "Config",
    "Step",
    "step",
    "run",
    "RunResult",
    # pretty-printing & analysis
    "pretty",
    "pretty_expr",
    "children",
    "walk",
    "random_expressions",
    "random_labels",
    "free_variables",
    "assigned_variables",
    "equal_modulo_labels",
    "relabel",
    "Diagnostic",
    "check_program",
    "check_kinds",
    "SCALAR",
    "ARRAY",
    "UNKNOWN",
    "fold_constants",
    "fold_expr",
]
