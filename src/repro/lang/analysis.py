"""Static analyses over the language AST.

Used by the edit/diff machinery (Section 6) and by tests:

* :func:`random_expressions` — collect every random expression with its
  label (the syntactic random choices ``F_P`` of a program);
* :func:`free_variables` / :func:`assigned_variables`;
* :func:`equal_modulo_labels` — structural AST equality ignoring
  random-expression labels (labels encode source positions, so
  pretty-print round-trips change them);
* :func:`relabel` — canonical relabeling for comparing programs.
"""

from __future__ import annotations

from dataclasses import fields, is_dataclass, replace
from typing import Dict, Iterator, List, Set

from .ast import (
    Assign,
    Call,
    Expr,
    For,
    FuncDef,
    IndexAssign,
    Node,
    Observe,
    RandomExpr,
    Var,
)

__all__ = [
    "children",
    "walk",
    "random_expressions",
    "free_variables",
    "assigned_variables",
    "equal_modulo_labels",
    "relabel",
]


def children(node: Node) -> List[Node]:
    """Direct AST children of ``node``, in field order.

    Tuple-valued fields (e.g. ``Call.args``) are flattened.
    """
    result: List[Node] = []
    for field_info in fields(node):
        value = getattr(node, field_info.name)
        if isinstance(value, Node):
            result.append(value)
        elif isinstance(value, tuple):
            result.extend(item for item in value if isinstance(item, Node))
    return result


def walk(node: Node) -> Iterator[Node]:
    """Pre-order traversal of the AST rooted at ``node``."""
    yield node
    for child in children(node):
        yield from walk(child)


def random_expressions(node: Node) -> List[RandomExpr]:
    """All random expressions in the program, in pre-order."""
    return [n for n in walk(node) if isinstance(n, RandomExpr)]


def random_labels(node: Node) -> List[str]:
    """Labels of all random expressions, in pre-order."""
    return [r.label for r in random_expressions(node)]


def assigned_variables(node: Node) -> Set[str]:
    """Variables assigned anywhere in the program (incl. loop variables)."""
    names: Set[str] = set()
    for n in walk(node):
        if isinstance(n, (Assign, IndexAssign)):
            names.add(n.name)
        elif isinstance(n, For):
            names.add(n.var)
    return names


def free_variables(node: Node) -> Set[str]:
    """Variables read before any assignment in the program.

    Computed by a conservative flow-insensitive pass refined with a
    straight-line prefix analysis: a variable is free if some read of it
    is not dominated by an assignment in the statement sequence.  For
    the language's structured control flow, a simple recursive
    definition suffices.
    """
    free: Set[str] = set()
    _free_stmt(node, set(), free)
    return free


def _free_expr(expr: Expr, bound: Set[str], free: Set[str]) -> None:
    for node in walk(expr):
        if isinstance(node, Var) and node.name not in bound:
            free.add(node.name)


def _free_stmt(stmt: Node, bound: Set[str], free: Set[str]) -> Set[str]:
    """Returns the set of variables definitely assigned by ``stmt``."""
    from .ast import If, Observe, Return, Seq, Skip, While

    if isinstance(stmt, Skip):
        return set()
    if isinstance(stmt, Assign):
        _free_expr(stmt.expr, bound, free)
        return {stmt.name}
    if isinstance(stmt, IndexAssign):
        if stmt.name not in bound:
            free.add(stmt.name)
        _free_expr(stmt.index, bound, free)
        _free_expr(stmt.expr, bound, free)
        return set()
    if isinstance(stmt, Seq):
        first_assigned = _free_stmt(stmt.first, bound, free)
        second_assigned = _free_stmt(stmt.second, bound | first_assigned, free)
        return first_assigned | second_assigned
    if isinstance(stmt, If):
        _free_expr(stmt.cond, bound, free)
        then_assigned = _free_stmt(stmt.then, set(bound), free)
        else_assigned = _free_stmt(stmt.otherwise, set(bound), free)
        return then_assigned & else_assigned
    if isinstance(stmt, Observe):
        _free_expr(stmt.random, bound, free)
        _free_expr(stmt.value, bound, free)
        return set()
    if isinstance(stmt, For):
        _free_expr(stmt.low, bound, free)
        _free_expr(stmt.high, bound, free)
        _free_stmt(stmt.body, bound | {stmt.var}, free)
        return set()
    if isinstance(stmt, While):
        _free_expr(stmt.cond, bound, free)
        _free_stmt(stmt.body, set(bound), free)
        return set()
    if isinstance(stmt, Return):
        _free_expr(stmt.expr, bound, free)
        return set()
    if isinstance(stmt, FuncDef):
        # The body runs in its own scope: only parameters are bound,
        # program variables are not visible.
        _free_stmt(stmt.body, set(stmt.params), free)
        return set()
    raise ValueError(f"unknown statement {stmt!r}")


def _strip_labels(node: Node) -> Node:
    """A copy of the AST with every position-derived label blanked
    (random expressions and call sites)."""
    if not is_dataclass(node):
        return node
    updates: Dict[str, object] = {}
    for field_info in fields(node):
        value = getattr(node, field_info.name)
        if isinstance(value, Node):
            updates[field_info.name] = _strip_labels(value)
        elif isinstance(value, tuple) and any(isinstance(item, Node) for item in value):
            updates[field_info.name] = tuple(
                _strip_labels(item) if isinstance(item, Node) else item
                for item in value
            )
    if isinstance(node, (RandomExpr, Call)):
        updates["label"] = ""
    return replace(node, **updates) if updates else node


def equal_modulo_labels(a: Node, b: Node) -> bool:
    """Structural equality ignoring random-expression labels."""
    return _strip_labels(a) == _strip_labels(b)


def relabel(node: Node, prefix: str = "r") -> Node:
    """Relabel random expressions as ``prefix0, prefix1, ...`` in pre-order.

    Canonical labels make programs built by different means (parsing vs
    direct construction) comparable and keep addresses stable across
    pretty-print round-trips.
    """
    counter = [0]

    def rewrite(n: Node) -> Node:
        if not is_dataclass(n):
            return n
        updates: Dict[str, object] = {}
        if isinstance(n, (RandomExpr, Call)):
            updates["label"] = f"{prefix}{counter[0]}"
            counter[0] += 1
        for field_info in fields(n):
            value = getattr(n, field_info.name)
            if isinstance(value, Node):
                updates[field_info.name] = rewrite(value)
            elif isinstance(value, tuple) and any(isinstance(item, Node) for item in value):
                updates[field_info.name] = tuple(
                    rewrite(item) if isinstance(item, Node) else item for item in value
                )
        return replace(n, **updates) if updates else n

    return rewrite(node)
