"""Abstract syntax for the paper's probabilistic language (Section 3).

The grammar follows the paper::

    E ::= v | x | ⊖E | E1 ⊕ E2 | R | E1 ? E2 : E3 | x[E] | array(E1, E2)
    R ::= flip(E) | uniform(E1, E2) | gauss(E1, E2)
    P ::= skip | x = E | x[E1] = E2 | P1; P2 | observe(R == E)
        | if E { P1 } else { P2 } | for x in [E1 .. E2) { P } | while E { P }
        | return E

with three extensions needed by the evaluation programs: the conditional
expression ``E1 ? E2 : E3`` (used by the burglary programs of Figure 1),
arrays with bounded ``for`` loops (used by the Gaussian mixture model of
Listing 5), and the continuous ``gauss`` random expression (idem).
``while`` supports the unbounded loops of Section 5.4 (Figure 6).

Every random expression node carries a *label* — its syntactic identity.
At run time a random choice is addressed by ``(label, loop_indices)``,
the loop-aware naming scheme of Section 5.4 / [44].  Labels are assigned
by the parser (stable across reparses of identical source) or explicitly
by programmatic AST construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

__all__ = [
    "Node",
    "Expr",
    "Const",
    "Var",
    "Unary",
    "Binary",
    "Ternary",
    "Index",
    "ArrayExpr",
    "RandomExpr",
    "FlipExpr",
    "UniformExpr",
    "GaussExpr",
    "Call",
    "Stmt",
    "Skip",
    "Assign",
    "IndexAssign",
    "Seq",
    "If",
    "Observe",
    "For",
    "While",
    "Return",
    "FuncDef",
    "seq",
]


@dataclass(frozen=True)
class Node:
    """Base class for all AST nodes.  Nodes are immutable values."""


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Expr(Node):
    pass


@dataclass(frozen=True)
class Const(Expr):
    """A rational (or float) constant ``v``."""

    value: float


@dataclass(frozen=True)
class Var(Expr):
    """A variable reference ``x``."""

    name: str


@dataclass(frozen=True)
class Unary(Expr):
    """Unary operation ``⊖E``; operators: ``-`` and ``!``."""

    op: str
    operand: Expr


@dataclass(frozen=True)
class Binary(Expr):
    """Binary operation ``E1 ⊕ E2``.

    Operators: arithmetic ``+ - * /``, comparisons ``< <= > >= == !=``,
    and short-circuiting booleans ``&& ||``.  Boolean values are encoded
    as rationals (0 is false, everything else is true), as in the paper.
    """

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Ternary(Expr):
    """Conditional expression ``E1 ? E2 : E3``."""

    cond: Expr
    then: Expr
    otherwise: Expr


@dataclass(frozen=True)
class Index(Expr):
    """Array indexing ``x[E]``."""

    array: Expr
    index: Expr


@dataclass(frozen=True)
class ArrayExpr(Expr):
    """``array(E1, E2)``: an array of ``E1`` copies of value ``E2``."""

    size: Expr
    fill: Expr


@dataclass(frozen=True)
class RandomExpr(Expr):
    """Base class of random expressions ``R``.

    ``label`` is the syntactic identity of the expression, used to
    address the random choices it produces (Section 5.4).
    """

    label: str


@dataclass(frozen=True)
class FlipExpr(RandomExpr):
    """``flip(E)``: 1 with probability ``E``, else 0."""

    prob: Expr = field(default=None)  # type: ignore[assignment]


@dataclass(frozen=True)
class UniformExpr(RandomExpr):
    """``uniform(E1, E2)``: an integer in ``[E1, E2]`` uniformly."""

    low: Expr = field(default=None)  # type: ignore[assignment]
    high: Expr = field(default=None)  # type: ignore[assignment]


@dataclass(frozen=True)
class GaussExpr(RandomExpr):
    """``gauss(E1, E2)``: a Gaussian with mean ``E1`` and std ``E2``."""

    mean: Expr = field(default=None)  # type: ignore[assignment]
    std: Expr = field(default=None)  # type: ignore[assignment]


@dataclass(frozen=True)
class Call(Expr):
    """A call ``f(E1, ..., En)`` to a user-defined function.

    Functions are the extension the paper notes "can be included if
    needed" (Section 3).  ``label`` identifies the call *site*; random
    choices made inside the callee are addressed by the path of call
    sites (plus loop indices) leading to them, so recursion and repeated
    calls get distinct addresses — the structural naming scheme of [44].
    """

    label: str
    name: str = ""
    args: Tuple[Expr, ...] = ()


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Stmt(Node):
    pass


@dataclass(frozen=True)
class Skip(Stmt):
    """``skip``: the terminated program."""


@dataclass(frozen=True)
class Assign(Stmt):
    """``x = E``."""

    name: str
    expr: Expr


@dataclass(frozen=True)
class IndexAssign(Stmt):
    """``x[E1] = E2``."""

    name: str
    index: Expr
    expr: Expr


@dataclass(frozen=True)
class Seq(Stmt):
    """``P1; P2``."""

    first: Stmt
    second: Stmt


@dataclass(frozen=True)
class If(Stmt):
    """``if E { P1 } else { P2 }``."""

    cond: Expr
    then: Stmt
    otherwise: Stmt


@dataclass(frozen=True)
class Observe(Stmt):
    """``observe(R == E)``: condition on the random expression's outcome.

    Only outcomes of random expressions can be observed (Section 3);
    this is enforced by construction, since ``random`` must be a
    :class:`RandomExpr`.
    """

    random: RandomExpr
    value: Expr


@dataclass(frozen=True)
class For(Stmt):
    """``for x in [E1 .. E2) { P }``: a bounded loop (PSI style).

    ``x`` ranges over the integers ``E1, E1+1, ..., E2-1``; random
    choices in the body are indexed by the loop's iteration values
    (Section 5.4).
    """

    var: str
    low: Expr
    high: Expr
    body: Stmt


@dataclass(frozen=True)
class While(Stmt):
    """``while E { P }``: an unbounded loop (Figure 6).

    Random choices in the body are indexed by the iteration counter.
    """

    cond: Expr
    body: Stmt


@dataclass(frozen=True)
class Return(Stmt):
    """``return E``: sets the program's return value and stops."""

    expr: Expr


@dataclass(frozen=True)
class FuncDef(Stmt):
    """``def f(x1, ..., xn) { P }``: bind a first-order function.

    Functions execute in a fresh scope containing only their parameters
    (no closures over program variables); they may call other functions
    and themselves.  The function's value is what its body ``return``s.
    """

    name: str
    params: Tuple[str, ...]
    body: Stmt


def seq(*stmts: Stmt) -> Stmt:
    """Right-nested sequence of statements; ``seq()`` is ``skip``."""
    if not stmts:
        return Skip()
    result = stmts[-1]
    for stmt in reversed(stmts[:-1]):
        result = Seq(stmt, result)
    return result
