"""Static checks for structured-language programs.

The paper's semantics assumes programs "initialize all variables before
first use" (Section 3); :func:`check_program` verifies that assumption
statically, along with a collection of cheap well-formedness checks:

* use of possibly-undefined variables (beyond declared parameters);
* calls to undefined functions, arity mismatches, duplicate or shadowed
  definitions, calls before the definition is executed;
* function bodies that may fall off the end without ``return``;
* constant distribution parameters that are certainly invalid
  (``flip`` probability outside ``[0, 1]``, empty ``uniform`` range,
  non-positive ``gauss`` std, negative ``array`` size);
* ``while`` loops whose condition is a constant truthy value.

Diagnostics are advisory — programs are still executed dynamically —
but the ``error``-severity ones are guaranteed to fail at run time on
every execution that reaches them.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set

# The diagnostic type moved to the analysis framework (repro.analysis);
# re-exported here so the historical ``from repro.lang.check import
# Diagnostic`` import keeps working.  The framework type is positionally
# compatible (``Diagnostic("error", message)``) and renders identically.
from ..analysis.diagnostics import Diagnostic

from .optimize import fold_expr
from .ast import (
    ArrayExpr,
    Assign,
    Call,
    Const,
    Expr,
    FlipExpr,
    For,
    FuncDef,
    GaussExpr,
    If,
    Index,
    IndexAssign,
    Observe,
    Return,
    Seq,
    Skip,
    Stmt,
    Ternary,
    Unary,
    UniformExpr,
    Var,
    While,
)

__all__ = ["Diagnostic", "check_program"]


class _Checker:
    def __init__(self, parameters: Iterable[str]):
        self.diagnostics: List[Diagnostic] = []
        self.functions: Dict[str, FuncDef] = {}
        self.defined_so_far: Set[str] = set()
        self.parameters = set(parameters)
        #: Set for the top-level pass: bodies were already checked with
        #: the full function table (mutual recursion is fine there).
        self.skip_function_bodies = False

    def error(self, message: str, code: Optional[str] = None) -> None:
        self.diagnostics.append(
            Diagnostic("error", message, code=code, pass_name="programs")
        )

    def warning(self, message: str, code: Optional[str] = None) -> None:
        self.diagnostics.append(
            Diagnostic("warning", message, code=code, pass_name="programs")
        )

    # -- expressions --------------------------------------------------------

    def check_expr(self, expr: Expr, bound: Set[str]) -> None:
        if isinstance(expr, Const):
            return
        if isinstance(expr, Var):
            if expr.name not in bound:
                self.error(f"variable {expr.name!r} may be used before assignment", code="use-before-assign")
            return
        if isinstance(expr, Unary):
            self.check_expr(expr.operand, bound)
            return
        if isinstance(expr, (Index,)):
            self.check_expr(expr.array, bound)
            self.check_expr(expr.index, bound)
            return
        if isinstance(expr, Ternary):
            self.check_expr(expr.cond, bound)
            self.check_expr(expr.then, bound)
            self.check_expr(expr.otherwise, bound)
            return
        if isinstance(expr, ArrayExpr):
            size = fold_expr(expr.size)
            if isinstance(size, Const) and size.value < 0:
                self.error(f"array size {size.value} is negative", code="param-range")
            self.check_expr(expr.size, bound)
            self.check_expr(expr.fill, bound)
            return
        if isinstance(expr, FlipExpr):
            prob = fold_expr(expr.prob)
            if isinstance(prob, Const) and not 0 <= prob.value <= 1:
                self.error(
                    f"flip probability {prob.value} is outside [0, 1]",
                    code="param-range",
                )
            self.check_expr(expr.prob, bound)
            return
        if isinstance(expr, UniformExpr):
            low, high = fold_expr(expr.low), fold_expr(expr.high)
            if (
                isinstance(low, Const)
                and isinstance(high, Const)
                and high.value < low.value
            ):
                self.error(
                    f"uniform({low.value}, {high.value}) has an empty range",
                    code="param-range",
                )
            self.check_expr(expr.low, bound)
            self.check_expr(expr.high, bound)
            return
        if isinstance(expr, GaussExpr):
            std = fold_expr(expr.std)
            if isinstance(std, Const) and std.value <= 0:
                self.error(f"gauss std {std.value} is not positive", code="param-range")
            self.check_expr(expr.mean, bound)
            self.check_expr(expr.std, bound)
            return
        if isinstance(expr, Call):
            function = self.functions.get(expr.name)
            if function is None:
                self.error(f"call to undefined function {expr.name!r}", code="undefined-function")
            else:
                if expr.name not in self.defined_so_far:
                    self.warning(
                        f"function {expr.name!r} is called before its "
                        "definition is executed"
                    )
                if len(expr.args) != len(function.params):
                    self.error(
                        f"function {expr.name!r} takes {len(function.params)} "
                        f"argument(s), call passes {len(expr.args)}"
                    )
            for arg in expr.args:
                self.check_expr(arg, bound)
            return
        # Binary: structural recursion over its two operands.
        self.check_expr(expr.left, bound)  # type: ignore[attr-defined]
        self.check_expr(expr.right, bound)  # type: ignore[attr-defined]

    # -- statements --------------------------------------------------------------

    def check_stmt(self, stmt: Stmt, bound: Set[str]) -> Set[str]:
        """Check ``stmt``; return variables definitely assigned by it."""
        if isinstance(stmt, Skip):
            return set()
        if isinstance(stmt, Assign):
            self.check_expr(stmt.expr, bound)
            return {stmt.name}
        if isinstance(stmt, IndexAssign):
            if stmt.name not in bound:
                self.error(
                    f"array {stmt.name!r} may be index-assigned before assignment"
                )
            self.check_expr(stmt.index, bound)
            self.check_expr(stmt.expr, bound)
            return set()
        if isinstance(stmt, Seq):
            first = self.check_stmt(stmt.first, bound)
            second = self.check_stmt(stmt.second, bound | first)
            return first | second
        if isinstance(stmt, If):
            self.check_expr(stmt.cond, bound)
            then_assigned = self.check_stmt(stmt.then, set(bound))
            else_assigned = self.check_stmt(stmt.otherwise, set(bound))
            return then_assigned & else_assigned
        if isinstance(stmt, Observe):
            self.check_expr(stmt.random, bound)
            self.check_expr(stmt.value, bound)
            return set()
        if isinstance(stmt, For):
            self.check_expr(stmt.low, bound)
            self.check_expr(stmt.high, bound)
            self.check_stmt(stmt.body, bound | {stmt.var})
            return set()
        if isinstance(stmt, While):
            if isinstance(stmt.cond, Const) and stmt.cond.value != 0:
                self.warning("while condition is a constant truthy value; the loop cannot terminate", code="const-loop")
            self.check_expr(stmt.cond, bound)
            self.check_stmt(stmt.body, set(bound))
            return set()
        if isinstance(stmt, Return):
            self.check_expr(stmt.expr, bound)
            return set()
        if isinstance(stmt, FuncDef):
            if not self.skip_function_bodies:
                self.check_stmt(stmt.body, set(stmt.params))
                if not _definitely_returns(stmt.body):
                    self.warning(
                        f"function {stmt.name!r} may finish without a return"
                    )
            self.defined_so_far.add(stmt.name)
            return set()
        raise TypeError(f"unknown statement {stmt!r}")


def _definitely_returns(stmt: Stmt) -> bool:
    if isinstance(stmt, Return):
        return True
    if isinstance(stmt, Seq):
        return _definitely_returns(stmt.first) or _definitely_returns(stmt.second)
    if isinstance(stmt, If):
        return _definitely_returns(stmt.then) and _definitely_returns(stmt.otherwise)
    return False


def _collect_functions(program: Stmt, checker: _Checker) -> None:
    node = program
    while isinstance(node, Seq):
        if isinstance(node.first, FuncDef):
            definition = node.first
            if definition.name in checker.functions:
                checker.error(f"function {definition.name!r} is defined twice")
            checker.functions[definition.name] = definition
        node = node.second
    if isinstance(node, FuncDef):
        if node.name in checker.functions:
            checker.error(f"function {node.name!r} is defined twice")
        checker.functions[node.name] = node


def check_program(
    program: Stmt, parameters: Sequence[str] = ()
) -> List[Diagnostic]:
    """Run all static checks; ``parameters`` are env-supplied names.

    Function bodies may call any function defined anywhere in the
    program (recursion and mutual recursion are fine); top-level calls
    before a ``def`` is executed get a warning, since they fail at run
    time.
    """
    checker = _Checker(parameters)
    _collect_functions(program, checker)
    # Pass 1 — function bodies, with every function visible (bodies run
    # only after all top-level defs have executed in valid programs, and
    # mutual recursion must not warn).
    checker.defined_so_far = set(checker.functions)
    for definition in checker.functions.values():
        checker.check_stmt(definition.body, set(definition.params))
        if not _definitely_returns(definition.body):
            checker.warning(f"function {definition.name!r} may finish without a return")
    # Pass 2 — the top level, tracking textual definition order so calls
    # that precede their def get flagged; bodies are not re-checked.
    checker.defined_so_far = set()
    checker.skip_function_bodies = True
    checker.check_stmt(program, set(parameters))
    return checker.diagnostics
