"""Big-step interpreter for the paper's language.

The interpreter executes a program under a
:class:`~repro.core.handlers.TraceHandler`, so every capability of the
embedded runtime — simulation, scoring, constrained generation,
enumeration, MCMC, and trace translation — applies unchanged to
structured-language programs.  :func:`lang_model` wraps a program as a
:class:`~repro.core.model.Model`.

Random choices are addressed by ``(label, *loop_indices)``: the random
expression's syntactic label plus the values of the enclosing loop
variables (for ``for`` loops) or iteration counters (for ``while``
loops), the naming scheme of Section 5.4 / [44].
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..core.handlers import TraceHandler
from ..core.model import Model
from ..core.trace import Trace
from ..errors import ModelExecutionError
from ..distributions import Distribution, Flip, Normal, UniformDiscrete
from ..observability import NULL_METRICS, NULL_TRACER, MetricsRegistry, Tracer
from .ast import (
    ArrayExpr,
    Assign,
    Binary,
    Call,
    Const,
    Expr,
    FlipExpr,
    For,
    FuncDef,
    GaussExpr,
    If,
    Index,
    IndexAssign,
    Observe,
    RandomExpr,
    Return,
    Seq,
    Skip,
    Stmt,
    Ternary,
    Unary,
    UniformExpr,
    Var,
    While,
)

__all__ = [
    "interpret",
    "lang_model",
    "EvalError",
    "choice_address",
    "distribution_of",
]


class EvalError(ModelExecutionError, RuntimeError):
    """Raised on runtime errors: unbound variables, bad indices, etc.

    Part of the :mod:`repro.errors` taxonomy (a model-execution failure),
    with ``RuntimeError`` kept as a base for pre-existing handlers.
    """


class _ReturnSignal(Exception):
    def __init__(self, value: Any):
        super().__init__("return")
        self.value = value


def _truthy(value: Any) -> bool:
    return value != 0


def choice_address(label: str, loop_indices: Tuple[int, ...]) -> Tuple:
    """The run-time address of a random choice (Section 5.4)."""
    return (label,) + tuple(loop_indices)


#: Guard against runaway recursion through user-defined functions.  Kept
#: well below Python's own frame limit (each language-level call expands
#: to several interpreter frames) so the error is a clean ``EvalError``.
MAX_CALL_DEPTH = 100


class _Interpreter:
    def __init__(self, handler: TraceHandler, env: Optional[Dict[str, Any]] = None):
        self.handler = handler
        self.env: Dict[str, Any] = dict(env) if env else {}
        #: Address context: loop indices (ints) interleaved with call-site
        #: labels (strings), in execution order (Section 5.4 / [44]).
        self.loop_indices: List[Any] = []
        self.functions: Dict[str, FuncDef] = {}
        self.call_depth = 0
        self.return_value: Any = None
        #: Instrumentation tallies (two integer increments per choice).
        self.samples = 0
        self.observes = 0

    # -- expressions ----------------------------------------------------------

    def eval(self, expr: Expr) -> Any:
        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, Var):
            if expr.name not in self.env:
                raise EvalError(f"unbound variable {expr.name!r}")
            return self.env[expr.name]
        if isinstance(expr, Unary):
            operand = self.eval(expr.operand)
            if expr.op == "-":
                return -operand
            if expr.op == "!":
                return 0 if _truthy(operand) else 1
            raise EvalError(f"unknown unary operator {expr.op!r}")
        if isinstance(expr, Binary):
            return self._eval_binary(expr)
        if isinstance(expr, Ternary):
            if _truthy(self.eval(expr.cond)):
                return self.eval(expr.then)
            return self.eval(expr.otherwise)
        if isinstance(expr, Index):
            array = self.eval(expr.array)
            index = self.eval(expr.index)
            if not isinstance(array, list):
                raise EvalError(f"indexing a non-array value {array!r}")
            i = int(index)
            if not 0 <= i < len(array):
                raise EvalError(f"index {i} out of bounds for array of size {len(array)}")
            return array[i]
        if isinstance(expr, ArrayExpr):
            size = int(self.eval(expr.size))
            if size < 0:
                raise EvalError(f"negative array size {size}")
            fill = self.eval(expr.fill)
            return [fill] * size
        if isinstance(expr, RandomExpr):
            dist = distribution_of(expr, self.eval)
            address = choice_address(expr.label, tuple(self.loop_indices))
            self.samples += 1
            return self.handler.sample(dist, address)
        if isinstance(expr, Call):
            return self._call(expr)
        raise EvalError(f"unknown expression {expr!r}")

    def _call(self, expr: Call) -> Any:
        function = self.functions.get(expr.name)
        if function is None:
            raise EvalError(f"call to undefined function {expr.name!r}")
        if len(expr.args) != len(function.params):
            raise EvalError(
                f"function {expr.name!r} takes {len(function.params)} argument(s), "
                f"got {len(expr.args)}"
            )
        if self.call_depth >= MAX_CALL_DEPTH:
            raise EvalError(
                f"call depth exceeded {MAX_CALL_DEPTH} (runaway recursion "
                f"through {expr.name!r}?)"
            )
        arguments = [self.eval(arg) for arg in expr.args]
        saved_env = self.env
        self.env = dict(zip(function.params, arguments))
        self.loop_indices.append(expr.label)
        self.call_depth += 1
        try:
            self.exec(function.body)
        except _ReturnSignal as signal:
            return signal.value
        finally:
            self.env = saved_env
            self.loop_indices.pop()
            self.call_depth -= 1
        raise EvalError(f"function {expr.name!r} did not return a value")

    def _eval_binary(self, expr: Binary) -> Any:
        op = expr.op
        if op == "&&":
            left = self.eval(expr.left)
            if not _truthy(left):
                return 0
            return 1 if _truthy(self.eval(expr.right)) else 0
        if op == "||":
            left = self.eval(expr.left)
            if _truthy(left):
                return 1
            return 1 if _truthy(self.eval(expr.right)) else 0
        left = self.eval(expr.left)
        right = self.eval(expr.right)
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise EvalError("division by zero")
            return left / right
        if op == "==":
            return 1 if left == right else 0
        if op == "!=":
            return 1 if left != right else 0
        if op == "<":
            return 1 if left < right else 0
        if op == "<=":
            return 1 if left <= right else 0
        if op == ">":
            return 1 if left > right else 0
        if op == ">=":
            return 1 if left >= right else 0
        raise EvalError(f"unknown binary operator {op!r}")

    # -- statements -------------------------------------------------------------

    def exec(self, stmt: Stmt) -> None:
        if isinstance(stmt, Skip):
            return
        if isinstance(stmt, Assign):
            self.env[stmt.name] = self.eval(stmt.expr)
            return
        if isinstance(stmt, IndexAssign):
            if stmt.name not in self.env:
                raise EvalError(f"unbound variable {stmt.name!r}")
            array = self.env[stmt.name]
            if not isinstance(array, list):
                raise EvalError(f"index-assigning a non-array variable {stmt.name!r}")
            index = int(self.eval(stmt.index))
            if not 0 <= index < len(array):
                raise EvalError(
                    f"index {index} out of bounds for array of size {len(array)}"
                )
            value = self.eval(stmt.expr)
            # Arrays are values: copy-on-write keeps earlier bindings intact.
            updated = list(array)
            updated[index] = value
            self.env[stmt.name] = updated
            return
        if isinstance(stmt, Seq):
            self.exec(stmt.first)
            self.exec(stmt.second)
            return
        if isinstance(stmt, If):
            if _truthy(self.eval(stmt.cond)):
                self.exec(stmt.then)
            else:
                self.exec(stmt.otherwise)
            return
        if isinstance(stmt, Observe):
            dist = distribution_of(stmt.random, self.eval)
            value = self.eval(stmt.value)
            address = choice_address(stmt.random.label, tuple(self.loop_indices))
            self.observes += 1
            self.handler.observe(dist, value, address)
            return
        if isinstance(stmt, For):
            low = int(self.eval(stmt.low))
            high = int(self.eval(stmt.high))
            for i in range(low, high):
                self.env[stmt.var] = i
                self.loop_indices.append(i)
                try:
                    self.exec(stmt.body)
                finally:
                    self.loop_indices.pop()
            return
        if isinstance(stmt, While):
            # The condition is evaluated inside the iteration's index so
            # that a random condition (the geometric loop of Figure 6)
            # gets a fresh address each round.
            iteration = 0
            while True:
                self.loop_indices.append(iteration)
                try:
                    if not _truthy(self.eval(stmt.cond)):
                        break
                    self.exec(stmt.body)
                finally:
                    self.loop_indices.pop()
                iteration += 1
            return
        if isinstance(stmt, Return):
            raise _ReturnSignal(self.eval(stmt.expr))
        if isinstance(stmt, FuncDef):
            if stmt.name in self.functions:
                raise EvalError(f"function {stmt.name!r} is already defined")
            self.functions[stmt.name] = stmt
            return
        raise EvalError(f"unknown statement {stmt!r}")


def distribution_of(expr: RandomExpr, eval_fn) -> Distribution:
    """The primitive distribution denoted by a random expression."""
    if isinstance(expr, FlipExpr):
        prob = eval_fn(expr.prob)
        if not 0.0 <= prob <= 1.0:
            raise EvalError(f"flip probability {prob} outside [0, 1]")
        return Flip(float(prob))
    if isinstance(expr, UniformExpr):
        low = int(eval_fn(expr.low))
        high = int(eval_fn(expr.high))
        if high < low:
            raise EvalError(f"uniform({low}, {high}) has an empty range")
        return UniformDiscrete(low, high)
    if isinstance(expr, GaussExpr):
        mean = float(eval_fn(expr.mean))
        std = float(eval_fn(expr.std))
        if std <= 0:
            raise EvalError(f"gauss std {std} must be positive")
        return Normal(mean, std)
    raise EvalError(f"unknown random expression {expr!r}")


def interpret(
    program: Stmt,
    handler: TraceHandler,
    env: Optional[Dict[str, Any]] = None,
    *,
    tracer: Tracer = NULL_TRACER,
    metrics: MetricsRegistry = NULL_METRICS,
) -> Any:
    """Execute ``program`` under ``handler``; return its ``return`` value.

    Programs without an explicit ``return`` return the final environment
    (a dict), which is convenient for tests.  With a real ``tracer``,
    the run is recorded as one ``model.run`` span carrying sample and
    observe counts; ``metrics`` accrues the same counts globally.
    """
    interpreter = _Interpreter(handler, env)
    try:
        if tracer.enabled:
            with tracer.span("model.run") as span:
                try:
                    interpreter.exec(program)
                finally:
                    span.count("choices.sampled", interpreter.samples)
                    span.count("choices.observed", interpreter.observes)
        else:
            interpreter.exec(program)
    except _ReturnSignal as signal:
        return signal.value
    finally:
        if metrics.enabled:
            metrics.counter("lang.samples").inc(interpreter.samples)
            metrics.counter("lang.observes").inc(interpreter.observes)
    return dict(interpreter.env)


class _LangModelFn:
    """Module-level callable wrapping one program interpretation.

    A closure would make every lang model unpicklable and rule out the
    ``process`` particle executor; this class keeps the captured state
    (program AST, initial bindings, observability sinks) in plain
    attributes instead.
    """

    __slots__ = ("program", "initial", "tracer", "metrics")

    def __init__(
        self,
        program: Stmt,
        initial: Dict[str, Any],
        tracer: Tracer,
        metrics: MetricsRegistry,
    ):
        self.program = program
        self.initial = initial
        self.tracer = tracer
        self.metrics = metrics

    def __call__(self, t: TraceHandler) -> Any:
        return interpret(
            self.program, t, self.initial, tracer=self.tracer, metrics=self.metrics
        )


def lang_model(
    program: Stmt,
    env: Optional[Dict[str, Any]] = None,
    name: Optional[str] = None,
    *,
    tracer: Tracer = NULL_TRACER,
    metrics: MetricsRegistry = NULL_METRICS,
) -> Model:
    """Wrap a structured-language program as an embedded-PPL ``Model``.

    ``env`` provides initial bindings (the program's parameters, like
    ``sigma`` and ``n`` for the GMM of Listing 5).  The observability
    sinks, when given, are threaded into every interpretation the model
    performs.
    """
    initial = dict(env) if env else {}
    return Model(
        _LangModelFn(program, initial, tracer, metrics), name=name or "lang_program"
    )
