"""Lexer for the concrete syntax of the paper's language.

The concrete syntax matches the programs as printed in the paper
(Figures 1, 3, 5, 6) and in PSI's Listing 5, e.g.::

    burglary = flip(0.02);
    pAlarm = burglary ? 0.9 : 0.01;
    alarm = flip(pAlarm);
    if alarm { pMaryWakes = 0.8; } else { pMaryWakes = 0.05; }
    observe(flip(pMaryWakes) == 1);
    return burglary;
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

__all__ = ["Token", "LexError", "tokenize", "KEYWORDS"]

KEYWORDS = {
    "skip",
    "if",
    "else",
    "observe",
    "for",
    "in",
    "while",
    "return",
    "def",
    "flip",
    "uniform",
    "gauss",
    "array",
}

#: Multi-character operators, longest first so maximal munch works.
_MULTI_OPS = ["==", "!=", "<=", ">=", "&&", "||", ".."]
_SINGLE_OPS = set("+-*/<>!?=:;,(){}[]")


class LexError(ValueError):
    """Raised on malformed input with position information."""

    def __init__(self, message: str, line: int, col: int):
        super().__init__(f"{message} at line {line}, column {col}")
        self.line = line
        self.col = col


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based)."""

    kind: str  # "number", "ident", a keyword, or the operator itself
    text: str
    line: int
    col: int

    def __repr__(self) -> str:
        return f"Token({self.kind!r}, {self.text!r}, {self.line}:{self.col})"


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source``; ``//`` comments run to end of line."""
    return list(_scan(source))


def _scan(source: str) -> Iterator[Token]:
    i = 0
    line = 1
    col = 1
    n = len(source)

    def advance(count: int) -> None:
        nonlocal i, line, col
        for _ in range(count):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        ch = source[i]
        if ch in " \t\r\n":
            advance(1)
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                advance(1)
            continue
        start_line, start_col = line, col
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (source[j].isdigit() or (source[j] == "." and not seen_dot)):
                if source[j] == ".":
                    # ".." is the range operator, not a decimal point.
                    if j + 1 < n and source[j + 1] == ".":
                        break
                    seen_dot = True
                j += 1
            text = source[i:j]
            advance(j - i)
            yield Token("number", text, start_line, start_col)
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            advance(j - i)
            kind = text if text in KEYWORDS else "ident"
            yield Token(kind, text, start_line, start_col)
            continue
        matched = False
        for op in _MULTI_OPS:
            if source.startswith(op, i):
                advance(len(op))
                yield Token(op, op, start_line, start_col)
                matched = True
                break
        if matched:
            continue
        if ch in _SINGLE_OPS:
            advance(1)
            yield Token(ch, ch, start_line, start_col)
            continue
        raise LexError(f"unexpected character {ch!r}", line, col)
