"""Constant folding for structured-language programs.

A semantics-preserving simplification pass: deterministic expressions
over constants are evaluated at "compile" time, constant conditionals
select their branch, and loops with constant-false conditions vanish.
Random-expression labels are preserved, so the *trace distribution* of
the folded program — addresses, distributions, probabilities — is
identical to the original's (property-tested in
``tests/lang/test_optimize.py``).

Folding is useful after an edit: replacing a constant can make whole
branches dead, and the translator then sees a smaller program.
"""

from __future__ import annotations

from typing import Optional

from .ast import (
    ArrayExpr,
    Assign,
    Binary,
    Call,
    Const,
    Expr,
    FlipExpr,
    For,
    FuncDef,
    GaussExpr,
    If,
    Index,
    IndexAssign,
    Observe,
    RandomExpr,
    Return,
    Seq,
    Skip,
    Stmt,
    Ternary,
    Unary,
    UniformExpr,
    Var,
    While,
)

__all__ = ["fold_constants", "fold_expr"]


def _truthy(value) -> bool:
    return value != 0


def _binary_value(op: str, left, right) -> Optional[float]:
    """Evaluate a binary operator on constants; None if not foldable."""
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            return None  # preserve the run-time error
        return left / right
    if op == "==":
        return 1 if left == right else 0
    if op == "!=":
        return 1 if left != right else 0
    if op == "<":
        return 1 if left < right else 0
    if op == "<=":
        return 1 if left <= right else 0
    if op == ">":
        return 1 if left > right else 0
    if op == ">=":
        return 1 if left >= right else 0
    if op == "&&":
        return 1 if _truthy(left) and _truthy(right) else 0
    if op == "||":
        return 1 if _truthy(left) or _truthy(right) else 0
    return None


def fold_expr(expr: Expr) -> Expr:
    """Fold constants within one expression."""
    if isinstance(expr, (Const, Var)):
        return expr
    if isinstance(expr, Unary):
        operand = fold_expr(expr.operand)
        if isinstance(operand, Const):
            if expr.op == "-":
                return Const(-operand.value)
            if expr.op == "!":
                return Const(0 if _truthy(operand.value) else 1)
        return Unary(expr.op, operand)
    if isinstance(expr, Binary):
        left = fold_expr(expr.left)
        right = fold_expr(expr.right)
        # Short-circuit folding needs only the left operand — but the
        # right side must be effect-free to drop it.  Random expressions
        # (and calls, which may contain them) are effects.
        if expr.op in ("&&", "||") and isinstance(left, Const):
            if expr.op == "&&" and not _truthy(left.value):
                return Const(0)
            if expr.op == "||" and _truthy(left.value):
                return Const(1)
            # Left operand decided nothing: result is right's truthiness.
            if isinstance(right, Const):
                return Const(1 if _truthy(right.value) else 0)
            return Binary(expr.op, left, right)
        if isinstance(left, Const) and isinstance(right, Const):
            value = _binary_value(expr.op, left.value, right.value)
            if value is not None:
                return Const(value)
        return Binary(expr.op, left, right)
    if isinstance(expr, Ternary):
        cond = fold_expr(expr.cond)
        if isinstance(cond, Const):
            return fold_expr(expr.then if _truthy(cond.value) else expr.otherwise)
        return Ternary(cond, fold_expr(expr.then), fold_expr(expr.otherwise))
    if isinstance(expr, Index):
        return Index(fold_expr(expr.array), fold_expr(expr.index))
    if isinstance(expr, ArrayExpr):
        return ArrayExpr(fold_expr(expr.size), fold_expr(expr.fill))
    if isinstance(expr, FlipExpr):
        return FlipExpr(expr.label, fold_expr(expr.prob))
    if isinstance(expr, UniformExpr):
        return UniformExpr(expr.label, fold_expr(expr.low), fold_expr(expr.high))
    if isinstance(expr, GaussExpr):
        return GaussExpr(expr.label, fold_expr(expr.mean), fold_expr(expr.std))
    if isinstance(expr, Call):
        return Call(expr.label, expr.name, tuple(fold_expr(arg) for arg in expr.args))
    raise TypeError(f"unknown expression {expr!r}")


def fold_constants(stmt: Stmt) -> Stmt:
    """Fold constants throughout a program."""
    if isinstance(stmt, Skip):
        return stmt
    if isinstance(stmt, Assign):
        return Assign(stmt.name, fold_expr(stmt.expr))
    if isinstance(stmt, IndexAssign):
        return IndexAssign(stmt.name, fold_expr(stmt.index), fold_expr(stmt.expr))
    if isinstance(stmt, Seq):
        first = fold_constants(stmt.first)
        second = fold_constants(stmt.second)
        if isinstance(first, Skip):
            return second
        if isinstance(second, Skip) and not isinstance(first, Skip):
            return first
        return Seq(first, second)
    if isinstance(stmt, If):
        cond = fold_expr(stmt.cond)
        if isinstance(cond, Const):
            return fold_constants(stmt.then if _truthy(cond.value) else stmt.otherwise)
        return If(cond, fold_constants(stmt.then), fold_constants(stmt.otherwise))
    if isinstance(stmt, Observe):
        folded_random = fold_expr(stmt.random)
        assert isinstance(folded_random, RandomExpr)
        return Observe(folded_random, fold_expr(stmt.value))
    if isinstance(stmt, For):
        return For(
            stmt.var, fold_expr(stmt.low), fold_expr(stmt.high), fold_constants(stmt.body)
        )
    if isinstance(stmt, While):
        cond = fold_expr(stmt.cond)
        if isinstance(cond, Const) and not _truthy(cond.value):
            return Skip()
        return While(cond, fold_constants(stmt.body))
    if isinstance(stmt, Return):
        return Return(fold_expr(stmt.expr))
    if isinstance(stmt, FuncDef):
        return FuncDef(stmt.name, stmt.params, fold_constants(stmt.body))
    raise TypeError(f"unknown statement {stmt!r}")
