"""Recursive-descent parser for the paper's language.

Produces the AST of :mod:`repro.lang.ast`.  Each random expression is
labelled ``"<kind>:<line>:<col>"`` from its source position, giving the
stable syntactic identity that addresses its random choices
(Section 5.4).

Operator precedence (loosest to tightest): ``?:``, ``||``, ``&&``,
``== !=``, ``< <= > >=``, ``+ -``, ``* /``, unary ``- !``, indexing.
"""

from __future__ import annotations

from typing import List, Optional

from .ast import (
    ArrayExpr,
    Assign,
    Binary,
    Call,
    Const,
    Expr,
    FlipExpr,
    For,
    FuncDef,
    GaussExpr,
    If,
    Index,
    IndexAssign,
    Observe,
    RandomExpr,
    Return,
    Skip,
    Stmt,
    Ternary,
    Unary,
    UniformExpr,
    Var,
    While,
    seq,
)
from .lexer import Token, tokenize

__all__ = ["parse_program", "parse_expr", "ParseError"]


class ParseError(ValueError):
    """Raised on syntactically invalid input."""

    def __init__(self, message: str, token: Optional[Token]):
        position = f" at line {token.line}, column {token.col}" if token else " at end of input"
        super().__init__(message + position)
        self.token = token


class _Parser:
    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token helpers ------------------------------------------------------

    def _peek(self) -> Optional[Token]:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else None

    def _at(self, kind: str) -> bool:
        token = self._peek()
        return token is not None and token.kind == kind

    def _advance(self) -> Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input", None)
        self._pos += 1
        return token

    def _expect(self, kind: str) -> Token:
        token = self._peek()
        if token is None or token.kind != kind:
            raise ParseError(f"expected {kind!r}", token)
        return self._advance()

    def _accept(self, kind: str) -> Optional[Token]:
        if self._at(kind):
            return self._advance()
        return None

    # -- program & statements -------------------------------------------------

    def parse_program(self) -> Stmt:
        statements = []
        while self._peek() is not None:
            statements.append(self._statement())
        return seq(*statements)

    def _block(self) -> Stmt:
        self._expect("{")
        statements = []
        while not self._at("}"):
            statements.append(self._statement())
        self._expect("}")
        return seq(*statements)

    def _statement(self) -> Stmt:
        if self._accept("skip"):
            self._expect(";")
            return Skip()
        if self._accept("def"):
            name = self._expect("ident").text
            self._expect("(")
            params = []
            if not self._at(")"):
                params.append(self._expect("ident").text)
                while self._accept(","):
                    params.append(self._expect("ident").text)
            self._expect(")")
            if len(set(params)) != len(params):
                raise ParseError(f"duplicate parameter in def {name}", self._peek())
            body = self._block()
            return FuncDef(name, tuple(params), body)
        if self._accept("if"):
            cond = self._expression()
            then = self._block()
            otherwise: Stmt = Skip()
            if self._accept("else"):
                otherwise = self._block() if self._at("{") else self._statement()
            return If(cond, then, otherwise)
        if self._accept("observe"):
            self._expect("(")
            # The left side of '==' must be a bare random expression, so
            # parse at postfix level rather than full-expression level
            # (otherwise '==' would be swallowed by the comparison).
            random = self._postfix()
            if not isinstance(random, RandomExpr):
                raise ParseError(
                    "observe requires a random expression on the left of '=='",
                    self._peek(),
                )
            self._expect("==")
            value = self._expression()
            self._expect(")")
            self._expect(";")
            return Observe(random, value)
        if self._accept("for"):
            var = self._expect("ident").text
            self._expect("in")
            self._expect("[")
            low = self._expression()
            self._expect("..")
            high = self._expression()
            self._expect(")")
            body = self._block()
            return For(var, low, high, body)
        if self._accept("while"):
            cond = self._expression()
            body = self._block()
            return While(cond, body)
        if self._accept("return"):
            expr = self._expression()
            self._expect(";")
            return Return(expr)
        if self._at("ident"):
            name = self._advance().text
            if self._accept("["):
                index = self._expression()
                self._expect("]")
                self._expect("=")
                expr = self._expression()
                self._expect(";")
                return IndexAssign(name, index, expr)
            self._expect("=")
            expr = self._expression()
            self._expect(";")
            return Assign(name, expr)
        raise ParseError("expected a statement", self._peek())

    # -- expressions ------------------------------------------------------------

    def _expression(self) -> Expr:
        return self._ternary()

    def _ternary(self) -> Expr:
        cond = self._or()
        if self._accept("?"):
            then = self._ternary()
            self._expect(":")
            otherwise = self._ternary()
            return Ternary(cond, then, otherwise)
        return cond

    def _or(self) -> Expr:
        left = self._and()
        while self._at("||"):
            self._advance()
            left = Binary("||", left, self._and())
        return left

    def _and(self) -> Expr:
        left = self._equality()
        while self._at("&&"):
            self._advance()
            left = Binary("&&", left, self._equality())
        return left

    def _equality(self) -> Expr:
        left = self._relational()
        while self._peek() is not None and self._peek().kind in ("==", "!="):
            op = self._advance().kind
            left = Binary(op, left, self._relational())
        return left

    def _relational(self) -> Expr:
        left = self._additive()
        while self._peek() is not None and self._peek().kind in ("<", "<=", ">", ">="):
            op = self._advance().kind
            left = Binary(op, left, self._additive())
        return left

    def _additive(self) -> Expr:
        left = self._multiplicative()
        while self._peek() is not None and self._peek().kind in ("+", "-"):
            op = self._advance().kind
            left = Binary(op, left, self._multiplicative())
        return left

    def _multiplicative(self) -> Expr:
        left = self._unary()
        while self._peek() is not None and self._peek().kind in ("*", "/"):
            op = self._advance().kind
            left = Binary(op, left, self._unary())
        return left

    def _unary(self) -> Expr:
        if self._at("-"):
            self._advance()
            return Unary("-", self._unary())
        if self._at("!"):
            self._advance()
            return Unary("!", self._unary())
        return self._postfix()

    def _postfix(self) -> Expr:
        expr = self._primary()
        while self._accept("["):
            index = self._expression()
            self._expect("]")
            expr = Index(expr, index)
        return expr

    def _primary(self) -> Expr:
        token = self._peek()
        if token is None:
            raise ParseError("expected an expression", None)
        if token.kind == "number":
            self._advance()
            text = token.text
            value = float(text) if "." in text else int(text)
            return Const(value)
        if token.kind == "ident":
            self._advance()
            if self._at("("):
                self._advance()
                args = []
                if not self._at(")"):
                    args.append(self._expression())
                    while self._accept(","):
                        args.append(self._expression())
                self._expect(")")
                label = f"call:{token.line}:{token.col}"
                return Call(label, token.text, tuple(args))
            return Var(token.text)
        if token.kind == "(":
            self._advance()
            expr = self._expression()
            self._expect(")")
            return expr
        if token.kind in ("flip", "uniform", "gauss", "array"):
            return self._call(token)
        raise ParseError(f"unexpected token {token.text!r}", token)

    def _call(self, token: Token) -> Expr:
        kind = token.kind
        self._advance()
        self._expect("(")
        args = [self._expression()]
        while self._accept(","):
            args.append(self._expression())
        self._expect(")")
        label = f"{kind}:{token.line}:{token.col}"
        if kind == "flip":
            if len(args) != 1:
                raise ParseError("flip takes one argument", token)
            return FlipExpr(label, args[0])
        if kind == "uniform":
            if len(args) != 2:
                raise ParseError("uniform takes two arguments", token)
            return UniformExpr(label, args[0], args[1])
        if kind == "gauss":
            if len(args) != 2:
                raise ParseError("gauss takes two arguments", token)
            return GaussExpr(label, args[0], args[1])
        if len(args) != 2:
            raise ParseError("array takes two arguments", token)
        return ArrayExpr(args[0], args[1])


def parse_program(source: str) -> Stmt:
    """Parse a program (a statement sequence) from concrete syntax."""
    parser = _Parser(tokenize(source))
    return parser.parse_program()


def parse_expr(source: str) -> Expr:
    """Parse a single expression from concrete syntax."""
    parser = _Parser(tokenize(source))
    expr = parser._expression()
    if parser._peek() is not None:
        raise ParseError("trailing input after expression", parser._peek())
    return expr
