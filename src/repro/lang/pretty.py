"""Pretty-printer for the paper's language.

``pretty(parse_program(source))`` re-parses to an AST equal to
``parse_program(source)`` up to random-expression labels (labels encode
source positions, which pretty-printing changes); the round-trip
property is checked in the test suite via :func:`repro.lang.analysis.equal_modulo_labels`.
"""

from __future__ import annotations

from .ast import (
    ArrayExpr,
    Assign,
    Binary,
    Call,
    Const,
    Expr,
    FlipExpr,
    For,
    FuncDef,
    GaussExpr,
    If,
    Index,
    IndexAssign,
    Observe,
    Return,
    Seq,
    Skip,
    Stmt,
    Ternary,
    Unary,
    UniformExpr,
    Var,
    While,
)

__all__ = ["pretty", "pretty_expr"]

# Precedence levels for parenthesization, mirroring the parser.
_PRECEDENCE = {
    "?:": 1,
    "||": 2,
    "&&": 3,
    "==": 4,
    "!=": 4,
    "<": 5,
    "<=": 5,
    ">": 5,
    ">=": 5,
    "+": 6,
    "-": 6,
    "*": 7,
    "/": 7,
}
_UNARY_LEVEL = 8
_ATOM_LEVEL = 9


def _format_const(value) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if not isinstance(value, float) else f"{value!r}"


def pretty_expr(expr: Expr, parent_level: int = 0) -> str:
    """Render an expression, parenthesizing only where required."""
    text, level = _render_expr(expr)
    if level < parent_level:
        return f"({text})"
    return text


def _render_expr(expr: Expr):
    if isinstance(expr, Const):
        return _format_const(expr.value), _ATOM_LEVEL
    if isinstance(expr, Var):
        return expr.name, _ATOM_LEVEL
    if isinstance(expr, Unary):
        inner = pretty_expr(expr.operand, _UNARY_LEVEL)
        return f"{expr.op}{inner}", _UNARY_LEVEL
    if isinstance(expr, Binary):
        level = _PRECEDENCE[expr.op]
        left = pretty_expr(expr.left, level)
        right = pretty_expr(expr.right, level + 1)  # left-associative
        return f"{left} {expr.op} {right}", level
    if isinstance(expr, Ternary):
        cond = pretty_expr(expr.cond, _PRECEDENCE["?:"] + 1)
        then = pretty_expr(expr.then, _PRECEDENCE["?:"])
        otherwise = pretty_expr(expr.otherwise, _PRECEDENCE["?:"])
        return f"{cond} ? {then} : {otherwise}", _PRECEDENCE["?:"]
    if isinstance(expr, Index):
        array = pretty_expr(expr.array, _ATOM_LEVEL)
        return f"{array}[{pretty_expr(expr.index)}]", _ATOM_LEVEL
    if isinstance(expr, ArrayExpr):
        return f"array({pretty_expr(expr.size)}, {pretty_expr(expr.fill)})", _ATOM_LEVEL
    if isinstance(expr, FlipExpr):
        return f"flip({pretty_expr(expr.prob)})", _ATOM_LEVEL
    if isinstance(expr, UniformExpr):
        return f"uniform({pretty_expr(expr.low)}, {pretty_expr(expr.high)})", _ATOM_LEVEL
    if isinstance(expr, GaussExpr):
        return f"gauss({pretty_expr(expr.mean)}, {pretty_expr(expr.std)})", _ATOM_LEVEL
    if isinstance(expr, Call):
        arguments = ", ".join(pretty_expr(arg) for arg in expr.args)
        return f"{expr.name}({arguments})", _ATOM_LEVEL
    raise ValueError(f"unknown expression {expr!r}")


def pretty(stmt: Stmt, indent: int = 0) -> str:
    """Render a statement (or whole program) as concrete syntax."""
    pad = "    " * indent
    if isinstance(stmt, Skip):
        return f"{pad}skip;"
    if isinstance(stmt, Assign):
        return f"{pad}{stmt.name} = {pretty_expr(stmt.expr)};"
    if isinstance(stmt, IndexAssign):
        return f"{pad}{stmt.name}[{pretty_expr(stmt.index)}] = {pretty_expr(stmt.expr)};"
    if isinstance(stmt, Seq):
        return f"{pretty(stmt.first, indent)}\n{pretty(stmt.second, indent)}"
    if isinstance(stmt, If):
        lines = [f"{pad}if {pretty_expr(stmt.cond)} {{", pretty(stmt.then, indent + 1)]
        if isinstance(stmt.otherwise, Skip):
            lines.append(f"{pad}}}")
        else:
            lines.append(f"{pad}}} else {{")
            lines.append(pretty(stmt.otherwise, indent + 1))
            lines.append(f"{pad}}}")
        return "\n".join(lines)
    if isinstance(stmt, Observe):
        random_text, _level = _render_expr(stmt.random)
        return f"{pad}observe({random_text} == {pretty_expr(stmt.value)});"
    if isinstance(stmt, For):
        header = (
            f"{pad}for {stmt.var} in [{pretty_expr(stmt.low)} .. {pretty_expr(stmt.high)}) {{"
        )
        return "\n".join([header, pretty(stmt.body, indent + 1), f"{pad}}}"])
    if isinstance(stmt, While):
        header = f"{pad}while {pretty_expr(stmt.cond)} {{"
        return "\n".join([header, pretty(stmt.body, indent + 1), f"{pad}}}"])
    if isinstance(stmt, Return):
        return f"{pad}return {pretty_expr(stmt.expr)};"
    if isinstance(stmt, FuncDef):
        header = f"{pad}def {stmt.name}({', '.join(stmt.params)}) {{"
        return "\n".join([header, pretty(stmt.body, indent + 1), f"{pad}}}"])
    raise ValueError(f"unknown statement {stmt!r}")
