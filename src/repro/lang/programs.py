"""The paper's example programs, in concrete syntax.

These are used across tests, examples, and experiments:

* :data:`BURGLARY_ORIGINAL` / :data:`BURGLARY_REFINED` — Figure 1;
* :data:`FIGURE3` — Example 1 (with the observation);
* :data:`FIGURE5_P` / :data:`FIGURE5_Q` — Example 3;
* :data:`FIGURE6_GEOMETRIC` — the geometric-distribution loop;
* :data:`FIGURE7` — the dependency-graph example of Section 6;
* :func:`gmm_source` — the finite Gaussian mixture model of Listing 5.
"""

from __future__ import annotations

from .ast import Stmt
from .parser import parse_program

__all__ = [
    "BURGLARY_ORIGINAL",
    "BURGLARY_REFINED",
    "FIGURE3",
    "FIGURE5_P",
    "FIGURE5_Q",
    "FIGURE6_GEOMETRIC",
    "FIGURE7",
    "gmm_source",
    "burglary_original_program",
    "burglary_refined_program",
]

BURGLARY_ORIGINAL = """
burglary = flip(0.02);
pAlarm = burglary ? 0.9 : 0.01;
alarm = flip(pAlarm);
if alarm {
    pMaryWakes = 0.8;
} else {
    pMaryWakes = 0.05;
}
observe(flip(pMaryWakes) == 1);
return burglary;
"""

BURGLARY_REFINED = """
burglary = flip(0.02);
earthquake = flip(0.005);
if earthquake {
    pAlarm = 0.95;
} else {
    pAlarm = burglary ? 0.9 : 0.01;
}
alarm = flip(pAlarm);
if alarm {
    pMaryWakes = earthquake ? 0.9 : 0.8;
} else {
    pMaryWakes = 0.05;
}
observe(flip(pMaryWakes) == 1);
return burglary;
"""

FIGURE3 = """
a = 1;
b = flip(a / 3);
if a < 2 {
    c = uniform(1, 6);
} else {
    c = uniform(6, 10);
}
d = flip(b / 2);
observe(flip(1 / 5) == d);
return c;
"""

FIGURE5_P = """
a = flip(1 / 2);
if a == 0 {
    b = uniform(0, 5);
} else {
    b = flip(1 / 2);
}
c = flip(1 / 2);
"""

FIGURE5_Q = """
a = flip(1 / 3);
if a == 0 {
    b = uniform(0, 5);
} else {
    b = flip(1 / 2);
}
c = uniform(1, 6);
d = uniform(-5, -2);
"""

FIGURE6_GEOMETRIC = """
p = 1 / 2;
n = 1;
while flip(p) {
    n = n + 1;
}
return n;
"""

FIGURE7 = """
a = 1;
b = flip(a / 3);
if a < 2 {
    c = uniform(0, 5);
} else {
    c = uniform(6, 10);
}
d = flip(b / 2);
"""


def gmm_source(k: int = 10) -> str:
    """The finite Gaussian mixture model of Listing 5 (PSI).

    ``sigma`` (the prior std of cluster centers) and ``n`` (the number
    of data points) are free variables supplied via the initial
    environment; ``k`` is inlined as in the listing.
    """
    return f"""
k = {k};
centers = array(k, 0);
for i in [0 .. k) {{
    centers[i] = gauss(0, sigma);
}}
data = array(n, 0);
for i in [0 .. n) {{
    data[i] = gauss(centers[uniform(0, k - 1)], 1);
}}
return data;
"""


def burglary_original_program() -> Stmt:
    return parse_program(BURGLARY_ORIGINAL)


def burglary_refined_program() -> Stmt:
    return parse_program(BURGLARY_REFINED)
