"""Small-step operational semantics (Figure 2 of the paper).

This module implements the paper's semantics literally: a configuration
``(P, σ)`` steps to ``(P', σ')`` emitting a trace fragment ``t`` (the
values of random choices reduced in that step) with probability (or
density) ``p``::

    (P, σ)  --t/p-->  (P', σ')

``run`` chains steps to termination, producing the full trace and the
unnormalized probability ``P̃r[t ~ P]`` — the product of the per-step
probabilities — exactly as in Section 3.  Random choices are resolved by
a :class:`ChoiceSource`: either fresh sampling (:class:`RandomSource`)
or replay of a given value sequence (:class:`ReplaySource`), which turns
``run`` into a trace scorer.  Equivalence with the big-step interpreter
is checked by property tests.

Loops step by unrolling: ``while E { P }`` reduces to
``if E { P; while E { P } } else { skip }``, and ``for`` reduces to its
first iteration followed by the remaining loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..distributions import Distribution
from .ast import (
    ArrayExpr,
    Assign,
    Binary,
    Const,
    Expr,
    For,
    If,
    Index,
    IndexAssign,
    Observe,
    RandomExpr,
    Return,
    Seq,
    Skip,
    Stmt,
    Ternary,
    Unary,
    Var,
    While,
)
from .interp import EvalError, distribution_of

__all__ = [
    "ChoiceSource",
    "RandomSource",
    "ReplaySource",
    "Config",
    "Step",
    "step",
    "run",
    "RunResult",
]


class ChoiceSource:
    """Resolves random choices during small-step execution."""

    def draw(self, dist: Distribution) -> Any:
        raise NotImplementedError


class RandomSource(ChoiceSource):
    """Sample each choice freshly from its distribution."""

    def __init__(self, rng: np.random.Generator):
        self._rng = rng

    def draw(self, dist: Distribution) -> Any:
        return dist.sample(self._rng)


class ReplaySource(ChoiceSource):
    """Replay a fixed sequence of choice values (trace scoring)."""

    def __init__(self, values: List[Any]):
        self._values = list(values)
        self._next = 0

    def draw(self, dist: Distribution) -> Any:
        if self._next >= len(self._values):
            raise EvalError("replay source exhausted: trace is too short")
        value = self._values[self._next]
        self._next += 1
        return value

    @property
    def exhausted(self) -> bool:
        return self._next >= len(self._values)


@dataclass
class _Value:
    """Wrapper marking a fully evaluated expression holding any value.

    ``Const`` only carries numbers; arrays reduce to ``_Value`` nodes so
    the small-step machine can treat them as values too.
    """

    value: Any


def _is_value(expr) -> bool:
    return isinstance(expr, Const) or isinstance(expr, _Value)


def _value_of(expr) -> Any:
    return expr.value


def _wrap(value: Any):
    if isinstance(value, list):
        return _Value(value)
    return Const(value)


def _truthy(value: Any) -> bool:
    return value != 0


@dataclass
class Config:
    """A configuration ``(P, σ)`` plus the accumulated return value."""

    program: Stmt
    env: Dict[str, Any] = field(default_factory=dict)
    return_value: Any = None

    def is_terminal(self) -> bool:
        return isinstance(self.program, Skip)


@dataclass
class Step:
    """One small-step transition: the new config, emitted trace, log prob."""

    config: Config
    emitted: Tuple[Any, ...]
    log_prob: float


def _apply_unary(op: str, value: Any) -> Any:
    if op == "-":
        return -value
    if op == "!":
        return 0 if _truthy(value) else 1
    raise EvalError(f"unknown unary operator {op!r}")


def _apply_binary(op: str, left: Any, right: Any) -> Any:
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise EvalError("division by zero")
        return left / right
    if op == "==":
        return 1 if left == right else 0
    if op == "!=":
        return 1 if left != right else 0
    if op == "<":
        return 1 if left < right else 0
    if op == "<=":
        return 1 if left <= right else 0
    if op == ">":
        return 1 if left > right else 0
    if op == ">=":
        return 1 if left >= right else 0
    if op == "&&":
        return 1 if _truthy(left) and _truthy(right) else 0
    if op == "||":
        return 1 if _truthy(left) or _truthy(right) else 0
    raise EvalError(f"unknown binary operator {op!r}")


def _step_expr(expr: Expr, env: Dict[str, Any], source: ChoiceSource):
    """Reduce the leftmost-innermost redex of ``expr`` by one step.

    Returns ``(new_expr, emitted, log_prob)``.  Exactly one redex is
    reduced per call, mirroring the evaluation-context discipline of the
    paper's ``P[□]`` notation.
    """
    if _is_value(expr):
        raise EvalError("expression is already a value")
    if isinstance(expr, Index):
        if not _is_value(expr.array):
            inner, emitted, log_prob = _step_expr(expr.array, env, source)
            return Index(inner, expr.index), emitted, log_prob
        if not _is_value(expr.index):
            inner, emitted, log_prob = _step_expr(expr.index, env, source)
            return Index(expr.array, inner), emitted, log_prob
        array = _value_of(expr.array)
        index = int(_value_of(expr.index))
        if not isinstance(array, list) or not 0 <= index < len(array):
            raise EvalError("bad array indexing")
        return _wrap(array[index]), (), 0.0
    if isinstance(expr, Var):
        if expr.name not in env:
            raise EvalError(f"unbound variable {expr.name!r}")
        return _wrap(env[expr.name]), (), 0.0
    if isinstance(expr, Unary):
        if not _is_value(expr.operand):
            inner, emitted, log_prob = _step_expr(expr.operand, env, source)
            return Unary(expr.op, inner), emitted, log_prob
        return _wrap(_apply_unary(expr.op, _value_of(expr.operand))), (), 0.0
    if isinstance(expr, Binary):
        # Short-circuit operators branch once the left side is a value.
        if expr.op in ("&&", "||") and _is_value(expr.left):
            left = _value_of(expr.left)
            if expr.op == "&&" and not _truthy(left):
                return Const(0), (), 0.0
            if expr.op == "||" and _truthy(left):
                return Const(1), (), 0.0
            if not _is_value(expr.right):
                inner, emitted, log_prob = _step_expr(expr.right, env, source)
                return Binary(expr.op, expr.left, inner), emitted, log_prob
            return _wrap(1 if _truthy(_value_of(expr.right)) else 0), (), 0.0
        if not _is_value(expr.left):
            inner, emitted, log_prob = _step_expr(expr.left, env, source)
            return Binary(expr.op, inner, expr.right), emitted, log_prob
        if not _is_value(expr.right):
            inner, emitted, log_prob = _step_expr(expr.right, env, source)
            return Binary(expr.op, expr.left, inner), emitted, log_prob
        result = _apply_binary(expr.op, _value_of(expr.left), _value_of(expr.right))
        return _wrap(result), (), 0.0
    if isinstance(expr, Ternary):
        if not _is_value(expr.cond):
            inner, emitted, log_prob = _step_expr(expr.cond, env, source)
            return Ternary(inner, expr.then, expr.otherwise), emitted, log_prob
        chosen = expr.then if _truthy(_value_of(expr.cond)) else expr.otherwise
        return chosen, (), 0.0
    if isinstance(expr, ArrayExpr):
        if not _is_value(expr.size):
            inner, emitted, log_prob = _step_expr(expr.size, env, source)
            return ArrayExpr(inner, expr.fill), emitted, log_prob
        if not _is_value(expr.fill):
            inner, emitted, log_prob = _step_expr(expr.fill, env, source)
            return ArrayExpr(expr.size, inner), emitted, log_prob
        size = int(_value_of(expr.size))
        if size < 0:
            raise EvalError("negative array size")
        return _Value([_value_of(expr.fill)] * size), (), 0.0
    if isinstance(expr, RandomExpr):
        reduced, emitted, log_prob = _step_random(expr, env, source)
        return reduced, emitted, log_prob
    from .ast import Call

    if isinstance(expr, Call):
        raise EvalError(
            "user-defined functions are supported by the big-step "
            "interpreter only, not the small-step machine"
        )
    raise EvalError(f"cannot step expression {expr!r}")


def _random_args(expr: RandomExpr):
    from .ast import FlipExpr, GaussExpr, UniformExpr

    if isinstance(expr, FlipExpr):
        return [expr.prob]
    if isinstance(expr, UniformExpr):
        return [expr.low, expr.high]
    if isinstance(expr, GaussExpr):
        return [expr.mean, expr.std]
    raise EvalError(f"unknown random expression {expr!r}")


def _with_random_args(expr: RandomExpr, args):
    from .ast import FlipExpr, GaussExpr, UniformExpr

    if isinstance(expr, FlipExpr):
        return FlipExpr(expr.label, args[0])
    if isinstance(expr, UniformExpr):
        return UniformExpr(expr.label, args[0], args[1])
    return GaussExpr(expr.label, args[0], args[1])


def _step_random(expr: RandomExpr, env: Dict[str, Any], source: ChoiceSource):
    args = _random_args(expr)
    for position, arg in enumerate(args):
        if not _is_value(arg):
            inner, emitted, log_prob = _step_expr(arg, env, source)
            new_args = list(args)
            new_args[position] = inner
            return _with_random_args(expr, new_args), emitted, log_prob
    # All arguments are values: the random expression itself reduces,
    # emitting its value into the trace with the matching probability —
    # the (P[flip(v)], σ) --[1]/v--> (P[1], σ) rule of Figure 2.
    dist = distribution_of(expr, lambda const: _value_of(const))
    value = source.draw(dist)
    return _wrap(value), (value,), dist.log_prob(value)


def step(config: Config, source: ChoiceSource) -> Step:
    """One small-step transition of a statement configuration."""
    program, env = config.program, config.env
    if isinstance(program, Skip):
        raise EvalError("cannot step a terminated program")
    if isinstance(program, Assign):
        if _is_value(program.expr):
            new_env = dict(env)
            new_env[program.name] = _value_of(program.expr)
            return Step(Config(Skip(), new_env, config.return_value), (), 0.0)
        inner, emitted, log_prob = _step_expr(program.expr, env, source)
        return Step(
            Config(Assign(program.name, inner), env, config.return_value),
            emitted,
            log_prob,
        )
    if isinstance(program, IndexAssign):
        if not _is_value(program.index):
            inner, emitted, log_prob = _step_expr(program.index, env, source)
            return Step(
                Config(IndexAssign(program.name, inner, program.expr), env, config.return_value),
                emitted,
                log_prob,
            )
        if not _is_value(program.expr):
            inner, emitted, log_prob = _step_expr(program.expr, env, source)
            return Step(
                Config(IndexAssign(program.name, program.index, inner), env, config.return_value),
                emitted,
                log_prob,
            )
        array = env.get(program.name)
        if not isinstance(array, list):
            raise EvalError(f"index-assigning a non-array variable {program.name!r}")
        index = int(_value_of(program.index))
        if not 0 <= index < len(array):
            raise EvalError("index out of bounds")
        updated = list(array)
        updated[index] = _value_of(program.expr)
        new_env = dict(env)
        new_env[program.name] = updated
        return Step(Config(Skip(), new_env, config.return_value), (), 0.0)
    if isinstance(program, Seq):
        if isinstance(program.first, Skip):
            return Step(Config(program.second, env, config.return_value), (), 0.0)
        inner = step(Config(program.first, env, config.return_value), source)
        return Step(
            Config(Seq(inner.config.program, program.second), inner.config.env, inner.config.return_value),
            inner.emitted,
            inner.log_prob,
        )
    if isinstance(program, If):
        if _is_value(program.cond):
            chosen = program.then if _truthy(_value_of(program.cond)) else program.otherwise
            return Step(Config(chosen, env, config.return_value), (), 0.0)
        inner, emitted, log_prob = _step_expr(program.cond, env, source)
        return Step(
            Config(If(inner, program.then, program.otherwise), env, config.return_value),
            emitted,
            log_prob,
        )
    if isinstance(program, Observe):
        # Evaluate the random expression's arguments, then the comparison
        # value, then discharge the observation with probability
        # Pr[R = value] — the observe rule of Figure 2 generalized from
        # observe(flip(v) == 1).
        args = _random_args(program.random)
        for position, arg in enumerate(args):
            if not _is_value(arg):
                inner, emitted, log_prob = _step_expr(arg, env, source)
                new_args = list(args)
                new_args[position] = inner
                return Step(
                    Config(
                        Observe(_with_random_args(program.random, new_args), program.value),
                        env,
                        config.return_value,
                    ),
                    emitted,
                    log_prob,
                )
        if not _is_value(program.value):
            inner, emitted, log_prob = _step_expr(program.value, env, source)
            return Step(
                Config(Observe(program.random, inner), env, config.return_value),
                emitted,
                log_prob,
            )
        dist = distribution_of(program.random, lambda const: _value_of(const))
        observed = _value_of(program.value)
        return Step(Config(Skip(), env, config.return_value), (), dist.log_prob(observed))
    if isinstance(program, While):
        unrolled = If(program.cond, Seq(program.body, program), Skip())
        return Step(Config(unrolled, env, config.return_value), (), 0.0)
    if isinstance(program, For):
        if not _is_value(program.low):
            inner, emitted, log_prob = _step_expr(program.low, env, source)
            return Step(
                Config(For(program.var, inner, program.high, program.body), env, config.return_value),
                emitted,
                log_prob,
            )
        if not _is_value(program.high):
            inner, emitted, log_prob = _step_expr(program.high, env, source)
            return Step(
                Config(For(program.var, program.low, inner, program.body), env, config.return_value),
                emitted,
                log_prob,
            )
        low = int(_value_of(program.low))
        high = int(_value_of(program.high))
        if low >= high:
            return Step(Config(Skip(), env, config.return_value), (), 0.0)
        new_env = dict(env)
        new_env[program.var] = low
        rest = For(program.var, Const(low + 1), Const(high), program.body)
        return Step(Config(Seq(program.body, rest), new_env, config.return_value), (), 0.0)
    if isinstance(program, Return):
        if _is_value(program.expr):
            return Step(Config(Skip(), env, _value_of(program.expr)), (), 0.0)
        inner, emitted, log_prob = _step_expr(program.expr, env, source)
        return Step(Config(Return(inner), env, config.return_value), emitted, log_prob)
    from .ast import FuncDef

    if isinstance(program, FuncDef):
        raise EvalError(
            "user-defined functions are supported by the big-step "
            "interpreter only, not the small-step machine"
        )
    raise EvalError(f"cannot step statement {program!r}")


@dataclass
class RunResult:
    """Outcome of running a program to termination under small-step."""

    trace: Tuple[Any, ...]
    log_prob: float
    env: Dict[str, Any]
    return_value: Any
    steps: int


def run(
    program: Stmt,
    source: ChoiceSource,
    env: Optional[Dict[str, Any]] = None,
    max_steps: int = 1_000_000,
) -> RunResult:
    """Run ``(P, σ0)`` to ``(skip, σn)``; concatenate traces, multiply probs.

    This is the ``==>`` relation of Section 3: the result's ``trace`` is
    ``t0 ++ t1 ++ ... ++ tn`` and ``log_prob`` is ``log(p0 p1 ... pn) =
    log P̃r[t ~ P]``.
    """
    config = Config(program, dict(env) if env else {})
    trace: List[Any] = []
    log_prob = 0.0
    steps = 0
    while not config.is_terminal():
        if steps >= max_steps:
            raise EvalError(f"program did not terminate within {max_steps} steps")
        result = step(config, source)
        trace.extend(result.emitted)
        log_prob += result.log_prob
        config = result.config
        steps += 1
    return RunResult(tuple(trace), log_prob, config.env, config.return_value, steps)
