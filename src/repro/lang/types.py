"""Kind analysis: scalars vs arrays.

The language has two kinds of values — rationals ("scalars") and arrays
of rationals.  This flow-sensitive pass infers a kind for every
variable and flags operations that are guaranteed to fail at run time:

* indexing a scalar, or index-assigning a scalar variable;
* using an array as an operand of arithmetic/comparison/boolean
  operators, as a condition, as a distribution parameter, or as an
  observed value;
* merging branches that assign incompatible kinds to the same variable
  (a warning: the program is only wrong if the variable is used after
  the merge in a kind-specific way, which the later checks catch as
  ``unknown``-kind silence — the warning points at the cause).

The lattice is ``scalar < unknown > array``: ``unknown`` (from function
calls, parameters, or conflicting merges) silences downstream checks —
the analysis never reports a spurious error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from .ast import (
    ArrayExpr,
    Assign,
    Binary,
    Call,
    Const,
    Expr,
    FlipExpr,
    For,
    FuncDef,
    GaussExpr,
    If,
    Index,
    IndexAssign,
    Observe,
    Return,
    Seq,
    Skip,
    Stmt,
    Ternary,
    Unary,
    UniformExpr,
    Var,
    While,
)
from ..analysis.diagnostics import Diagnostic

__all__ = ["check_kinds", "SCALAR", "ARRAY", "UNKNOWN"]

SCALAR = "scalar"
ARRAY = "array"
UNKNOWN = "unknown"


def _join(a: str, b: str) -> str:
    return a if a == b else UNKNOWN


class _KindChecker:
    def __init__(self) -> None:
        self.diagnostics: List[Diagnostic] = []

    def error(self, message: str) -> None:
        self.diagnostics.append(Diagnostic("error", message))

    def warning(self, message: str) -> None:
        self.diagnostics.append(Diagnostic("warning", message))

    # -- expressions ------------------------------------------------------

    def kind_of(self, expr: Expr, env: Dict[str, str]) -> str:
        if isinstance(expr, Const):
            return SCALAR
        if isinstance(expr, Var):
            return env.get(expr.name, UNKNOWN)
        if isinstance(expr, Unary):
            self._require_scalar(expr.operand, env, f"operand of {expr.op!r}")
            return SCALAR
        if isinstance(expr, Binary):
            self._require_scalar(expr.left, env, f"left operand of {expr.op!r}")
            self._require_scalar(expr.right, env, f"right operand of {expr.op!r}")
            return SCALAR
        if isinstance(expr, Ternary):
            self._require_scalar(expr.cond, env, "ternary condition")
            return _join(self.kind_of(expr.then, env), self.kind_of(expr.otherwise, env))
        if isinstance(expr, Index):
            base = self.kind_of(expr.array, env)
            if base == SCALAR:
                self.error(self._describe(expr.array, env) + " is indexed but is a scalar")
            self._require_scalar(expr.index, env, "array index")
            return SCALAR  # arrays are flat: elements are scalars
        if isinstance(expr, ArrayExpr):
            self._require_scalar(expr.size, env, "array size")
            self._require_scalar(expr.fill, env, "array fill value")
            return ARRAY
        if isinstance(expr, FlipExpr):
            self._require_scalar(expr.prob, env, "flip probability")
            return SCALAR
        if isinstance(expr, UniformExpr):
            self._require_scalar(expr.low, env, "uniform bound")
            self._require_scalar(expr.high, env, "uniform bound")
            return SCALAR
        if isinstance(expr, GaussExpr):
            self._require_scalar(expr.mean, env, "gauss mean")
            self._require_scalar(expr.std, env, "gauss std")
            return SCALAR
        if isinstance(expr, Call):
            for arg in expr.args:
                self.kind_of(arg, env)  # recurse for inner findings
            return UNKNOWN
        raise TypeError(f"unknown expression {expr!r}")

    @staticmethod
    def _describe(expr: Expr, env: Dict[str, str]) -> str:
        if isinstance(expr, Var):
            return f"variable {expr.name!r}"
        return "an expression"

    def _require_scalar(self, expr: Expr, env: Dict[str, str], where: str) -> None:
        kind = self.kind_of(expr, env)
        if kind == ARRAY:
            self.error(f"{self._describe(expr, env)} used as {where} is an array")

    # -- statements ---------------------------------------------------------

    def check_stmt(self, stmt: Stmt, env: Dict[str, str]) -> Dict[str, str]:
        """Check ``stmt``, updating and returning the kind environment."""
        if isinstance(stmt, Skip):
            return env
        if isinstance(stmt, Assign):
            env = dict(env)
            env[stmt.name] = self.kind_of(stmt.expr, env)
            return env
        if isinstance(stmt, IndexAssign):
            kind = env.get(stmt.name, UNKNOWN)
            if kind == SCALAR:
                self.error(
                    f"variable {stmt.name!r} is index-assigned but is a scalar"
                )
            self._require_scalar(stmt.index, env, "array index")
            self._require_scalar(stmt.expr, env, "array element")
            return env
        if isinstance(stmt, Seq):
            env = self.check_stmt(stmt.first, env)
            return self.check_stmt(stmt.second, env)
        if isinstance(stmt, If):
            self._require_scalar(stmt.cond, env, "condition")
            then_env = self.check_stmt(stmt.then, dict(env))
            else_env = self.check_stmt(stmt.otherwise, dict(env))
            merged: Dict[str, str] = {}
            for name in set(then_env) | set(else_env):
                then_kind = then_env.get(name, UNKNOWN)
                else_kind = else_env.get(name, UNKNOWN)
                merged[name] = _join(then_kind, else_kind)
                if {then_kind, else_kind} == {SCALAR, ARRAY}:
                    self.warning(
                        f"variable {name!r} is a scalar in one branch and an "
                        "array in the other"
                    )
            return merged
        if isinstance(stmt, Observe):
            self.kind_of(stmt.random, env)
            self._require_scalar(stmt.value, env, "observed value")
            return env
        if isinstance(stmt, For):
            self._require_scalar(stmt.low, env, "loop bound")
            self._require_scalar(stmt.high, env, "loop bound")
            body_env = dict(env)
            body_env[stmt.var] = SCALAR
            after = self.check_stmt(stmt.body, body_env)
            # The loop body may run zero times: join with the input env.
            merged = dict(env)
            merged[stmt.var] = SCALAR
            for name, kind in after.items():
                merged[name] = _join(kind, merged.get(name, kind))
            return merged
        if isinstance(stmt, While):
            self._require_scalar(stmt.cond, env, "condition")
            after = self.check_stmt(stmt.body, dict(env))
            merged = dict(env)
            for name, kind in after.items():
                merged[name] = _join(kind, merged.get(name, kind))
            return merged
        if isinstance(stmt, Return):
            self.kind_of(stmt.expr, env)
            return env
        if isinstance(stmt, FuncDef):
            body_env = {param: UNKNOWN for param in stmt.params}
            self.check_stmt(stmt.body, body_env)
            return env
        raise TypeError(f"unknown statement {stmt!r}")


def check_kinds(
    program: Stmt, parameters: Sequence[str] = (), array_parameters: Sequence[str] = ()
) -> List[Diagnostic]:
    """Run the kind analysis.

    ``parameters`` are env-supplied names of unknown kind (scalar data
    like ``n``); names also listed in ``array_parameters`` are known to
    be arrays (like the conditioned GMM's ``ys``).
    """
    checker = _KindChecker()
    env: Dict[str, str] = {name: UNKNOWN for name in parameters}
    for name in array_parameters:
        env[name] = ARRAY
    checker.check_stmt(program, env)
    return checker.diagnostics
