"""Unified observability: tracing spans, metrics, and profiling hooks.

A zero-dependency subsystem the inference runtimes report into:

* :mod:`repro.observability.tracer` — hierarchical span tracer
  (``smc.step`` → ``smc.translate`` → ``translate.particle``) with
  wall-time, per-span counters, JSON export, and flame-graph-friendly
  folded-stack text;
* :mod:`repro.observability.metrics` — counters, gauges, and fixed
  log-scale-bucket histograms for the quantities the paper's evaluation
  cares about (particles translated, choices reused vs. resampled, graph
  statements re-propagated vs. skipped, ESS per step, fault-policy
  activations);
* :mod:`repro.observability.hooks` — the :class:`Hooks` callback
  protocol threaded through the SMC loop
  (``on_step_start/on_particle/on_resample/on_step_end``);
* :mod:`repro.observability.export` — the strict-JSON sanitizer shared
  with the experiment harness.

Everything defaults to the null implementations (:data:`NULL_TRACER`,
:data:`NULL_METRICS`, :data:`NULL_HOOKS`), which keep instrumentation a
no-op on hot paths.  Enable by passing real instances through
:class:`repro.InferenceConfig`::

    from repro import InferenceConfig, infer
    from repro.observability import MetricsRegistry, Tracer

    tracer, metrics = Tracer(), MetricsRegistry()
    step = infer(translator, traces, rng,
                 config=InferenceConfig(tracer=tracer, metrics=metrics))
    print(tracer.folded())                 # flame-graph folded stacks
    print(metrics.to_dict()["smc.particles_translated"])
"""

from .export import dump_json, json_safe, to_json
from .hooks import NULL_HOOKS, CompositeHooks, Hooks, RecordingHooks
from .metrics import (
    HISTOGRAM_EDGES,
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)
from .tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "HISTOGRAM_EDGES",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    "Hooks",
    "CompositeHooks",
    "RecordingHooks",
    "NULL_HOOKS",
    "json_safe",
    "to_json",
    "dump_json",
]
