"""Strict-JSON export shared by traces, metrics, and experiment rows.

Python's ``json.dumps`` emits bare ``NaN``/``Infinity`` tokens by
default, which are not JSON and crash strict parsers (browsers, ``jq``,
most plotting stacks).  Observability payloads legitimately contain such
values — a degenerate run's ESS, a ``-inf`` log weight — so
:func:`json_safe` maps NaN to ``null`` and the infinities to explicit
strings that survive a round trip unambiguously, and every writer here
passes ``allow_nan=False`` so a missed value fails loudly instead of
emitting invalid JSON.
"""

from __future__ import annotations

import json
import math
from typing import Any

__all__ = ["json_safe", "to_json", "dump_json"]


def json_safe(value: Any) -> Any:
    """Convert a value into something every JSON parser accepts."""
    # Duck-typed numpy scalar unwrap keeps this module dependency-free.
    item = getattr(value, "item", None)
    if item is not None and not isinstance(value, (int, float, str, bytes, dict, list, tuple)):
        value = item()
    if isinstance(value, float):
        if math.isnan(value):
            return None
        if value == math.inf:
            return "Infinity"
        if value == -math.inf:
            return "-Infinity"
        return value
    if isinstance(value, dict):
        return {str(key): json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(item) for item in value]
    tolist = getattr(value, "tolist", None)
    if tolist is not None:
        return json_safe(tolist())
    return value


def to_json(payload: Any, indent: int = 2) -> str:
    """Serialize to strict JSON (never emits NaN/Infinity tokens)."""
    return json.dumps(json_safe(payload), indent=indent, allow_nan=False)


def dump_json(payload: Any, path: str, indent: int = 2) -> None:
    """Write strict JSON to ``path`` with a trailing newline."""
    with open(path, "w") as handle:
        handle.write(to_json(payload, indent=indent))
        handle.write("\n")
