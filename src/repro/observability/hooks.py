"""Profiling hooks: callbacks at the SMC loop's structural boundaries.

A :class:`Hooks` object receives one callback per event inside
:func:`repro.core.smc.infer`:

* ``on_step_start(step_index, num_particles)`` — before any translation
  (``step_index`` is the position within :func:`infer_sequence`, or
  ``None`` for a standalone step);
* ``on_particle(index, outcome)`` — after each particle's translation,
  with ``outcome`` in ``{"ok", "dropped", "regenerated"}`` (under
  ``fail_fast`` a failing particle raises instead, so no callback
  fires for it);
* ``on_resample(ess, resampled)`` — after the ESS check, before any
  MCMC rejuvenation;
* ``on_step_end(stats)`` — with the step's final
  :class:`~repro.core.smc.SMCStats`.

The base class implements every callback as a no-op, so subclasses
override only what they need; :data:`NULL_HOOKS` is the shared default.
Hooks observe — they must not mutate traces or consume the inference
RNG, or the null-instrumentation identity guarantee breaks.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

__all__ = ["Hooks", "CompositeHooks", "RecordingHooks", "NULL_HOOKS"]


class Hooks:
    """Base profiling hooks; every callback is a no-op."""

    def on_step_start(self, step_index: Optional[int], num_particles: int) -> None:
        pass

    def on_particle(self, index: int, outcome: str) -> None:
        pass

    def on_resample(self, ess: float, resampled: bool) -> None:
        pass

    def on_step_end(self, stats: Any) -> None:
        pass


class CompositeHooks(Hooks):
    """Fan one event stream out to several hooks, in order."""

    def __init__(self, hooks: Sequence[Hooks]):
        self.hooks = list(hooks)

    def on_step_start(self, step_index: Optional[int], num_particles: int) -> None:
        for hook in self.hooks:
            hook.on_step_start(step_index, num_particles)

    def on_particle(self, index: int, outcome: str) -> None:
        for hook in self.hooks:
            hook.on_particle(index, outcome)

    def on_resample(self, ess: float, resampled: bool) -> None:
        for hook in self.hooks:
            hook.on_resample(ess, resampled)

    def on_step_end(self, stats: Any) -> None:
        for hook in self.hooks:
            hook.on_step_end(stats)


class RecordingHooks(Hooks):
    """Records every event as ``(event_name, args...)`` tuples.

    The reference consumer for tests and debugging::

        hooks = RecordingHooks()
        infer(..., config=InferenceConfig(hooks=hooks))
        assert hooks.events[0][0] == "step_start"
        assert hooks.of("particle")  # one per particle
    """

    def __init__(self) -> None:
        self.events: List[Tuple] = []

    def of(self, event: str) -> List[Tuple]:
        """Events of one kind, in order."""
        return [e for e in self.events if e[0] == event]

    def on_step_start(self, step_index: Optional[int], num_particles: int) -> None:
        self.events.append(("step_start", step_index, num_particles))

    def on_particle(self, index: int, outcome: str) -> None:
        self.events.append(("particle", index, outcome))

    def on_resample(self, ess: float, resampled: bool) -> None:
        self.events.append(("resample", ess, resampled))

    def on_step_end(self, stats: Any) -> None:
        self.events.append(("step_end", stats))


#: Shared stateless no-op instance used as the default everywhere.
NULL_HOOKS = Hooks()
