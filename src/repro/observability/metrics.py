"""Metrics registry: counters, gauges, and log-scale histograms.

The registry is the process-wide tally the inference hot paths report
into — particles translated, choices reused vs. sampled fresh, graph
statements re-propagated vs. skipped, ESS per step, fault-policy
activations.  It is deliberately minimal: three instrument kinds, no
labels, no background threads, stdlib only.

Histograms use **fixed log-scale buckets** (:data:`HISTOGRAM_EDGES`):
four buckets per decade from ``1e-9`` to ``1e9``, the same edges for
every histogram, so exported snapshots from different runs are directly
comparable bucket by bucket.

:class:`NullMetricsRegistry` is the disabled variant: it hands out
shared no-op instruments, so instrumented code needs no conditionals —
but hot loops should still hoist ``registry.counter(...)`` lookups out
of the loop and may skip work entirely when ``registry.enabled`` is
False.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, List, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HISTOGRAM_EDGES",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
]

#: Bucket upper edges: ``10 ** (k / 4)`` for ``k`` in ``-36..36`` — four
#: buckets per decade spanning 1e-9 .. 1e9.  Values at or below the first
#: edge land in bucket 0; values above the last edge land in the overflow
#: bucket (index ``len(HISTOGRAM_EDGES)``).
HISTOGRAM_EDGES: List[float] = [10.0 ** (k / 4.0) for k in range(-36, 37)]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, value: float = 1) -> None:
        if value < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc({value!r}))")
        self.value += value

    def snapshot(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """A value that goes up and down; remembers its last setting."""

    __slots__ = ("name", "value", "updates")

    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value: Union[float, None] = None
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.updates += 1

    def snapshot(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value, "updates": self.updates}


class Histogram:
    """Distribution summary over fixed log-scale buckets.

    Tracks per-bucket counts plus exact ``count``/``sum``/``min``/``max``.
    Non-positive values cannot land on a log scale's interior and are
    counted in bucket 0 (the underflow bucket, together with values at or
    below ``HISTOGRAM_EDGES[0]``).
    """

    __slots__ = ("name", "bucket_counts", "count", "sum", "min", "max")

    kind = "histogram"
    edges = HISTOGRAM_EDGES

    def __init__(self, name: str):
        self.name = name
        self.bucket_counts = [0] * (len(self.edges) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Union[float, None] = None
        self.max: Union[float, None] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.bucket_counts[bisect_left(self.edges, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def mean(self) -> Union[float, None]:
        return self.sum / self.count if self.count else None

    def snapshot(self) -> Dict[str, Any]:
        # Sparse encoding: only non-empty buckets, keyed by upper edge
        # ("+Inf" for the overflow bucket), in edge order.
        buckets = {}
        for index, n in enumerate(self.bucket_counts):
            if n:
                edge = "+Inf" if index == len(self.edges) else repr(self.edges[index])
                buckets[edge] = n
        return {
            "kind": self.kind,
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "buckets": buckets,
        }


class MetricsRegistry:
    """Create-or-get registry of named instruments.

    Asking for an existing name with a different instrument kind is an
    error — silently returning the wrong kind would corrupt the tally.
    """

    enabled = True

    def __init__(self) -> None:
        self._instruments: Dict[str, Any] = {}

    def _get(self, name: str, factory) -> Any:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = self._instruments[name] = factory(name)
        elif not isinstance(instrument, factory):
            raise ValueError(
                f"metric {name!r} is a {instrument.kind}, not a {factory.kind}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def to_dict(self) -> Dict[str, Any]:
        """Deterministic snapshot: instruments sorted by name."""
        return {
            name: self._instruments[name].snapshot()
            for name in sorted(self._instruments)
        }


class _NullInstrument:
    """One shared do-nothing stand-in for all three instrument kinds."""

    __slots__ = ()

    name = ""
    value = 0.0
    count = 0

    def inc(self, value: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry(MetricsRegistry):
    """The disabled registry: hands out shared no-op instruments."""

    enabled = False

    def counter(self, name: str) -> Counter:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]


#: Shared stateless instance used as the default everywhere.
NULL_METRICS = NullMetricsRegistry()
