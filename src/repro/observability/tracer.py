"""Hierarchical span tracer for the inference runtimes.

A :class:`Tracer` records a tree of timed spans — ``smc.step`` containing
``smc.translate`` containing one ``translate.particle`` per particle —
each with a wall-clock duration and free-form counters.  The tree
exports as a JSON-friendly dict (:meth:`Tracer.to_dict`) and as
flame-graph-friendly folded-stack text (:meth:`Tracer.folded`, the
``a;b;c <value>`` format consumed by Brendan Gregg's ``flamegraph.pl``
and by speedscope).

Instrumented code paths never branch on whether tracing is on: they call
``tracer.span(...)`` and ``tracer.count(...)`` unconditionally for the
*phase-level* structure, and consult :attr:`Tracer.enabled` only before
per-particle (hot-loop) spans.  :class:`NullTracer` keeps the same API
with near-zero cost: its spans still measure elapsed wall time (so
:class:`~repro.core.smc.SMCStats` timing fields stay populated with
tracing off) but nothing is retained, aggregated, or exported.

The clock is injectable (``Tracer(clock=...)``) so tests can drive a
deterministic fake clock and assert byte-identical exports.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER"]


class Span:
    """One timed region: a name, a duration, counters, and child spans.

    Also its own context manager (``with tracer.span(...) as span``):
    entering pushes it on the owning tracer's stack, exiting pops and
    sets the duration.  Keeping enter/exit on the span itself (rather
    than a separate context object) saves an allocation per span, which
    matters at one-span-per-particle granularity.
    """

    __slots__ = ("name", "start", "duration", "counters", "children", "_tracer")

    def __init__(self, name: str, start: float, tracer: "Tracer"):
        self.name = name
        self.start = start
        #: Seconds; ``None`` while the span is still open.
        self.duration: Optional[float] = None
        #: Created lazily on the first :meth:`count` (most spans have none).
        self.counters: Optional[Dict[str, float]] = None
        self.children: List["Span"] = []
        self._tracer = tracer

    def __enter__(self) -> "Span":
        self._tracer._stack.append(self)
        return self

    def __exit__(self, *exc_info) -> None:
        tracer = self._tracer
        tracer._stack.pop()
        self.duration = tracer._clock() - self.start

    def count(self, name: str, value: float = 1) -> None:
        """Add ``value`` to a named counter on this span."""
        counters = self.counters
        if counters is None:
            counters = self.counters = {}
        counters[name] = counters.get(name, 0) + value

    def self_time(self) -> float:
        """Duration not covered by child spans (never negative)."""
        duration = self.duration or 0.0
        child_time = sum(child.duration or 0.0 for child in self.children)
        return max(0.0, duration - child_time)

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def total(self, counter: str) -> float:
        """Sum of a counter over this span and every descendant."""
        return sum(
            span.counters.get(counter, 0)
            for span in self.walk()
            if span.counters is not None
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly tree (durations in seconds)."""
        node: Dict[str, Any] = {"name": self.name, "duration_s": self.duration}
        if self.counters:
            node["counters"] = dict(self.counters)
        if self.children:
            node["children"] = [child.to_dict() for child in self.children]
        return node


class Tracer:
    """Records a forest of nested spans with wall-time and counters.

    Parameters
    ----------
    clock:
        Zero-argument callable returning monotonically increasing seconds
        (defaults to :func:`time.perf_counter`).  Inject a fake clock for
        deterministic exports in tests.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self._stack: List[Span] = []
        #: Completed (and in-progress) top-level spans, in start order.
        self.roots: List[Span] = []

    def span(self, name: str) -> Span:
        """Open a child span of the current span (or a new root).

        Use as a context manager; the span's ``duration`` is set on exit::

            with tracer.span("smc.translate") as span:
                ...
            elapsed = span.duration
        """
        span = Span(name, self._clock(), self)
        stack = self._stack
        if stack:
            stack[-1].children.append(span)
        else:
            self.roots.append(span)
        return span

    def count(self, name: str, value: float = 1) -> None:
        """Add to a counter on the innermost open span (no-op outside one)."""
        if self._stack:
            self._stack[-1].count(name, value)

    def current(self) -> Optional[Span]:
        """The innermost open span, or None."""
        return self._stack[-1] if self._stack else None

    def spans(self, name: str) -> List[Span]:
        """Every recorded span with the given name, depth first."""
        return [span for root in self.roots for span in root.walk() if span.name == name]

    def durations(self, name: str) -> List[float]:
        """Durations of every *closed* span with the given name."""
        return [span.duration for span in self.spans(name) if span.duration is not None]

    # -- export ---------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {"spans": [root.to_dict() for root in self.roots]}

    def to_json(self, indent: int = 2) -> str:
        """Strict JSON (durations are finite floats by construction)."""
        return json.dumps(self.to_dict(), indent=indent, allow_nan=False)

    def folded(self, scale: float = 1e6) -> str:
        """Folded-stack text: one ``a;b;c <value>`` line per stack.

        Values are *self* times (time not covered by children) scaled by
        ``scale`` (default microseconds) and rounded to integers, the
        unit-free sample-count format flame-graph tools expect.  Repeated
        identical stacks are merged.
        """
        totals: Dict[str, float] = {}

        def visit(span: Span, prefix: str) -> None:
            stack = f"{prefix};{span.name}" if prefix else span.name
            totals[stack] = totals.get(stack, 0.0) + span.self_time() * scale
            for child in span.children:
                visit(child, stack)

        for root in self.roots:
            visit(root, "")
        return "\n".join(f"{stack} {round(value)}" for stack, value in totals.items())


class _NullSpan:
    """A span that measures elapsed time but records nothing.

    The SMC loop reads phase durations off its spans even when tracing
    is disabled (that is how ``SMCStats.translate_seconds`` stays
    populated), so the null span still calls the clock twice; everything
    else is a no-op.
    """

    __slots__ = ("start", "duration")

    counters: Dict[str, float] = {}
    children: List[Span] = []
    name = ""

    def __init__(self) -> None:
        self.start = 0.0
        self.duration: Optional[float] = None

    def __enter__(self) -> "_NullSpan":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.duration = time.perf_counter() - self.start

    def count(self, name: str, value: float = 1) -> None:
        pass

    def self_time(self) -> float:
        return 0.0

    def total(self, counter: str) -> float:
        return 0.0


class NullTracer(Tracer):
    """The disabled tracer: same API, nothing recorded or exported.

    Hot loops check :attr:`enabled` to skip per-particle spans entirely;
    phase-level ``span()`` calls still time themselves (two
    ``perf_counter`` calls each) so callers can read ``span.duration``.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def span(self, name: str) -> _NullSpan:  # type: ignore[override]
        return _NullSpan()

    def count(self, name: str, value: float = 1) -> None:
        pass

    def spans(self, name: str) -> List[Span]:
        return []

    def durations(self, name: str) -> List[float]:
        return []


#: Shared stateless instance used as the default everywhere.
NULL_TRACER = NullTracer()
