"""Parallel particle execution for the SMC translate phase.

The translate step of Algorithm 2 treats particles independently
(Lemma 2), so it parallelizes without changing the math.  This package
provides the executor abstraction the SMC loop dispatches through —
``serial`` / ``thread`` / ``process`` backends selected via
:attr:`repro.core.config.InferenceConfig.executor` — with per-particle
RNG streams spawned from :class:`numpy.random.SeedSequence` so every
backend produces byte-identical collections for a fixed seed.

See :mod:`repro.parallel.executor` for backend semantics and
:mod:`repro.parallel.worker` for the chunk protocol.
"""

from .executor import (
    EXECUTOR_BACKENDS,
    ParticleExecutor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    chunk_bounds,
    get_executor,
    resolve_executor,
    spawn_particle_rngs,
)
from .pickling import UnpicklableAttribute, find_unpicklable
from .worker import ParticleOutcome, payload_nbytes

__all__ = [
    "UnpicklableAttribute",
    "find_unpicklable",
    "EXECUTOR_BACKENDS",
    "ParticleExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "ParticleOutcome",
    "chunk_bounds",
    "get_executor",
    "resolve_executor",
    "spawn_particle_rngs",
    "payload_nbytes",
]
