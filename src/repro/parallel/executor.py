"""Particle executors: the parallel backends of the SMC translate phase.

The paper's central loop (Algorithm 2, Lemma 2) translates every
particle of the input collection *independently* — an embarrassingly
parallel step.  A :class:`ParticleExecutor` owns the strategy for
running that map:

* ``serial`` — one particle after another in the calling thread.  The
  reference backend: the other two are required to reproduce its output
  byte for byte.
* ``thread`` — a :class:`~concurrent.futures.ThreadPoolExecutor` over
  contiguous particle chunks.  Translation is pure Python, so threads
  mostly help workloads that release the GIL (numpy-heavy models) or
  that block; each chunk gets a private ``copy.deepcopy`` of the
  translator so stateful wrappers (fault injectors, log-prob caches)
  see the same isolation semantics as process workers.
* ``process`` — a :class:`~concurrent.futures.ProcessPoolExecutor` over
  chunked particle batches.  The translator, fault policy, and particle
  batch are pickled to the workers, so everything reachable from them
  must be picklable (module-level model functions are; closures are
  not).  This is the backend that scales with cores.

Determinism
-----------

All backends draw per-particle randomness from RNG streams spawned via
:func:`numpy.random.SeedSequence.spawn` — never from a shared generator
— so the translated collection is **byte-identical across backends**
for a fixed seed, and independent of chunk boundaries and completion
order.  :func:`spawn_particle_rngs` derives the streams: the SMC loop
consumes exactly one ``integers`` draw from its step generator to form
the base :class:`~numpy.random.SeedSequence`, and particle ``i`` always
receives child stream ``i``.

Executors are cheap facades over lazily created pools; use
:func:`get_executor` to obtain a shared instance per ``(backend,
workers)`` so repeated :func:`repro.core.smc.infer` calls reuse one
process pool instead of paying startup per step.
"""

from __future__ import annotations

import atexit
import os
import threading
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "EXECUTOR_BACKENDS",
    "ParticleExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "get_executor",
    "resolve_executor",
    "spawn_particle_rngs",
    "chunk_bounds",
]

#: Recognized backend names, in preference order for documentation.
EXECUTOR_BACKENDS = ("serial", "thread", "process")


def default_workers() -> int:
    """Worker count used when none is given: the machine's core count."""
    return max(1, os.cpu_count() or 1)


def spawn_particle_rngs(
    rng: np.random.Generator, count: int
) -> List[np.random.SeedSequence]:
    """Derive ``count`` independent per-particle seed sequences.

    Consumes exactly one draw from ``rng`` (the same draw under every
    backend), then spawns child sequences with
    :meth:`numpy.random.SeedSequence.spawn`.  Child ``i`` seeds particle
    ``i`` regardless of chunking, which is what makes the backends
    byte-identical.
    """
    base = int(rng.integers(0, np.iinfo(np.int64).max, dtype=np.int64))
    return np.random.SeedSequence(base).spawn(count)


def chunk_bounds(count: int, chunks: int) -> List[Tuple[int, int]]:
    """Split ``range(count)`` into at most ``chunks`` contiguous slices.

    Slices are balanced to within one particle and returned in index
    order; empty slices are never produced.
    """
    chunks = max(1, min(chunks, count))
    base, extra = divmod(count, chunks)
    bounds: List[Tuple[int, int]] = []
    lo = 0
    for index in range(chunks):
        hi = lo + base + (1 if index < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


class ParticleExecutor(ABC):
    """Strategy for mapping the translate phase over a particle batch.

    ``map_translate`` consumes the particles, their spawned seed
    sequences, and the fault policy, and returns one
    :class:`~repro.parallel.worker.ParticleOutcome` per particle, in
    particle order.  Outcomes carry per-particle fault counter deltas
    and the id of the worker (chunk) that produced them, which is how
    :class:`~repro.core.smc.SMCStats` reports per-worker fault counts.
    """

    #: Backend name (one of :data:`EXECUTOR_BACKENDS`).
    name: str = "abstract"

    def __init__(self, workers: Optional[int] = None):
        self.workers = int(workers) if workers is not None else default_workers()
        if self.workers < 1:
            raise ValueError(f"executor workers must be >= 1, got {workers!r}")

    @abstractmethod
    def map_translate(
        self,
        translator: Any,
        items: Sequence[Any],
        seeds: Sequence[np.random.SeedSequence],
        policy: Any,
        regenerate_fn: Any,
    ) -> List[Any]:
        """Translate every particle; return outcomes in particle order."""

    def close(self) -> None:
        """Release pool resources (no-op for poolless backends)."""

    def __enter__(self) -> "ParticleExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(workers={self.workers})"


class SerialExecutor(ParticleExecutor):
    """Run every particle in the calling thread, one chunk, worker 0."""

    name = "serial"

    def __init__(self, workers: Optional[int] = None):
        super().__init__(workers=1 if workers is None else workers)

    def map_translate(self, translator, items, seeds, policy, regenerate_fn):
        from .worker import translate_chunk

        return translate_chunk(
            translator, list(items), list(seeds), policy, regenerate_fn,
            start_index=0, worker_id=0,
        )


class ThreadExecutor(ParticleExecutor):
    """Chunked thread-pool backend with per-chunk translator copies."""

    name = "thread"

    def __init__(self, workers: Optional[int] = None):
        super().__init__(workers)
        self._pool: Optional[ThreadPoolExecutor] = None
        self._lock = threading.Lock()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="repro-particle"
                )
            return self._pool

    def map_translate(self, translator, items, seeds, policy, regenerate_fn):
        from .worker import translate_chunk_isolated

        pool = self._ensure_pool()
        futures = [
            pool.submit(
                translate_chunk_isolated,
                translator, list(items[lo:hi]), list(seeds[lo:hi]),
                policy, regenerate_fn, lo, worker_id,
            )
            for worker_id, (lo, hi) in enumerate(chunk_bounds(len(items), self.workers))
        ]
        outcomes: List[Any] = []
        for future in futures:
            outcomes.extend(future.result())
        return outcomes

    def close(self) -> None:
        with self._lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None


class ProcessExecutor(ParticleExecutor):
    """Chunked process-pool backend (pickled translation closures)."""

    name = "process"

    def __init__(self, workers: Optional[int] = None, *, record_payloads: bool = False):
        super().__init__(workers)
        self._pool: Optional[ProcessPoolExecutor] = None
        self._lock = threading.Lock()
        #: When True, every map_translate records the codec-serialized
        #: size of each shipped particle chunk in last_payload_nbytes.
        #: Off by default — measuring costs one extra encode per chunk.
        self.record_payloads = bool(record_payloads)
        self.last_payload_nbytes: Optional[List[int]] = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
            return self._pool

    def _preflight(self, translator, policy, regenerate_fn) -> None:
        """Reject unpicklable inputs *before* the pool sees them.

        A pickling failure inside ``pool.submit`` surfaces as an opaque
        traceback from the pool machinery; this check names the exact
        attribute to fix (e.g. a lambda-based correspondence predicate)
        and raises before any chunk is shipped.
        """
        from ..errors import PicklingError
        from .pickling import find_unpicklable

        for component, value in (
            ("translator", translator),
            ("fault_policy", policy),
            ("regenerate_fn", regenerate_fn),
        ):
            if value is None:
                continue
            culprit = find_unpicklable(value)
            if culprit is not None:
                raise PicklingError(
                    "the 'process' executor requires the translator, fault "
                    "policy, and regenerate_fn to be picklable, but "
                    f"{culprit.describe(root=component)}; replace it with a "
                    "module-level function or class",
                    component=component,
                    attribute=culprit.path,
                )

    def map_translate(self, translator, items, seeds, policy, regenerate_fn):
        from .worker import chunk_entry, payload_nbytes

        self._preflight(translator, policy, regenerate_fn)
        pool = self._ensure_pool()
        payloads = [
            (translator, list(items[lo:hi]), list(seeds[lo:hi]),
             policy, regenerate_fn, lo, worker_id)
            for worker_id, (lo, hi) in enumerate(chunk_bounds(len(items), self.workers))
        ]
        if self.record_payloads:
            self.last_payload_nbytes = [
                payload_nbytes(payload[1]) for payload in payloads
            ]
        try:
            futures = [pool.submit(chunk_entry, payload) for payload in payloads]
            outcomes: List[Any] = []
            for future in futures:
                outcomes.extend(future.result())
            return outcomes
        except (TypeError, AttributeError, ImportError) as error:
            # The classic pickling failures: a closure-based model fn, a
            # lambda proposal, a regenerate_fn closure.  Surface what to
            # fix instead of a bare pool traceback.
            raise RuntimeError(
                "the 'process' executor requires the translator, fault "
                "policy, and particles to be picklable (module-level model "
                f"functions, no lambdas/closures): {error!r}"
            ) from error

    def close(self) -> None:
        with self._lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None


_BACKENDS = {
    "serial": SerialExecutor,
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
}

#: Shared executors keyed by ``(backend, workers)``; pools are expensive
#: (a process pool forks once per worker), so repeated infer() calls
#: with a string-configured executor reuse one instance.
_SHARED: Dict[Tuple[str, Optional[int]], ParticleExecutor] = {}
_SHARED_LOCK = threading.Lock()


def get_executor(backend: str, workers: Optional[int] = None) -> ParticleExecutor:
    """Shared executor instance for ``(backend, workers)``.

    Instances live for the process (closed at interpreter exit), so a
    sequence of ``infer`` calls — or the per-rung steps of the annealing
    helpers — pay pool startup once.
    """
    if backend not in _BACKENDS:
        raise ValueError(
            f"unknown executor backend {backend!r}; choose from {list(EXECUTOR_BACKENDS)}"
        )
    key = (backend, workers)
    with _SHARED_LOCK:
        executor = _SHARED.get(key)
        if executor is None:
            executor = _SHARED[key] = _BACKENDS[backend](workers)
        return executor


def resolve_executor(spec: Any, workers: Optional[int] = None) -> Optional[ParticleExecutor]:
    """Resolve an ``InferenceConfig.executor`` value to an executor.

    ``None`` means the legacy inline translate loop (shared step RNG,
    exactly the pre-parallel behaviour); a string resolves through
    :func:`get_executor`; a :class:`ParticleExecutor` (or any object
    with a ``map_translate`` method) passes through unchanged.
    """
    if spec is None:
        return None
    if isinstance(spec, str):
        return get_executor(spec, workers)
    if hasattr(spec, "map_translate"):
        return spec
    raise TypeError(
        f"executor must be None, a backend name {list(EXECUTOR_BACKENDS)}, "
        f"or a ParticleExecutor, got {spec!r}"
    )


@atexit.register
def _close_shared_executors() -> None:
    with _SHARED_LOCK:
        for executor in _SHARED.values():
            executor.close()
        _SHARED.clear()
