"""Pre-flight picklability checking for the process executor.

The ``process`` backend ships the translator, fault policy, and
regenerate function to worker processes by pickling.  When something in
that object graph is a lambda, a closure, or a locally defined class,
the failure used to surface as a bare ``PicklingError`` from deep inside
the pool — with no hint of *which* attribute was the problem.

:func:`find_unpicklable` descends the object graph attribute by
attribute and returns the deepest path that fails to pickle on its own
(e.g. ``translator.correspondence._forward.predicate``), which is
exactly the thing the user has to replace with a module-level function.
"""

from __future__ import annotations

import io
import pickle
from typing import Any, Iterable, List, Optional, Tuple

__all__ = ["find_unpicklable", "UnpicklableAttribute"]

#: How deep to descend into attributes before giving up on refinement.
MAX_DEPTH = 8


class UnpicklableAttribute:
    """The deepest attribute path that fails to pickle.

    Attributes
    ----------
    path:
        Dotted attribute path from the root object (``""`` when the root
        itself is the most specific failure we can name).
    value:
        The offending object.
    error:
        The exception ``pickle.dumps`` raised for it.
    """

    __slots__ = ("path", "value", "error")

    def __init__(self, path: str, value: Any, error: BaseException):
        self.path = path
        self.value = value
        self.error = error

    def describe(self, root: str = "object") -> str:
        where = f"{root}.{self.path}" if self.path else root
        return f"{where} = {self.value!r} ({self.error})"

    def __repr__(self) -> str:
        return f"UnpicklableAttribute({self.describe()})"


def _pickles(obj: Any) -> Optional[BaseException]:
    """None when ``obj`` pickles; the raised exception otherwise."""
    try:
        pickle.dump(obj, io.BytesIO())
        return None
    except Exception as error:
        return error


def _child_attributes(obj: Any) -> Iterable[Tuple[str, Any]]:
    """(name, value) pairs worth descending into."""
    seen: List[str] = []
    mapping = getattr(obj, "__dict__", None)
    if isinstance(mapping, dict):
        for name, value in mapping.items():
            seen.append(name)
            yield name, value
    for slots in (getattr(type(obj), "__slots__", ()) or ()):
        if slots in seen or slots in ("__dict__", "__weakref__"):
            continue
        try:
            yield slots, getattr(obj, slots)
        except AttributeError:
            continue
    if isinstance(obj, dict):
        for key, value in obj.items():
            yield f"[{key!r}]", value
    elif isinstance(obj, (list, tuple)):
        for index, value in enumerate(obj):
            yield f"[{index}]", value


def find_unpicklable(
    obj: Any, _depth: int = 0, _seen: Optional[set] = None
) -> Optional[UnpicklableAttribute]:
    """The deepest attribute of ``obj`` that fails to pickle, or None.

    Returns ``None`` when ``obj`` pickles cleanly.  Otherwise descends
    breadth-first into instance attributes (``__dict__``/``__slots__``)
    and container elements, and reports the most specific failing path —
    falling back to the object itself when no single attribute explains
    the failure (e.g. the object *is* a lambda).
    """
    error = _pickles(obj)
    if error is None:
        return None
    if _seen is None:
        _seen = set()
    if _depth < MAX_DEPTH and id(obj) not in _seen:
        _seen.add(id(obj))
        for name, value in _child_attributes(obj):
            child = find_unpicklable(value, _depth + 1, _seen)
            if child is not None:
                path = f"{name}.{child.path}" if child.path else name
                return UnpicklableAttribute(path, child.value, child.error)
    return UnpicklableAttribute("", obj, error)
