"""Per-chunk particle translation: the function that runs on workers.

A chunk is a contiguous slice of the particle collection plus the
matching slice of spawned seed sequences.  :func:`translate_chunk` runs
the fault-policy-aware per-particle translation
(:func:`repro.core.smc.translate_particle`) over the slice with each
particle's private RNG stream, and returns one :class:`ParticleOutcome`
per particle.  Because every particle's randomness comes from its own
:class:`numpy.random.SeedSequence` child (indexed by *global* particle
position), the outcomes are independent of which worker — or how many —
ran the chunk.

:func:`chunk_entry` is the picklable top-level entry point submitted to
:class:`concurrent.futures.ProcessPoolExecutor`; the thread backend uses
:func:`translate_chunk_isolated`, which first deep-copies the translator
so stateful wrappers (chaos injectors, log-prob caches) get the same
chunk-private isolation that process workers get from pickling.

Chaos alignment: translators that expose a ``sync_calls(index)`` method
(see :class:`repro.testing.faults.FaultyTranslator`) are re-synced to
the global particle index before each particle, so a *scripted* fault
schedule hits the same particles under every backend and chunking.
"""

from __future__ import annotations

import copy
import os
import signal
import subprocess
import sys
import time
from typing import Any, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "ParticleOutcome",
    "translate_chunk",
    "translate_chunk_isolated",
    "chunk_entry",
    "payload_nbytes",
    "spawn_ready_process",
    "wait_for_file",
    "stop_process",
    "python_argv",
]


class ParticleOutcome(NamedTuple):
    """Result of translating one particle under the fault policy.

    ``value`` is the log-weight increment for ``"ok"`` outcomes, ``-inf``
    for ``"dropped"``, and the particle's new *absolute* log weight for
    ``"regenerated"``.  The four counter fields are this particle's
    fault-counter deltas; ``worker`` is the id of the chunk that ran it.
    """

    outcome: str
    trace: Any
    value: float
    failed: int
    retried: int
    dropped: int
    regenerated: int
    worker: int


def translate_chunk(
    translator: Any,
    items: Sequence[Any],
    seeds: Sequence[np.random.SeedSequence],
    policy: Any,
    regenerate_fn: Any,
    start_index: int,
    worker_id: int,
) -> List[ParticleOutcome]:
    """Translate one contiguous particle slice with per-particle RNGs."""
    from ..core.smc import translate_particle

    sync = getattr(translator, "sync_calls", None)
    outcomes: List[ParticleOutcome] = []
    for offset, (item, seed) in enumerate(zip(items, seeds)):
        if sync is not None:
            sync(start_index + offset)
        rng = np.random.default_rng(seed)
        outcome, trace, value, counters = translate_particle(
            translator, item, rng, policy, regenerate_fn
        )
        outcomes.append(ParticleOutcome(outcome, trace, value, *counters, worker_id))
    return outcomes


def translate_chunk_isolated(
    translator: Any,
    items: Sequence[Any],
    seeds: Sequence[np.random.SeedSequence],
    policy: Any,
    regenerate_fn: Any,
    start_index: int,
    worker_id: int,
) -> List[ParticleOutcome]:
    """Thread-backend chunk: deep-copy the translator first.

    The copy gives each chunk private translator state — mirroring the
    pickling isolation of process workers — so concurrent chunks never
    race on injector streams or log-prob caches.  A ``regenerate_fn``
    that is a bound method of the original translator is re-bound to the
    copy, again matching what pickling does.
    """
    original = translator
    translator = copy.deepcopy(original)
    if regenerate_fn is not None and getattr(regenerate_fn, "__self__", None) is original:
        regenerate_fn = getattr(translator, regenerate_fn.__name__)
    return translate_chunk(
        translator, items, seeds, policy, regenerate_fn, start_index, worker_id
    )


def chunk_entry(payload: Tuple) -> List[ParticleOutcome]:
    """Process-pool entry point: unpack one pickled chunk payload."""
    translator, items, seeds, policy, regenerate_fn, start_index, worker_id = payload
    return translate_chunk(
        translator, items, seeds, policy, regenerate_fn, start_index, worker_id
    )


# ---------------------------------------------------------------------------
# Worker-process lifecycle helpers
# ---------------------------------------------------------------------------
#
# ProcessExecutor leans on concurrent.futures for pool workers, but some
# workers are longer-lived than a chunk: the inference service's shard
# processes (repro.service.shard) are spawned as real OS processes that
# announce readiness by writing a handshake file (the same port-file
# pattern ``repro serve --port-file`` uses).  These helpers are the
# shared spawn / wait / stop machinery so every caller gets the same
# semantics: spawn never blocks, readiness is an explicit file the child
# writes only once it can actually serve, and stop escalates politely
# (SIGTERM, then SIGKILL after a grace period).


def wait_for_file(path: Any, timeout_s: float = 30.0,
                  poll_s: float = 0.02,
                  process: Optional[subprocess.Popen] = None) -> str:
    """Block until ``path`` exists and is non-empty; return its text.

    ``process``, when given, is checked each poll: a child that died
    before writing its handshake file raises immediately instead of
    burning the whole timeout.
    """
    deadline = time.monotonic() + float(timeout_s)
    path = os.fspath(path)
    while time.monotonic() < deadline:
        if process is not None and process.poll() is not None:
            raise RuntimeError(
                f"worker process exited with code {process.returncode} "
                f"before writing its handshake file {path}"
            )
        try:
            with open(path, "r") as handle:
                content = handle.read()
            if content.strip():
                return content
        except OSError:
            pass
        time.sleep(poll_s)
    raise TimeoutError(
        f"handshake file {path} did not appear within {timeout_s:.1f}s"
    )


def spawn_ready_process(
    argv: Sequence[str],
    ready_file: Any,
    *,
    timeout_s: float = 30.0,
    stdout: Any = subprocess.DEVNULL,
    stderr: Any = subprocess.DEVNULL,
) -> Tuple[subprocess.Popen, str]:
    """Spawn ``argv`` and wait until it writes ``ready_file``.

    Returns ``(process, ready_file_contents)``.  A stale ready file from
    a previous incarnation is removed before the spawn, so the contents
    are always the new child's.  On handshake failure the child is
    killed before the error propagates — no orphan survives a failed
    spawn.
    """
    ready_file = os.fspath(ready_file)
    try:
        os.unlink(ready_file)
    except OSError:
        pass
    process = subprocess.Popen(list(argv), stdout=stdout, stderr=stderr)
    try:
        content = wait_for_file(ready_file, timeout_s, process=process)
    except Exception:
        stop_process(process, grace_s=0.5)
        raise
    return process, content


def stop_process(process: subprocess.Popen, *, grace_s: float = 5.0) -> Optional[int]:
    """Terminate a worker process: SIGTERM, then SIGKILL after ``grace_s``.

    Returns the exit code (None if the process was already gone and
    unreaped).  Safe to call repeatedly.
    """
    if process.poll() is not None:
        return process.returncode
    try:
        process.send_signal(signal.SIGTERM)
    except OSError:
        return process.poll()
    try:
        return process.wait(timeout=grace_s)
    except subprocess.TimeoutExpired:
        process.kill()
        try:
            return process.wait(timeout=grace_s)
        except subprocess.TimeoutExpired:  # pragma: no cover — kernel-level wedge
            return None


def python_argv(module: str, *args: str) -> List[str]:
    """``[sys.executable, "-m", module, *args]`` — the spawn vector for a
    repro worker module, using the exact interpreter running this code."""
    return [sys.executable, "-m", module, *args]


def payload_nbytes(items: Sequence[Any], format: str = "binary") -> int:
    """Serialized size of a particle slice, in bytes.

    The ``process`` backend ships each chunk's particles across a pipe;
    this measures that shipping cost explicitly by encoding the slice
    through the durable :mod:`repro.store` codec (the same envelope a
    checkpoint writes, so checkpoint sizes and chunk-shipping sizes are
    directly comparable).  Used by the chunk-shipping diagnostics of
    :class:`~repro.parallel.executor.ProcessExecutor` and the store
    benchmarks.
    """
    from ..store import dumps

    return len(dumps(list(items), format))
