"""Bayesian linear regression substrate for the Section 7.2 experiment:
the programs of Listings 1-2, the exact conjugate posterior for ``P``,
and the synthetic hospital-cost-like dataset.
"""

from .conjugate import ConjugatePosterior, conjugate_posterior, exact_regression_trace
from .data import RegressionData, hospital_like_dataset
from .programs import (
    ADDR_INTERCEPT,
    ADDR_OUTLIER_LOG_VAR,
    ADDR_SLOPE,
    NoOutlierModelParams,
    OutlierModelParams,
    addr_y,
    coefficient_correspondence,
    no_outlier_model,
    outlier_model,
)

__all__ = [
    "ConjugatePosterior",
    "conjugate_posterior",
    "exact_regression_trace",
    "RegressionData",
    "hospital_like_dataset",
    "NoOutlierModelParams",
    "OutlierModelParams",
    "no_outlier_model",
    "outlier_model",
    "coefficient_correspondence",
    "ADDR_SLOPE",
    "ADDR_INTERCEPT",
    "ADDR_OUTLIER_LOG_VAR",
    "addr_y",
]
