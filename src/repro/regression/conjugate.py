"""Exact conjugate posterior for the non-robust regression (Listing 1).

With a Gaussian prior ``beta ~ N(0, prior_std^2 I)`` over
``beta = (intercept, slope)`` and known noise scale, the posterior is
Gaussian with

    Sigma_n = (X'X / std^2 + I / prior_std^2)^{-1}
    mu_n    = Sigma_n X'y / std^2

This is the "exact posterior sampling is tractable in P" of Section 7.2:
the experiment feeds exact posterior samples of ``P`` into the
incremental algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..core import Model, Trace
from .programs import (
    ADDR_INTERCEPT,
    ADDR_SLOPE,
    NoOutlierModelParams,
)

__all__ = ["ConjugatePosterior", "conjugate_posterior", "exact_regression_trace"]


@dataclass(frozen=True)
class ConjugatePosterior:
    """Gaussian posterior over ``(intercept, slope)``."""

    mean: np.ndarray  # (2,): intercept, slope
    covariance: np.ndarray  # (2, 2)

    @property
    def intercept_mean(self) -> float:
        return float(self.mean[0])

    @property
    def slope_mean(self) -> float:
        return float(self.mean[1])

    def sample(self, rng: np.random.Generator) -> Tuple[float, float]:
        """One exact posterior draw of ``(intercept, slope)``."""
        draw = rng.multivariate_normal(self.mean, self.covariance)
        return float(draw[0]), float(draw[1])


def conjugate_posterior(
    params: NoOutlierModelParams, xs: Sequence[float], ys: Sequence[float]
) -> ConjugatePosterior:
    """Closed-form posterior of Listing 1 given data ``(xs, ys)``."""
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.shape != ys.shape:
        raise ValueError("xs and ys must have the same shape")
    design = np.column_stack([np.ones_like(xs), xs])
    precision = design.T @ design / params.std**2 + np.eye(2) / params.prior_std**2
    covariance = np.linalg.inv(precision)
    mean = covariance @ (design.T @ ys) / params.std**2
    return ConjugatePosterior(mean=mean, covariance=covariance)


def exact_regression_trace(
    posterior: ConjugatePosterior,
    rng: np.random.Generator,
    model: Model,
) -> Trace:
    """One exact posterior trace of ``P`` (coefficients scored into the
    conditioned model, so the trace carries the correct ``P̃r[t ~ P]``)."""
    intercept, slope = posterior.sample(rng)
    return model.score({ADDR_INTERCEPT: intercept, ADDR_SLOPE: slope})
