"""Synthetic regression dataset (substitute for the Dartmouth Atlas data).

The paper regresses hospital operating cost against a quality measure
for 305 municipalities [43].  That dataset is not redistributable, so we
generate a synthetic stand-in with the same statistical features the
experiment depends on: a linear trend, Gaussian inlier noise, and a
small fraction of gross outliers that bias the non-robust model's slope
estimate — which is what makes the robust model ``Q`` worth moving to
and the incremental transition informative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["RegressionData", "hospital_like_dataset"]


@dataclass(frozen=True)
class RegressionData:
    """A regression dataset with generation metadata."""

    xs: np.ndarray
    ys: np.ndarray
    true_intercept: float
    true_slope: float
    outlier_mask: np.ndarray

    def __post_init__(self) -> None:
        if self.xs.shape != self.ys.shape:
            raise ValueError("xs and ys must have the same shape")

    @property
    def num_points(self) -> int:
        return int(self.xs.shape[0])

    @property
    def num_outliers(self) -> int:
        return int(self.outlier_mask.sum())


def hospital_like_dataset(
    rng: np.random.Generator,
    num_points: int = 305,
    intercept: float = 1.0,
    slope: float = -0.8,
    inlier_std: float = 0.5,
    outlier_std: float = 5.0,
    outlier_fraction: float = 0.1,
) -> RegressionData:
    """Generate the 305-point stand-in for the hospital-cost data.

    Covariates are standardized (zero mean, unit scale); the response is
    linear with heavy-tailed contamination.  Defaults give roughly 10%
    outliers at 10x the inlier noise scale: enough to measurably shift
    the non-robust posterior slope (so the weights of the trace
    translator carry real information, and the no-weights ablation is
    visibly biased), while keeping the posteriors of the non-robust and
    robust programs close enough that incremental inference applies —
    the regime in which the paper positions the method (Section 2,
    Discussion).
    """
    if num_points < 2:
        raise ValueError("need at least two data points")
    if not 0.0 <= outlier_fraction < 1.0:
        raise ValueError("outlier_fraction must be in [0, 1)")
    xs = rng.normal(0.0, 1.0, size=num_points)
    outlier_mask = rng.random(num_points) < outlier_fraction
    noise_std = np.where(outlier_mask, outlier_std, inlier_std)
    ys = intercept + slope * xs + rng.normal(0.0, 1.0, size=num_points) * noise_std
    return RegressionData(
        xs=xs,
        ys=ys,
        true_intercept=intercept,
        true_slope=slope,
        outlier_mask=outlier_mask,
    )
