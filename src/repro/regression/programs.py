"""The regression probabilistic programs of Listings 1-2 (Section 7.2).

``no_outlier_model`` is the plain Bayesian linear regression ``P``
(Listing 1): Gaussian priors on slope and intercept, Gaussian noise.
``outlier_model`` is the robust variant ``Q`` (Listing 2): it adds one
new random choice — the log-variance of the outlier component — and
replaces each data point's Gaussian likelihood with the ``two_normals``
inlier/outlier mixture.

Addresses mirror the paper's: ``"slope"``, ``"intercept"``,
``"outlier_log_var"``, and ``("y", i)`` for data point ``i``.  Data are
observations (external constraints on the ``("y", i)`` addresses).  The
incremental transition places the regression coefficients in
correspondence (:func:`coefficient_correspondence`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..core import Correspondence, Model
from ..distributions import Normal, TwoNormals
from ..distributions import batch as bmath

__all__ = [
    "NoOutlierModelParams",
    "OutlierModelParams",
    "no_outlier_model",
    "outlier_model",
    "coefficient_correspondence",
    "ADDR_SLOPE",
    "ADDR_INTERCEPT",
    "ADDR_OUTLIER_LOG_VAR",
    "addr_y",
]

ADDR_SLOPE = ("slope",)
ADDR_INTERCEPT = ("intercept",)
ADDR_OUTLIER_LOG_VAR = ("outlier_log_var",)


def addr_y(i: int):
    """Address of data point ``i`` (the paper's ``addr_y(i)``)."""
    return ("y", int(i))


@dataclass(frozen=True)
class NoOutlierModelParams:
    """Parameters of Listing 1: prior scale and fixed noise scale."""

    prior_std: float = 10.0
    std: float = 0.5

    def __post_init__(self) -> None:
        if self.prior_std <= 0 or self.std <= 0:
            raise ValueError("scales must be positive")


@dataclass(frozen=True)
class OutlierModelParams:
    """Parameters of Listing 2: mixture weight and outlier-variance prior."""

    prior_std: float = 10.0
    prob_outlier: float = 0.1
    inlier_std: float = 0.5
    outlier_log_var_mu: float = 3.0
    outlier_log_var_std: float = 1.0

    def __post_init__(self) -> None:
        if self.prior_std <= 0 or self.inlier_std <= 0 or self.outlier_log_var_std <= 0:
            raise ValueError("scales must be positive")
        if not 0.0 <= self.prob_outlier <= 1.0:
            raise ValueError("prob_outlier must be in [0, 1]")


def _no_outlier_fn(t, params: NoOutlierModelParams, xs: Sequence[float]):
    """Listing 1: Bayesian linear regression."""
    slope = t.sample(Normal(0.0, params.prior_std), ADDR_SLOPE)
    intercept = t.sample(Normal(0.0, params.prior_std), ADDR_INTERCEPT)
    for i, x in enumerate(xs):
        y_mean = intercept + slope * x
        t.sample(Normal(y_mean, params.std), addr_y(i))
    return (slope, intercept)


def _outlier_fn(t, params: OutlierModelParams, xs: Sequence[float]):
    """Listing 2: robust Bayesian linear regression."""
    outlier_log_var = t.sample(
        Normal(params.outlier_log_var_mu, params.outlier_log_var_std),
        ADDR_OUTLIER_LOG_VAR,
    )
    # bmath: exact elementwise math.* — identical for scalars, and lets
    # the columnar runtime run this program on whole columns.
    outlier_std = bmath.sqrt(bmath.exp(outlier_log_var))
    slope = t.sample(Normal(0.0, params.prior_std), ADDR_SLOPE)
    intercept = t.sample(Normal(0.0, params.prior_std), ADDR_INTERCEPT)
    for i, x in enumerate(xs):
        y_mean = intercept + slope * x
        t.sample(
            TwoNormals(y_mean, params.prob_outlier, params.inlier_std, outlier_std),
            addr_y(i),
        )
    return (slope, intercept)


def _observation_map(ys: Sequence[float]):
    return {addr_y(i): float(y) for i, y in enumerate(ys)}


def no_outlier_model(
    params: NoOutlierModelParams,
    xs: Sequence[float],
    ys: Optional[Sequence[float]] = None,
) -> Model:
    """The conditioned program ``P`` of Listing 1."""
    model = Model(_no_outlier_fn, args=(params, tuple(float(x) for x in xs)), name="linreg")
    if ys is not None:
        model = model.condition(_observation_map(ys))
    return model


def outlier_model(
    params: OutlierModelParams,
    xs: Sequence[float],
    ys: Optional[Sequence[float]] = None,
) -> Model:
    """The conditioned robust program ``Q`` of Listing 2."""
    model = Model(
        _outlier_fn, args=(params, tuple(float(x) for x in xs)), name="robust_linreg"
    )
    if ys is not None:
        model = model.condition(_observation_map(ys))
    return model


def coefficient_correspondence() -> Correspondence:
    """Slope and intercept in correspondence (Section 7.2)."""
    return Correspondence.identity([ADDR_SLOPE, ADDR_INTERCEPT])
