"""Fault-tolerant multi-tenant inference service (zero-dependency asyncio).

The paper's headline capability — cheap re-inference after a program
edit — pays off in a *long-lived service* where many users hold evolving
models open.  This package is that service, built on the existing layers:

* :mod:`repro.store.session` — keyed live collections with LRU
  eviction and byte-stable snapshots (the session substrate);
* :mod:`repro.store.checkpoint` — atomic, checksummed commit snapshots
  (the crash-recovery substrate);
* :mod:`repro.store.codec` — the wire format (every request and
  response body is a codec document over a length-prefixed frame);
* :mod:`repro.observability` — request metrics, queue-depth gauges,
  rejection/timeout counters, and per-request spans.

Robustness is the design center, not an afterthought:

* **admission control** — per-tenant quotas on live sessions and
  in-flight requests, rejected with structured
  :class:`~repro.errors.QuotaExceededError` payloads;
* **backpressure** — bounded per-shard queues that reject with a
  ``retry_after_s`` estimate instead of buffering without bound;
* **deadlines** — per-request deadlines enforced on the queue *and*
  mid-translation (cancelled at a particle boundary, with the session
  transactionally rolled back — a timeout never corrupts state);
* **graceful degradation** — a documented ladder: shed lowest-priority
  tenants first as queues fill, and serve ``posterior`` reads from the
  last commit snapshot when the live worker is wedged;
* **crash recovery** — every committed mutation is checkpointed
  *before* it is acknowledged, so a SIGKILLed server restarts into
  byte-identical sessions and never drops a committed observation;
* **scale-out** — ``ServiceConfig(shard_processes=N)`` promotes shards
  to worker *processes* behind a router (:mod:`repro.service.shard`):
  sessions are spread by rendezvous-hashed placement
  (:mod:`repro.service.placement`), a SIGKILLed shard fails over to its
  replica without losing an acked mutation, and degraded reads keep
  serving during recovery.

Entry points: ``repro serve`` / ``repro loadgen`` on the CLI,
:class:`InferenceService` + :class:`ServiceClient` /
:class:`RetryingClient` in code, and
:func:`repro.testing.chaos.run_chaos_drill` for the failure story.
"""

from .client import RetryingClient, ServiceClient, call_service
from .config import ServiceConfig
from .loadgen import LoadgenConfig, WORKLOADS, run_loadgen
from .placement import PlacementMap, placement_score
from .server import InferenceService, ServiceHandle
from .shard import ShardLink, ShardProcessPool, ShardServer
from .state import DurableSessionStore
from .wire import (
    ERROR_CLASSES,
    MAX_FRAME_BYTES,
    WIRE_SCHEMA,
    decode_error,
    encode_error,
    read_frame,
    write_frame,
)

__all__ = [
    "ServiceConfig",
    "InferenceService",
    "ServiceHandle",
    "DurableSessionStore",
    "PlacementMap",
    "placement_score",
    "ShardServer",
    "ShardLink",
    "ShardProcessPool",
    "ServiceClient",
    "RetryingClient",
    "call_service",
    "LoadgenConfig",
    "WORKLOADS",
    "run_loadgen",
    "ERROR_CLASSES",
    "MAX_FRAME_BYTES",
    "WIRE_SCHEMA",
    "read_frame",
    "write_frame",
    "encode_error",
    "decode_error",
]
