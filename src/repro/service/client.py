"""Blocking clients for the inference service.

:class:`ServiceClient` is the thin one: one TCP connection, framed codec
messages, typed exceptions.  It deliberately raises exactly what the
server rejected with — ``except QuotaExceededError`` works across the
network — and maps transport failures (refused, reset, hung up
mid-frame) to :class:`~repro.errors.ServiceUnavailableError`, which is
retryable because the server may restart and recover.

:class:`RetryingClient` wraps it with the client half of the
backpressure contract: retryable rejections are retried with capped
exponential backoff and *full jitter*, and a server-supplied
``retry_after_s`` (the queue-drain estimate) acts as the floor of the
next delay — the server knows how long the queue is, the jitter keeps a
thundering herd from re-arriving in lockstep.  The RNG and the sleep
function are injectable, so tests drive retries deterministically with
no wall-clock sleeping.
"""

from __future__ import annotations

import random
import socket
import struct
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import ServiceError, ServiceUnavailableError
from ..store.codec import dumps, loads
from .wire import raise_for_response

__all__ = ["ServiceClient", "RetryingClient", "call_service"]

_LENGTH = struct.Struct(">I")


def _read_exact(sock: socket.socket, count: int) -> bytes:
    chunks: List[bytes] = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ServiceUnavailableError("server hung up mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class ServiceClient:
    """One blocking connection to an :class:`InferenceService`.

    Parameters
    ----------
    host / port:
        The server's bound address.
    tenant:
        Tenant id stamped on every request (admission control keys on
        it).
    timeout_s:
        Socket timeout for connect and each response; a timeout maps to
        :class:`~repro.errors.ServiceUnavailableError` (the server may
        be wedged — the caller can fall back to a degraded read or
        retry).
    format:
        Codec wire format for request bodies.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        tenant: str = "default",
        timeout_s: float = 30.0,
        format: str = "json",
    ):
        self.host = host
        self.port = int(port)
        self.tenant = tenant
        self.timeout_s = float(timeout_s)
        self.format = format
        self._sock: Optional[socket.socket] = None

    # -- connection ------------------------------------------------------------

    def connect(self) -> "ServiceClient":
        if self._sock is None:
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout_s
                )
            except OSError as error:
                raise ServiceUnavailableError(
                    f"cannot reach service at {self.host}:{self.port}: {error}"
                ) from error
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- the request path ------------------------------------------------------

    def call(self, op: str, **fields: Any) -> Any:
        """One request/response round trip; returns the ``result`` or
        raises the server's typed error.

        Transport failures poison the connection (it is closed and
        re-opened on the next call) — a half-read frame is never
        resynchronized.
        """
        request: Dict[str, Any] = {"op": op, "tenant": self.tenant}
        request.update({k: v for k, v in fields.items() if v is not None})
        return self.call_raw(request)

    def call_raw(self, request: Dict[str, Any]) -> Any:
        """Ship an arbitrary request document verbatim.

        The seam the chaos drills and wire-negotiation tests use to send
        shard-link ops (``hello``, ``replicate``, ``release``) or
        deliberately malformed documents without fighting the op
        wrappers.  Error/transport semantics are identical to
        :meth:`call`.
        """
        self.connect()
        sock = self._sock
        assert sock is not None
        try:
            body = dumps(request, self.format)
            sock.sendall(_LENGTH.pack(len(body)) + body)
            (length,) = _LENGTH.unpack(_read_exact(sock, _LENGTH.size))
            response = loads(_read_exact(sock, length))
        except ServiceUnavailableError:
            self.close()
            raise
        except (OSError, struct.error) as error:
            self.close()
            raise ServiceUnavailableError(
                f"transport failure talking to {self.host}:{self.port}: {error}"
            ) from error
        return raise_for_response(response)

    # -- op wrappers -----------------------------------------------------------

    def create(
        self,
        session: str,
        program: str,
        *,
        env: Optional[Dict[str, Any]] = None,
        num_particles: Optional[int] = None,
        seed: Optional[int] = None,
        deadline_s: Optional[float] = None,
    ) -> Dict[str, Any]:
        return self.call(
            "create",
            session=session,
            program=program,
            env=env,
            num_particles=num_particles,
            seed=seed,
            deadline_s=deadline_s,
        )

    def observe(
        self, session: str, statement: str, *, deadline_s: Optional[float] = None
    ) -> Dict[str, Any]:
        return self.call(
            "observe", session=session, statement=statement, deadline_s=deadline_s
        )

    def edit(
        self, session: str, program: str, *, deadline_s: Optional[float] = None
    ) -> Dict[str, Any]:
        return self.call(
            "edit", session=session, program=program, deadline_s=deadline_s
        )

    def posterior(
        self, session: str, *, top: int = 10, deadline_s: Optional[float] = None
    ) -> Dict[str, Any]:
        return self.call(
            "posterior", session=session, top=top, deadline_s=deadline_s
        )

    def close_session(self, session: str) -> Dict[str, Any]:
        return self.call("close", session=session)

    def stats(self) -> Dict[str, Any]:
        return self.call("stats")

    def ping(self) -> Dict[str, Any]:
        return self.call("ping")


class RetryingClient:
    """Retry wrapper implementing the client half of backpressure.

    Parameters
    ----------
    client:
        The underlying :class:`ServiceClient` (or anything with its
        ``call`` signature).
    max_attempts:
        Total tries per request (first attempt included).
    backoff_base_s / backoff_cap_s:
        Exponential schedule: attempt *k* draws its delay uniformly from
        ``(0, min(cap, base * 2**k)]`` (full jitter).  A server
        ``retry_after_s`` hint raises the floor of that draw — never
        retry sooner than the server asked.
    rng:
        Seeded :class:`random.Random` for the jitter (deterministic
        tests; defaults to a fresh unseeded stream).
    sleep:
        Injectable sleep — tests pass a recorder, production leaves the
        default.
    """

    def __init__(
        self,
        client: ServiceClient,
        *,
        max_attempts: int = 5,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 2.0,
        rng: Optional[random.Random] = None,
        sleep: Optional[Callable[[float], None]] = None,
    ):
        if int(max_attempts) < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts!r}")
        self.client = client
        self.max_attempts = int(max_attempts)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_cap_s = float(backoff_cap_s)
        self.rng = rng if rng is not None else random.Random()
        import time as _time

        self.sleep = sleep if sleep is not None else _time.sleep
        #: Retry telemetry for the last ``call``: the delays slept.
        self.last_delays: List[float] = []
        #: Total retries performed over this wrapper's lifetime.
        self.total_retries = 0

    def backoff_delay(self, attempt: int, retry_after_s: Optional[float]) -> float:
        """The delay before retry number ``attempt`` (0-based)."""
        ceiling = min(self.backoff_cap_s, self.backoff_base_s * (2.0 ** attempt))
        delay = self.rng.uniform(0.0, ceiling)
        if retry_after_s is not None:
            delay = max(delay, float(retry_after_s))
        return delay

    def call(self, op: str, **fields: Any) -> Any:
        self.last_delays = []
        attempt = 0
        while True:
            try:
                return self.client.call(op, **fields)
            except ServiceError as error:
                if not error.retryable or attempt + 1 >= self.max_attempts:
                    raise
                delay = self.backoff_delay(attempt, error.retry_after_s)
                self.last_delays.append(delay)
                self.total_retries += 1
                self.sleep(delay)
                attempt += 1

    def __getattr__(self, name: str) -> Any:
        """Expose the op wrappers (``create``, ``observe``, ...) with retries."""
        inner = getattr(self.client, name)
        if not callable(inner):
            return inner

        def retrying(*args: Any, **kwargs: Any) -> Any:
            self.last_delays = []
            attempt = 0
            while True:
                try:
                    return inner(*args, **kwargs)
                except ServiceError as error:
                    if not error.retryable or attempt + 1 >= self.max_attempts:
                        raise
                    delay = self.backoff_delay(attempt, error.retry_after_s)
                    self.last_delays.append(delay)
                    self.total_retries += 1
                    self.sleep(delay)
                    attempt += 1

        return retrying


def call_service(
    address: Tuple[str, int], op: str, *, tenant: str = "default", **fields: Any
) -> Any:
    """One-shot convenience: connect, call, close."""
    with ServiceClient(address[0], address[1], tenant=tenant) as client:
        return client.call(op, **fields)
